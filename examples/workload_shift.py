#!/usr/bin/env python3
"""Workload-shift scenario: the TDE catching a pattern change in minutes.

A database settles under a tuned YCSB-style point-read workload; then the
tenant's traffic turns into TPC-C-style write-heavy transactions. The TDE
notices within its detection window and says *which knob class* went wrong
— the paper's Table 1 / Fig. 14 experiment, one transition at a time.

Run:  python examples/workload_shift.py
"""

from repro.core.tde import ThrottlingDetectionEngine
from repro.dbsim import SimulatedDatabase, postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners import OtterTuneTuner, TuningRequest
from repro.workloads import TPCCWorkload, YCSBWorkload


def main() -> None:
    catalog = postgres_catalog()
    print("bootstrapping tuner experience with offline sessions...")
    repository = offline_train(
        catalog,
        [
            TPCCWorkload(rps=12_000.0, data_size_gb=22.0, seed=1),
            YCSBWorkload(rps=12_000.0, data_size_gb=18.0, seed=2),
        ],
        n_configs=10,
        seed=3,
    )
    tuner = OtterTuneTuner(
        catalog, repository, memory_limit_mb=13_107.0, seed=4
    )

    db = SimulatedDatabase("postgres", "m4.xlarge", 22.0, seed=5)
    source = YCSBWorkload(rps=5000.0, data_size_gb=22.0, seed=6)

    # Settle the source workload under a tuned configuration.
    settle = db.run(source.batch(60.0))
    rec = tuner.recommend(TuningRequest("svc", "ycsb", db.config, settle.metrics))
    db.apply_config(
        rec.config.with_values({"shared_buffers": 4096}).fitted_to_budget(
            db.vm.db_memory_limit_mb, db.active_connections
        ),
        mode="restart",
    )
    tde = ThrottlingDetectionEngine("svc", db, repository, seed=7)
    print("running the source workload (tuned) for 4 minutes...")
    for _ in range(4):
        report = tde.inspect(db.run(source.batch(60.0, start_time_s=db.clock_s)))
        print(f"  ycsb window: {len(report.throttles)} throttle(s)")

    print("\n>>> tenant behaviour changes: point reads become TPC-C writes <<<\n")
    target = TPCCWorkload(rps=3300.0, data_size_gb=22.0, seed=8)
    for minute in range(5):
        report = tde.inspect(db.run(target.batch(60.0, start_time_s=db.clock_s)))
        for throttle in report.throttles:
            print(
                f"  minute {minute}: throttle [{throttle.knob_class.value}]"
                f" on {', '.join(throttle.knobs[:3])}"
            )
            print(f"             evidence: {throttle.reason}")
        if not report.throttles:
            print(f"  minute {minute}: quiet")


if __name__ == "__main__":
    main()
