#!/usr/bin/env python3
"""PaaS fleet scenario: event-driven vs periodic tuning at fleet scale.

Simulates a provider landscape of production databases over six hours and
compares the tuning-request load the Throttling Detection Engine generates
against the classic periodic approach — the paper's Fig. 9 story. One
OtterTune-style deployment costs ~100–200 s per recommendation at
production repository sizes, so requests/minute is the scalability budget.

Run:  python examples/paas_fleet.py
"""

from repro.experiments import fig09_requests_per_minute, format_table


def main() -> None:
    print("simulating a 12-database fleet for 6 hours...\n")
    run = fig09_requests_per_minute.run(fleet_size=12, hours=6.0, seed=7)

    print(
        format_table(
            ("hour", "TDE req/min", "5-min periodic", "10-min periodic"),
            [
                (
                    f"{p.hour:.0f}",
                    f"{p.tde_rpm:.2f}",
                    f"{p.periodic_5min_rpm:.1f}",
                    f"{p.periodic_10min_rpm:.1f}",
                )
                for p in run.points
            ],
        )
    )
    saved_vs_5 = 1.0 - run.tde_total / max(run.periodic_5min_total, 1)
    print(
        f"\ntotals over 6 h: TDE {run.tde_total} requests vs"
        f" {run.periodic_5min_total} (5-min periodic) — {saved_vs_5:.0%}"
        " fewer recommendations to compute."
    )
    print(
        "each saved request is ~100-200 s of GPR retraining a tuner"
        " instance does not have to spend."
    )


if __name__ == "__main__":
    main()
