#!/usr/bin/env python3
"""Quickstart: put one database under AutoDBaaS management.

Provisions a PostgreSQL-flavoured service on an m4.large, attaches a
TPC-C-style tenant with the TDE policy, and steps through a few monitoring
windows. Watch the TDE raise throttles, the config director route tuning
requests, and the apply pipeline reload the recommended knobs — then see
the scheduled downtime fix the non-tunable buffer pool.

Run:  python examples/quickstart.py
"""

from repro import AutoDBaaS
from repro.cloud import Provisioner
from repro.dbsim import postgres_catalog
from repro.tuners import OtterTuneTuner, WorkloadRepository
from repro.workloads import TPCCWorkload


def main() -> None:
    catalog = postgres_catalog()
    repository = WorkloadRepository()
    tuner = OtterTuneTuner(
        catalog, repository, memory_limit_mb=6553.6, seed=1
    )
    service = AutoDBaaS(
        [tuner],
        repository,
        window_s=300.0,          # 5-minute monitoring windows
        downtime_period_s=3600.0  # hourly maintenance downtime (demo!)
    )

    provisioner = Provisioner(seed=2)
    deployment = provisioner.provision(
        plan="m4.large", flavor="postgres", data_size_gb=26.0, replicas=1
    )
    service.attach(deployment, TPCCWorkload(seed=3), policy="tde")
    master = deployment.service.master

    print(f"managing {deployment.instance_id} on {deployment.plan}")
    print(f"initial shared_buffers: {master.config['shared_buffers']:.0f} MB\n")

    for window in range(16):
        outcome = service.step()[0]
        if outcome.result is None:
            continue
        throttles = (
            len(outcome.tde_report.throttles) if outcome.tde_report else 0
        )
        line = (
            f"window {window:2d}  tps {outcome.result.throughput:7.0f}"
            f"  throttles {throttles}"
        )
        if outcome.tuning_requested and outcome.apply_report:
            line += (
                f"  -> tuned via {outcome.split.recommendation.source}"
                f" (applied={outcome.apply_report.applied})"
            )
        if outcome.downtime_taken:
            line += (
                "  [scheduled downtime: shared_buffers ->"
                f" {master.config['shared_buffers']:.0f} MB]"
            )
        print(line)

    counts = service.throttle_counts()[deployment.instance_id]
    print(f"\nthrottles by class: {counts}")
    print(f"tuning requests issued: {service.director.total_requests}")
    print(f"samples in the shared repository: {repository.total_samples()}")


if __name__ == "__main__":
    main()
