#!/usr/bin/env python3
"""Tuner comparison: BO-style vs RL-style tuning of one database.

Runs the same under-configured TPC-C database through an OtterTune-style
closed loop and a CDBTune-style one, printing throughput per iteration —
the §2.1 trade-off: the BO tuner nails a good configuration within two or
three recommendations once it has experience; the RL tuner needs many
try-and-error iterations but each recommendation is essentially free.

Run:  python examples/tuner_comparison.py
"""

from repro.dbsim import SimulatedDatabase, postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners import (
    CDBTuneTuner,
    OtterTuneTuner,
    TrainingSample,
    TuningRequest,
)
from repro.workloads import TPCCWorkload


def closed_loop(tuner, label: str, iterations: int, seed: int) -> None:
    db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=seed)
    workload = TPCCWorkload(rps=12_000.0, seed=seed + 1)
    print(f"\n{label}: recommendation cost ~{tuner.recommendation_cost_s():.0f} s")
    for iteration in range(iterations):
        result = db.run(workload.batch(20.0, start_time_s=db.clock_s))
        tuner.observe(
            TrainingSample("tpcc-live", db.config, result.metrics, db.clock_s)
        )
        recommendation = tuner.recommend(
            TuningRequest("svc", "tpcc-live", db.config, result.metrics)
        )
        db.apply_config(
            recommendation.config.fitted_to_budget(
                db.vm.db_memory_limit_mb, db.active_connections
            ),
            mode="restart",
        )
        db.run(workload.batch(20.0, start_time_s=db.clock_s))  # downtime
        db.run(workload.batch(20.0, start_time_s=db.clock_s))  # warm-up
        measured = db.run(workload.batch(20.0, start_time_s=db.clock_s))
        print(f"  iteration {iteration:2d}: {measured.throughput:7.0f} tps")


def main() -> None:
    catalog = postgres_catalog()
    print("training the BO tuner on offline TPC-C experience...")
    repository = offline_train(
        catalog, [TPCCWorkload(rps=12_000.0, seed=1)], n_configs=12, seed=2
    )
    ottertune = OtterTuneTuner(
        catalog, repository, memory_limit_mb=6553.6, seed=3
    )
    closed_loop(ottertune, "OtterTune-style (BO)", iterations=4, seed=10)

    cdbtune = CDBTuneTuner(catalog, memory_limit_mb=6553.6, seed=4)
    closed_loop(cdbtune, "CDBTune-style (RL)", iterations=12, seed=10)
    print(
        "\nnote the BO tuner's head start from shared experience and the"
        " RL tuner's cheap-but-noisy exploration."
    )


if __name__ == "__main__":
    main()
