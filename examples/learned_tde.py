#!/usr/bin/env python3
"""Learned TDE scenario: the paper's §7 future work in action.

Shadows the rule-based Throttling Detection Engine over contrasting
deployments to collect labelled windows, trains the rule-free detector,
and compares their verdicts on fresh windows — "making the current TDE
free from static rules".

Run:  python examples/learned_tde.py
"""

from repro.core.tde import (
    LearnedThrottleDetector,
    ThrottlingDetectionEngine,
)
from repro.dbsim import SimulatedDatabase
from repro.tuners import WorkloadRepository
from repro.workloads import AdulteratedTPCCWorkload, YCSBWorkload


def main() -> None:
    print("collecting labelled windows by shadowing the rule TDE...")
    windows = []
    spilly = SimulatedDatabase("postgres", "m4.xlarge", 21.0, seed=1)
    spilly_tde = ThrottlingDetectionEngine("svc", spilly, WorkloadRepository(), seed=2)
    heavy = AdulteratedTPCCWorkload(0.8, data_size_gb=21.0, seed=3)
    quiet = SimulatedDatabase("postgres", "m4.xlarge", 2.0, seed=4)
    quiet.config = quiet.config.with_values({"shared_buffers": 2048, "work_mem": 512})
    quiet_tde = ThrottlingDetectionEngine("svc", quiet, WorkloadRepository(), seed=5)
    calm = YCSBWorkload(rps=200.0, data_size_gb=2.0, seed=6)
    for _ in range(12):
        windows.append(
            LearnedThrottleDetector.shadow(
                spilly_tde, spilly.run(heavy.batch(30.0, start_time_s=spilly.clock_s))
            )
        )
        windows.append(
            LearnedThrottleDetector.shadow(
                quiet_tde, quiet.run(calm.batch(30.0, start_time_s=quiet.clock_s))
            )
        )

    detector = LearnedThrottleDetector(seed=7)
    loss = detector.fit(windows)
    print(f"trained on {len(windows)} windows (final BCE loss {loss:.3f})\n")

    print("fresh windows — learned detector vs what a rule TDE would say:")
    for label, db, workload in (
        ("spilling deployment", spilly, heavy),
        ("quiet deployment", quiet, calm),
    ):
        result = db.run(workload.batch(30.0, start_time_s=db.clock_s))
        predicted = sorted(c.value for c in detector.predict_classes(result.metrics))
        print(f"  {label:20s} -> predicted classes: {predicted or ['(none)']}")


if __name__ == "__main__":
    main()
