#!/usr/bin/env python3
"""Non-tunable knobs scenario: safe apply, reconciliation, downtime sizing.

Shows §4's machinery end to end on a replicated service:

1. the DFA applies a recommendation slave-first — a crash-inducing config
   is rejected with the master untouched;
2. the reconciler rolls back config drift after the watcher timeout;
3. the scheduled-downtime policy resizes the buffer pool from the working
   set and the 99th percentile of past recommendations.

Run:  python examples/downtime_maintenance.py
"""

from repro.core.apply import DataFederationAgent, NonTunableKnobPolicy, Reconciler, ServiceOrchestrator
from repro.core.director import ConfigRepository
from repro.dbsim import ReplicatedService
from repro.cloud import Provisioner


def main() -> None:
    provisioner = Provisioner(seed=1)
    deployment = provisioner.provision(
        plan="m4.large", flavor="postgres", data_size_gb=8.0, replicas=2
    )
    service: ReplicatedService = deployment.service
    orchestrator = ServiceOrchestrator()
    orchestrator.register(deployment)
    dfa = DataFederationAgent()

    # 1. Slave-first apply protects the master from a bad recommendation.
    bad = service.config.with_values({"shared_buffers": 60_000, "work_mem": 4000})
    report = dfa.apply(service, bad, mode="restart")
    print(
        "bad config rejected at"
        f" {report.rejected_at}; master up: {not service.master.crashed};"
        f" healed slaves: {report.healed_slaves}"
    )

    good = service.config.with_values({"work_mem": 64, "checkpoint_timeout": 900})
    report = dfa.apply(service, good)
    print(f"good config applied to {report.nodes_updated} nodes\n")
    orchestrator.persist_config(deployment.instance_id, service.master.config)

    # 2. Drift: someone edits the master by hand; the reconciler reverts it.
    reconciler = Reconciler(orchestrator, watcher_timeout_s=120.0)
    service.master.config = service.master.config.with_values({"work_mem": 999})
    action = reconciler.tick(deployment.instance_id, service, now_s=0.0)
    print(f"drift detected: {action.drift_detected} (within watcher timeout)")
    action = reconciler.tick(deployment.instance_id, service, now_s=150.0)
    print(
        f"after timeout: reconciled={action.reconciled};"
        f" work_mem back to {service.master.config['work_mem']:.0f} MB\n"
    )

    # 3. Scheduled downtime sizes the non-tunable buffer pool.
    config_history = ConfigRepository()
    for t, buffer_mb in enumerate((1500, 2200, 2600, 2400)):
        config_history.store(
            deployment.instance_id,
            service.config.with_values({"shared_buffers": buffer_mb}),
            "ottertune",
            float(t),
        )
    policy = NonTunableKnobPolicy(config_history)
    decision = policy.decide(
        deployment.instance_id,
        service.master.config,
        working_set_mb=8.0 * 1024 * 0.35,
        memory_limit_mb=service.master.vm.db_memory_limit_mb,
        entropy_hits=0,
        last_downtime_s=0.0,
    )
    print(
        f"downtime decision [{decision.rule}]: shared_buffers"
        f" {decision.old_value_mb:.0f} -> {decision.new_value_mb:.0f} MB"
    )
    target = service.master.config.clamped(
        {decision.buffer_knob: decision.new_value_mb}
    )
    report = dfa.apply(service, target, mode="restart")
    print(f"applied at downtime across {report.nodes_updated} nodes")


if __name__ == "__main__":
    main()
