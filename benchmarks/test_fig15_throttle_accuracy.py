"""Bench: Fig. 15 — accuracy of throttle classes vs OtterTune's ranking."""

from conftest import run_once

from repro.experiments import fig15_accuracy, format_table


def test_fig15_throttle_accuracy(benchmark, emit):
    result = run_once(benchmark, fig15_accuracy.run, windows_per_workload=12)
    classes = ("memory", "background_writer", "async_planner")
    emit(
        "fig15_throttle_accuracy",
        format_table(
            ("knob class", "throttles", "accurate", "accuracy"),
            [
                (
                    cls,
                    result.total.get(cls, 0),
                    result.accurate.get(cls, 0),
                    (
                        f"{result.accuracy(cls):.2f}"
                        if result.accuracy(cls) is not None
                        else "-"
                    ),
                )
                for cls in classes
            ],
        ),
    )
    memory_acc = result.accuracy("memory")
    planner_acc = result.accuracy("async_planner")
    # Paper shape: high accuracy for memory (and bgwriter where present),
    # low for async/planner — OtterTune's metric set has no planner
    # estimates, so it cannot validate those throttles.
    assert memory_acc is not None and memory_acc >= 0.5
    if planner_acc is not None and memory_acc is not None:
        assert planner_acc <= memory_acc
