"""Bench: Fig. 9 — tuning requests per minute, TDE vs periodic."""

from conftest import run_once

from repro.experiments import fig09_requests_per_minute, format_table


def test_fig09_requests_per_minute(benchmark, emit):
    run = run_once(
        benchmark,
        fig09_requests_per_minute.run,
        fleet_size=10,
        hours=12.0,
    )
    emit(
        "fig09_requests_per_minute",
        format_table(
            ("hour", "TDE rpm", "periodic 5min rpm", "periodic 10min rpm"),
            [
                (
                    f"{p.hour:.0f}",
                    f"{p.tde_rpm:.2f}",
                    f"{p.periodic_5min_rpm:.2f}",
                    f"{p.periodic_10min_rpm:.2f}",
                )
                for p in run.points
            ],
        )
        + (
            f"\ntotals: TDE {run.tde_total}, 5min {run.periodic_5min_total}, "
            f"10min {run.periodic_10min_total}; TDE peak hour "
            f"{run.tde_peak_hour():.0f}"
        ),
    )
    # Paper shape: the TDE sits well below both periodic baselines in
    # every bucket and in total.
    assert run.tde_total < run.periodic_10min_total * 0.6
    assert run.tde_total < run.periodic_5min_total * 0.3
    assert all(p.tde_rpm < p.periodic_5min_rpm for p in run.points)
    assert all(p.tde_rpm < p.periodic_10min_rpm for p in run.points)
