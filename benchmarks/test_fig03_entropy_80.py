"""Bench: Fig. 3 — entropy variation at 80% adulteration probability."""

from conftest import run_once

from repro.experiments import fig03_04_entropy, format_table
from repro.experiments.fig03_04_entropy import mean_separation


def test_fig03_entropy_80(benchmark, emit):
    points = run_once(benchmark, fig03_04_entropy.run, adulteration_p=0.8, windows=20)
    emit(
        "fig03_entropy_80",
        format_table(
            ("window", "entropy tpcc", "entropy adulterated"),
            [
                (p.window, f"{p.entropy_tpcc:.3f}", f"{p.entropy_adulterated:.3f}")
                for p in points
            ],
        ),
    )
    # Paper shape: the adulterated series sits clearly above plain TPC-C
    # in every window (its class distribution is far more even).
    assert all(p.entropy_adulterated > p.entropy_tpcc for p in points)
    assert mean_separation(points) > 0.2
