"""Bench: §2.1 hybrid tuner vs its BO and RL members."""

from conftest import run_once

from repro.experiments import ablation_hybrid, format_table


def test_ablation_hybrid(benchmark, emit):
    profiles = run_once(benchmark, ablation_hybrid.run)
    emit(
        "ablation_hybrid",
        format_table(
            ("tuner", "rec cost s", "instances/deployment", "final tps", "best tps"),
            [
                (
                    p.name,
                    f"{p.recommendation_cost_s:.0f}",
                    f"{p.instances_per_deployment:.1f}",
                    f"{p.final_tps:.0f}",
                    f"{p.best_tps:.0f}",
                )
                for p in profiles
            ],
        ),
    )
    by_name = {p.name: p for p in profiles}
    bo, rl, hybrid = by_name["ottertune"], by_name["cdbtune"], by_name["hybrid"]
    # §1's scalability bound: at production repository sizes, one BO
    # deployment serves only a handful of instances at a 5-minute period.
    assert bo.instances_per_deployment < 5.0
    assert rl.instances_per_deployment > 50.0
    # The hybrid sits between on cost and near the BO member on quality.
    assert bo.instances_per_deployment < hybrid.instances_per_deployment
    assert hybrid.instances_per_deployment < rl.instances_per_deployment
    assert hybrid.best_tps > rl.final_tps
