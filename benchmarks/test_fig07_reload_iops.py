"""Bench: Fig. 7 — IOPS under TPC-C with 20-second reload signals."""

from conftest import run_once

from repro.experiments import fig07_reload_iops, format_table


def test_fig07_reload_iops(benchmark, emit):
    comparison = run_once(benchmark, fig07_reload_iops.run, duration_s=600.0)
    series = {
        "no_reload": comparison.no_reload,
        "reload_signal": comparison.reload_signal,
        "socket_activation": comparison.socket_activation,
    }
    emit(
        "fig07_reload_iops",
        format_table(
            ("variant", "mean IOPS", "mean tps", "relative tps", "reloads"),
            [
                (
                    name,
                    f"{report.iops.mean():.0f}",
                    f"{report.mean_tps:.0f}",
                    f"{comparison.relative_tps(report):.3f}",
                    report.reloads_fired,
                )
                for name, report in series.items()
            ],
        ),
    )
    # Paper shape: reload signals every 20 s do not compromise
    # performance; socket activation jitters visibly.
    assert comparison.relative_tps(comparison.reload_signal) > 0.97
    assert comparison.relative_tps(comparison.socket_activation) < 0.9
    assert comparison.reload_signal.reloads_fired >= 25
