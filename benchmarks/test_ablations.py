"""Benches: the DESIGN.md ablations (entropy filter, mapping, slave-first)."""

from conftest import run_once

from repro.experiments import ablations, format_table


def test_ablation_entropy_filter(benchmark, emit):
    result = run_once(benchmark, ablations.ablate_entropy_filter, windows=24)
    emit(
        "ablation_entropy_filter",
        format_table(
            ("variant", "tuning requests", "plan-upgrade escalations"),
            [
                ("with filter", result.with_filter_requests, result.with_filter_escalations),
                ("without filter", result.without_filter_requests, 0),
            ],
        ),
    )
    # The filter converts futile throttles into plan-upgrade escalations.
    assert result.with_filter_escalations >= 1
    assert result.with_filter_requests < result.without_filter_requests


def test_ablation_mapping_growth(benchmark, emit):
    result = run_once(benchmark, ablations.ablate_mapping_growth)
    emit(
        "ablation_mapping_growth",
        format_table(
            ("target samples", "mapped to the right workload"),
            list(zip(result.samples_per_stage, result.mapped_correctly)),
        ),
    )
    # §3.2: mapping quality improves (and then stays correct) as the
    # target workload accumulates samples.
    assert result.mapped_correctly[-1]
    # Once correct, it stays correct for every larger sample count.
    first_correct = result.mapped_correctly.index(True)
    assert all(result.mapped_correctly[first_correct:])


def test_ablation_slave_first(benchmark, emit):
    result = run_once(benchmark, ablations.ablate_slave_first)
    emit(
        "ablation_slave_first",
        format_table(
            ("apply order", "master still serving"),
            [
                ("slave-first (§4)", result.slave_first_master_up),
                ("master-first", result.master_first_master_up),
            ],
        ),
    )
    assert result.slave_first_master_up
    assert not result.master_first_master_up
