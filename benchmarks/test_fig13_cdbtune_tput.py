"""Bench: Fig. 13 — live throughput, CDBTune vs CDBTune + TDE.

Native CDBTune applies a fresh exploration config with a database restart
every period (its own methodology); each restart costs downtime, a
shutdown checkpoint proportional to the dirty backlog, and a cold buffer
pool. The TDE-gated deployment requests an order of magnitude less often
and keeps the daytime throughput ahead — the paper's Fig. 13 direction.
"""

from conftest import run_once

from repro.experiments import fig12_13_throughput, format_table


def test_fig13_cdbtune_throughput(benchmark, emit):
    series = run_once(
        benchmark,
        fig12_13_throughput.run,
        tuner_kind="cdbtune",
        flavor="postgres",
        hours=24.0,
        window_s=600.0,
        feeder_count=3,
    )
    emit(
        "fig13_cdbtune_tput",
        format_table(
            ("hour", "CDBTune+TDE tps", "CDBTune tps"),
            [
                (f"{h:.0f}", f"{g:.0f}", f"{u:.0f}")
                for h, g, u in zip(
                    series.hours, series.gated_tps, series.ungated_tps
                )
            ],
        )
        + (
            f"\ndaytime means: gated {series.daytime_mean(series.gated_tps):.0f}"
            f" vs ungated {series.daytime_mean(series.ungated_tps):.0f}"
            f" (advantage {series.gated_advantage:.2f}x);"
            f" requests gated {series.gated_requests}"
            f" vs ungated {series.ungated_requests}"
        ),
    )
    # Paper shape: gated at least matches ungated daytime throughput at a
    # fraction of the tuning/restart churn.
    assert series.gated_requests < series.ungated_requests * 0.75
    assert series.gated_advantage > 0.9
