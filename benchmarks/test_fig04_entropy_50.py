"""Bench: Fig. 4 — entropy variation at 50% adulteration probability."""

from conftest import run_once

from repro.experiments import fig03_04_entropy, format_table
from repro.experiments.fig03_04_entropy import mean_separation


def test_fig04_entropy_50(benchmark, emit):
    points = run_once(benchmark, fig03_04_entropy.run, adulteration_p=0.5, windows=20)
    emit(
        "fig04_entropy_50",
        format_table(
            ("window", "entropy tpcc", "entropy adulterated"),
            [
                (p.window, f"{p.entropy_tpcc:.3f}", f"{p.entropy_adulterated:.3f}")
                for p in points
            ],
        ),
    )
    assert all(p.entropy_adulterated > p.entropy_tpcc for p in points)
    assert mean_separation(points) > 0.15
    # The 80% variant separates at least as strongly as the 50% one.
    strong = fig03_04_entropy.run(adulteration_p=0.8, windows=20)
    assert mean_separation(strong) >= mean_separation(points) - 0.02
