"""Bench: Fig. 2 — queries and memory statistics per workload."""

from conftest import run_once

from repro.experiments import fig02_memory_table, format_table


def test_fig02_memory_table(benchmark, emit):
    rows = run_once(benchmark, fig02_memory_table.run)
    emit(
        "fig02_memory_table",
        format_table(
            ("workload", "work_mem MB", "memory used MB", "disk used MB"),
            [
                (r.workload, r.work_mem_allocated_mb, r.memory_used_mb, r.disk_used_mb)
                for r in rows
            ],
        ),
    )
    by_name = {r.workload: r for r in rows}
    # Paper shape: TPC-C ~0.5 MB and no disk; CH-bench(TPCH) spills
    # hundreds of MB; YCSB and Wikipedia use no working memory at all.
    assert 0.3 <= by_name["tpcc"].memory_used_mb <= 0.7
    assert by_name["tpcc"].disk_used_mb == 0.0
    assert by_name["tpch"].disk_used_mb > 200.0
    assert by_name["ycsb"].memory_used_mb == 0.0
    assert by_name["wikipedia"].memory_used_mb == 0.0
