"""Bench: macro throughput of the tuning-request hot path.

Steps a seeded AutoDBaaS deployment (8 instances, mixed TDE/periodic
policies, adulterated + plain TPC-C) through 12 five-minute windows and
reports fleet windows per second. This is the end-to-end loop the PR's
vectorisation work targets: workload generation, DB simulation, TDE
inspection and OtterTune recommendations all on one clock.

The pre-optimisation baseline for the full scenario on the reference dev
machine was 23.5 s wall (4.1 windows/s); see docs/performance.md.

Set ``PERF_QUICK=1`` (CI) to run a smaller scenario with the same shape.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro import AutoDBaaS
from repro.cloud import Provisioner
from repro.dbsim import postgres_catalog
from repro.tuners import OtterTuneTuner, WorkloadRepository
from repro.workloads import AdulteratedTPCCWorkload, TPCCWorkload

QUICK = os.environ.get("PERF_QUICK") == "1"
N_INSTANCES = 4 if QUICK else 8
N_WINDOWS = 4 if QUICK else 12


def _build(n_instances: int, seed: int = 0) -> AutoDBaaS:
    repository = WorkloadRepository()
    tuner = OtterTuneTuner(
        postgres_catalog(), repository, memory_limit_mb=6553.6, seed=1
    )
    service = AutoDBaaS([tuner], repository, window_s=300.0, seed=seed)
    provisioner = Provisioner(seed=seed + 1)
    for i in range(n_instances):
        deployment = provisioner.provision(plan="m4.large", data_size_gb=21.0)
        workload = (
            AdulteratedTPCCWorkload(0.8, seed=seed + 10 + i)
            if i % 2 == 0
            else TPCCWorkload(seed=seed + 10 + i)
        )
        service.attach(deployment, workload, policy="tde" if i % 3 else "periodic")
    return service


def test_perf_fleet_windows_per_second(benchmark, emit):
    service = _build(N_INSTANCES)

    def work() -> float:
        start = time.perf_counter()
        for _ in range(N_WINDOWS):
            service.step()
        return time.perf_counter() - start

    elapsed = run_once(benchmark, work)
    member_windows = N_INSTANCES * N_WINDOWS
    emit(
        "perf_fleet",
        f"scenario: {N_INSTANCES} instances x {N_WINDOWS} windows of 300 s"
        f" (quick={QUICK})\n"
        f"wall: {elapsed:.2f} s\n"
        f"member-windows/s: {member_windows / elapsed:.1f}",
    )
    assert elapsed > 0.0
    if not QUICK:
        # The pre-optimisation implementation took 23.5 s on the reference
        # machine; stay comfortably below it even on slower CI hardware.
        assert elapsed < 23.5
