"""Bench: Fig. 11 — throttles by knob class per workload, MySQL."""

from conftest import run_once
from test_fig10_throttles_postgres import _render

from repro.experiments import fig10_11_throttles


def test_fig11_throttles_mysql(benchmark, emit):
    panels = run_once(benchmark, fig10_11_throttles.run, flavor="mysql", iterations=20)
    emit("fig11_throttles_mysql", _render(panels))
    write_heavy = panels["write-heavy"][0]
    # MySQL 5.6's tiny default sort/join buffers (0.25 MB) make TPC-C's
    # stock-level sorts spill, so write-heavy shows memory throttles
    # alongside the background-writer ones (the paper's "sort_buffer_size
    # is TPCC's hot knob in MySQL").
    assert write_heavy.background_writer > 0
    for r in panels["mix/read-heavy"]:
        # YCSB-A's 50% updates legitimately add bgwriter signal in
        # the mix panel; memory(+planner) must at least match it.
        assert r.memory + r.async_planner >= r.background_writer
        assert r.memory > 0
