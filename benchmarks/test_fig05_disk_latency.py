"""Bench: Fig. 5 — TPC-C disk write latency, default vs tuned config."""

from conftest import run_once

from repro.experiments import fig05_disk_latency, format_table


def test_fig05_disk_latency(benchmark, emit):
    run = run_once(benchmark, fig05_disk_latency.run, duration_s=900.0, rps=1500.0)
    default_minutely = run.default_latency.resample_mean(60.0)
    tuned_minutely = run.tuned_latency.resample_mean(60.0)
    emit(
        "fig05_disk_latency",
        format_table(
            ("minute", "default ms", "tuned ms"),
            [
                (i, f"{d:.2f}", f"{t:.2f}")
                for i, (d, t) in enumerate(
                    zip(default_minutely.values, tuned_minutely.values)
                )
            ],
        )
        + (
            f"\nmean default {run.default_mean_ms:.2f} ms"
            f"  mean tuned {run.tuned_mean_ms:.2f} ms"
        ),
    )
    # Paper shape: the tuned configuration's write latency is much lower
    # and its worst case (the checkpoint surges of the default trace)
    # shrinks drastically.
    assert run.tuned_mean_ms < run.default_mean_ms * 0.6
    assert run.tuned_latency.max() < run.default_latency.max()
