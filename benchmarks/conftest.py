"""Benchmark-suite helpers: result emission and shared options.

Every bench regenerates one of the paper's tables/figures, prints the
rows/series, writes them under ``benchmarks/out/`` and asserts the
expected *shape* (who wins, roughly by how much, where crossovers fall) —
absolute numbers belong to the simulator, not the authors' testbed.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def emit():
    """Print a figure's text rendering and persist it to benchmarks/out/."""

    def _emit(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}")

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
