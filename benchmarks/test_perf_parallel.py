"""Bench: speedup of the sharded fleet executor on fig09.

Runs the fig09 fleet-tuning loop serially (``workers=1``, the in-process
sequential backend) and sharded across 4 worker processes, asserts the
results are identical, and reports wall time and speedup. The full
profile runs the paper-scale 80-member fleet over 24 simulated hours —
the workload the executor exists for; ``PERF_QUICK=1`` (CI) shrinks it
to a 12-member fleet over 2 hours with the same shape.

The >= 2x speedup assertion only applies where it can physically hold:
the full profile on a machine granting this process at least 4 usable
cores (the CI perf runners). Parity is asserted everywhere.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.experiments import fig09_requests_per_minute as fig09

QUICK = os.environ.get("PERF_QUICK") == "1"
FLEET_SIZE = 12 if QUICK else 80
HOURS = 2.0 if QUICK else 24.0
WARMUP_HOURS = 0.5 if QUICK else 2.0
WORKERS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _run(workers: int) -> fig09.Fig09Run:
    return fig09.run(
        fleet_size=FLEET_SIZE,
        hours=HOURS,
        warmup_hours=WARMUP_HOURS,
        seed=0,
        workers=workers,
    )


def test_perf_parallel_fleet_speedup(benchmark, emit):
    start = time.perf_counter()
    serial = _run(workers=1)
    serial_s = time.perf_counter() - start

    def work() -> fig09.Fig09Run:
        return _run(workers=WORKERS)

    start = time.perf_counter()
    parallel = run_once(benchmark, work)
    parallel_s = time.perf_counter() - start

    assert parallel == serial, "parallel backend diverged from serial"

    cores = _usable_cores()
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    emit(
        "perf_parallel",
        f"scenario: fleet={FLEET_SIZE} hours={HOURS:g} "
        f"workers={WORKERS} (quick={QUICK}, usable_cores={cores})\n"
        f"serial wall:   {serial_s:.2f} s\n"
        f"parallel wall: {parallel_s:.2f} s\n"
        f"speedup: {speedup:.2f}x\n"
        f"tde_total: {serial.tde_total} (identical across backends)",
    )
    assert serial_s > 0.0 and parallel_s > 0.0
    if not QUICK and cores >= WORKERS:
        # Four shards of a compute-bound fleet on >= 4 cores: anything
        # under 2x means the executor is serialising somewhere.
        assert speedup >= 2.0
