"""Bench: members/s trajectory of the columnar fleet engine + sharded executor.

Two measurements, one JSON artifact (``benchmarks/out/BENCH_parallel.json``):

1. **Engine trajectory** — steps a :class:`LiveFleet` serially at 80, 1k
   (and 10k in the full profile) members, splitting each window into its
   three phases (workload generation, columnar ``step_window``, monitoring
   ingest) and reporting members/s for the engine phases and the full
   step. The serial 1k-member engine rate is the regression-gated number:
   it must stay within 20% of the committed baseline
   (``benchmarks/baselines/BENCH_parallel_baseline.json``) and at least 3x
   above the recorded PR-5 per-object-loop engine.
2. **Executor scaling** — runs the fig09 fleet-tuning loop at workers
   1/2/4, asserts byte-identical results everywhere, and attributes wall
   time per phase (member step / serialize / send / recv wait / reduce)
   from the executor's pipe-seam stats, including the steady-state
   command bytes vs the full-snapshot rebroadcast they replaced.

The >= 2x speedup assertion only applies where it can physically hold:
the full profile on a machine granting this process at least 4 usable
cores (cpu affinity, not ``cpu_count()``). Everywhere else the bench
records the measured speedup plus an explicit skip reason instead of
failing on hardware it cannot control. ``PERF_QUICK=1`` (CI) shrinks the
fig09 scenario and drops the 10k point, keeping the same shape.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import run_once

from repro.cloud.fleet import LiveFleet
from repro.experiments import fig09_requests_per_minute as fig09
from repro.parallel import SessionStats

QUICK = os.environ.get("PERF_QUICK") == "1"
WINDOW_S = 300.0
#: (members, windows) trajectory points; bigger fleets get fewer windows
#: so the full profile stays minutes, not hours.
TRAJECTORY = ((80, 3), (1000, 2)) if QUICK else ((80, 3), (1000, 2), (10000, 1))
WORKER_COUNTS = (1, 2, 4)
FLEET_SIZE = 12 if QUICK else 80
HOURS = 2.0 if QUICK else 24.0
WARMUP_HOURS = 0.5 if QUICK else 2.0

BASELINE_PATH = (
    pathlib.Path(__file__).parent / "baselines" / "BENCH_parallel_baseline.json"
)
JSON_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_parallel.json"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _engine_point(members: int, windows: int) -> dict:
    """Serial phase-split trajectory point: gen / engine step / ingest."""
    fleet = LiveFleet(size=members, seed=0)
    gen_s = run_s = ingest_s = 0.0
    for _ in range(windows):
        t0 = time.perf_counter()
        batches = [
            member.workload.batch(
                WINDOW_S, start_time_s=fleet.clock_s + member.phase_offset_s
            )
            for member in fleet.members
        ]
        t1 = time.perf_counter()
        results = fleet._engine.step_window(batches)
        t2 = time.perf_counter()
        for member, result in zip(fleet.members, results):
            member.monitoring.ingest(result)
        fleet.clock_s += WINDOW_S
        t3 = time.perf_counter()
        gen_s += t1 - t0
        run_s += t2 - t1
        ingest_s += t3 - t2
    mw = members * windows
    return {
        "members": members,
        "windows": windows,
        "phase_s": {"gen": gen_s, "run": run_s, "ingest": ingest_s},
        "ms_per_member_window": {
            "gen": 1e3 * gen_s / mw,
            "run": 1e3 * run_s / mw,
            "ingest": 1e3 * ingest_s / mw,
        },
        "engine_members_per_s": mw / (run_s + ingest_s),
        "full_members_per_s": mw / (gen_s + run_s + ingest_s),
    }


def _fig09_point(workers: int) -> tuple[fig09.Fig09Run, dict]:
    stats = SessionStats()
    start = time.perf_counter()
    result = fig09.run(
        fleet_size=FLEET_SIZE,
        hours=HOURS,
        warmup_hours=WARMUP_HOURS,
        seed=0,
        workers=workers,
        stats=stats,
    )
    wall_s = time.perf_counter() - start
    steady = stats.steady_steps()
    peak = max((s.command_bytes for s in steady), default=0)
    mean = stats.mean_command_bytes()
    point = {
        "workers": workers,
        "backend": stats.backend,
        "wall_s": wall_s,
        "windows": len(stats.steps),
        "snapshot_bytes_per_worker": stats.snapshot_bytes,
        "final_snapshot_bytes": stats.final_snapshot_bytes,
        "window0_command_bytes": (
            stats.steps[0].command_bytes if stats.steps else 0
        ),
        "steady_command_bytes": {"mean": mean, "peak": peak},
        # vs what the pre-delta protocol would re-pickle at the last
        # window: the repository including every ingested sample.
        "bytes_vs_snapshot_rebroadcast": (
            stats.final_snapshot_bytes / mean if mean else None
        ),
        "phase_s": {
            "member_step": stats.total("step_s"),
            "serialize": stats.total("serialize_s"),
            "send": stats.total("send_s"),
            "recv_wait": stats.total("recv_s"),
            "reduce": stats.total("merge_s"),
        },
    }
    return result, point


def test_perf_parallel_members_trajectory(benchmark, emit):
    cores = _usable_cores()
    baseline = json.loads(BASELINE_PATH.read_text())

    def work() -> dict:
        report: dict = {
            "quick": QUICK,
            "usable_cores": cores,
            "engine_trajectory": [
                _engine_point(members, windows)
                for members, windows in TRAJECTORY
            ],
        }
        serial: fig09.Fig09Run | None = None
        runs = []
        for workers in WORKER_COUNTS:
            result, point = _fig09_point(workers)
            if serial is None:
                serial = result
                point["equal_to_serial"] = True
            else:
                point["equal_to_serial"] = result == serial
            runs.append(point)
        report["fig09"] = {
            "fleet_size": FLEET_SIZE,
            "hours": HOURS,
            "runs": runs,
        }
        return report

    report = run_once(benchmark, work)

    # --- equality: the hard invariant, asserted at every worker count.
    for point in report["fig09"]["runs"]:
        assert point["equal_to_serial"], (
            f"workers={point['workers']} diverged from serial"
        )

    # --- speedup: asserted only where it can physically hold.
    runs = {p["workers"]: p for p in report["fig09"]["runs"]}
    speedup = runs[1]["wall_s"] / runs[4]["wall_s"]
    fig = report["fig09"]
    fig["speedup_4_workers"] = speedup
    if QUICK:
        fig["speedup_skip_reason"] = (
            "PERF_QUICK profile: scenario too small to amortise fork cost"
        )
    elif cores < 2:
        fig["speedup_skip_reason"] = (
            f"only {cores} usable core(s) granted to this process"
        )
    elif cores < 4:
        fig["speedup_skip_reason"] = (
            f"{cores} usable cores < 4 workers; 2x not physically assertable"
        )
    else:
        fig["speedup_skip_reason"] = None

    # --- regression gates on the serial 1k-member engine rate.
    point_1k = next(
        p for p in report["engine_trajectory"] if p["members"] == 1000
    )
    gates = {
        "engine_members_per_s_1k": point_1k["engine_members_per_s"],
        "pr5_engine_members_per_s_1k": baseline["pr5_engine_members_per_s_1k"],
        "min_vs_pr5": 3.0 * baseline["pr5_engine_members_per_s_1k"],
        "baseline_engine_members_per_s_1k": baseline[
            "engine_members_per_s_1k"
        ],
        "regression_floor": 0.8 * baseline["engine_members_per_s_1k"],
    }
    report["gates"] = gates

    JSON_OUT.parent.mkdir(exist_ok=True)
    JSON_OUT.write_text(json.dumps(report, indent=1) + "\n")

    lines = [
        f"scenario: quick={QUICK} usable_cores={cores}",
        "engine trajectory (serial, phase-split):",
    ]
    for p in report["engine_trajectory"]:
        ms = p["ms_per_member_window"]
        lines.append(
            f"  {p['members']:>6} members x {p['windows']} windows: "
            f"engine {p['engine_members_per_s']:8.1f} members/s, "
            f"full {p['full_members_per_s']:7.1f} members/s "
            f"(gen {ms['gen']:.3f} / run {ms['run']:.3f} / "
            f"ingest {ms['ingest']:.3f} ms/mw)"
        )
    lines.append(
        f"fig09 executor scaling (fleet={FLEET_SIZE}, hours={HOURS:g}):"
    )
    for p in report["fig09"]["runs"]:
        ratio = p["bytes_vs_snapshot_rebroadcast"]
        lines.append(
            f"  workers={p['workers']}: {p['wall_s']:6.2f} s wall, "
            f"equal={p['equal_to_serial']}, "
            f"steady command {p['steady_command_bytes']['mean']:.0f} B/window"
            + (f" ({ratio:.1f}x under snapshot)" if ratio else "")
        )
    lines.append(
        f"speedup at 4 workers: {speedup:.2f}x"
        + (
            f" (assertion skipped: {fig['speedup_skip_reason']})"
            if fig["speedup_skip_reason"]
            else ""
        )
    )
    lines.append(
        f"serial 1k engine gate: {gates['engine_members_per_s_1k']:.1f} "
        f">= {gates['regression_floor']:.1f} members/s "
        f"(baseline {gates['baseline_engine_members_per_s_1k']:.1f}, "
        f"PR-5 {gates['pr5_engine_members_per_s_1k']:.1f})"
    )
    emit("perf_parallel", "\n".join(lines))

    # Delta-only wire discipline holds at every process-backend point.
    for p in report["fig09"]["runs"]:
        if p["backend"] == "process":
            assert p["bytes_vs_snapshot_rebroadcast"] >= 10.0, (
                "steady-state command within 10x of a snapshot rebroadcast"
            )

    assert gates["engine_members_per_s_1k"] >= gates["min_vs_pr5"], (
        "columnar engine lost its >=3x margin over the PR-5 per-object loop"
    )
    assert gates["engine_members_per_s_1k"] >= gates["regression_floor"], (
        "serial 1k-member engine members/s regressed >20% vs committed "
        "baseline — update the baseline only with a justified perf change"
    )
    if fig["speedup_skip_reason"] is None:
        # Four shards of a compute-bound fleet on >= 4 cores: anything
        # under 2x means the executor is serialising somewhere.
        assert speedup >= 2.0
