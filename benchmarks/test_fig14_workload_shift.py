"""Bench: Table 1 + Fig. 14 — throttles captured on workload transitions."""

from conftest import run_once

from repro.experiments import fig14_workload_shift, format_table


def _run_two_seeds():
    """Aggregate two repetitions (the paper averages iterations)."""
    first = fig14_workload_shift.run(seed=0)
    second = fig14_workload_shift.run(seed=5)
    for a, b in zip(first, second):
        a.throttles_total += b.throttles_total
        for cls, count in b.by_class.items():
            a.by_class[cls] = a.by_class.get(cls, 0) + count
    return first


def test_fig14_workload_shift(benchmark, emit):
    results = run_once(benchmark, _run_two_seeds)
    emit(
        "fig14_workload_shift",
        format_table(
            ("#", "transition", "window", "throttles", "classes observed", "classes expected"),
            [
                (
                    r.spec.number,
                    f"{r.spec.source}->{r.spec.target}",
                    f"{r.spec.window_min:.0f} min",
                    r.throttles_total,
                    ",".join(r.observed_classes()) or "-",
                    ",".join(r.spec.expected_classes) or "-",
                )
                for r in results
            ],
        ),
    )
    by_number = {r.spec.number: r for r in results}
    # Paper shape highlights (asserted at group level — which *specific*
    # transition surfaces the background-writer signal varies with the
    # settled configuration the tuner handed the source workload):
    # 1. write-pattern transitions (#1, #5, #6) raise more throttles than
    #    the point-read-shaped YCSB↔Wiki pair (#3, #4);
    write_group = sum(
        by_number[n].throttles_total for n in (1, 5, 6)
    )
    quiet_group = by_number[3].throttles_total + by_number[4].throttles_total
    assert write_group > quiet_group
    # 2. background-writer throttles appear somewhere across the table;
    assert any(
        r.by_class.get("background_writer", 0) > 0 for r in results
    )
    # 3. #4 (Wiki→YCSB, Table 1's "NA" row) raises no *memory or
    #    planner* throttles — its residual signal, when any, is the
    #    bgwriter reacting to the settled configuration, which varies
    #    with the tuner's settle-phase picks;
    assert by_number[4].by_class.get("memory", 0) == 0
    assert by_number[4].by_class.get("async_planner", 0) == 0
    # 4. transitions raise a handful of throttles, not a stream —
    #    detection windows are minutes (Table 1), not hours.
    assert all(r.throttles_total <= 24 for r in results)
