"""Bench: §7 future work — learned (rule-free) TDE vs the rule engine."""

from conftest import run_once

from repro.experiments import ablation_learned_tde, format_table


def test_ablation_learned_tde(benchmark, emit):
    result = run_once(benchmark, ablation_learned_tde.run)
    emit(
        "ablation_learned_tde",
        format_table(
            ("knob class", "held-out agreement with rule TDE"),
            [
                (cls, f"{acc:.2f}")
                for cls, acc in result.accuracy_by_class.items()
            ],
        )
        + (
            f"\ntrained on {result.train_windows} windows,"
            f" tested on {result.test_windows}; final BCE {result.final_loss:.3f}"
        ),
    )
    acc = result.accuracy_by_class
    # The learned detector reproduces the metric-visible classes almost
    # perfectly and does not beat them on async/planner (whose rule-based
    # evidence comes from active EXPLAIN probing).
    assert acc["memory"] >= 0.9
    assert acc["background_writer"] >= 0.8
    assert acc["async_planner"] <= max(acc["memory"], acc["background_writer"])