"""Bench: Fig. 10 — throttles by knob class per workload, PostgreSQL."""

from conftest import run_once

from repro.experiments import fig10_11_throttles, format_table


def _render(panels):
    rows = []
    for panel, results in panels.items():
        for r in results:
            rows.append(
                (
                    panel,
                    r.workload,
                    f"{r.memory:.2f}",
                    f"{r.background_writer:.2f}",
                    f"{r.async_planner:.2f}",
                    r.dominant_class,
                )
            )
    return format_table(
        ("panel", "workload", "memory", "bgwriter", "async/planner", "dominant"),
        rows,
    )


def test_fig10_throttles_postgres(benchmark, emit):
    panels = run_once(benchmark, fig10_11_throttles.run, flavor="postgres", iterations=20)
    emit("fig10_throttles_postgres", _render(panels))
    write_heavy = panels["write-heavy"][0]
    # Paper shape: write-heavy raises mostly background-writer throttles...
    assert write_heavy.dominant_class == "background_writer"
    # ...read/mix workloads raise memory (+ async/planner) throttles...
    for r in panels["mix/read-heavy"]:
        # YCSB-A's 50% updates legitimately add bgwriter signal in
        # the mix panel; memory(+planner) must at least match it.
        assert r.memory + r.async_planner >= r.background_writer
        assert r.memory > 0
    # ...and the production workload is a mixture across classes.
    production = panels["production"][0]
    assert production.memory > 0 or production.async_planner > 0
