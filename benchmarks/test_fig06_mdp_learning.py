"""Bench: Fig. 6 — planner-MDP learning progress and accuracy."""

from conftest import run_once

from repro.experiments import fig06_mdp_learning, format_table


def test_fig06_mdp_learning(benchmark, emit):
    run = run_once(benchmark, fig06_mdp_learning.run, n_episodes=10)
    rewards = run.episodic_rewards
    mean_acc = run.cumulative_mean_accuracy()
    emit(
        "fig06_mdp_learning",
        format_table(
            ("episode", "episodic reward", "accuracy", "running mean accuracy"),
            [
                (i, f"{r:.3f}", f"{a:.3f}", f"{m:.3f}")
                for i, (r, a, m) in enumerate(
                    zip(rewards, run.accuracies, mean_acc)
                )
            ],
        ),
    )
    # Paper shape (Fig. 6a/6b): the first, purely-exploratory episode
    # rewards least; accuracy climbs as the automata concentrate on the
    # profitable directions.
    assert rewards[0] <= min(rewards[1:]) + 1e-9
    assert run.accuracies[-1] >= run.accuracies[0] + 0.05
    assert mean_acc[-1] >= mean_acc[0]
    assert all(0.0 <= a <= 1.0 for a in run.accuracies)
