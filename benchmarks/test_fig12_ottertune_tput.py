"""Bench: Fig. 12 — live throughput, OtterTune vs OtterTune + TDE."""

from conftest import run_once

from repro.experiments import fig12_13_throughput, format_table


def test_fig12_ottertune_throughput(benchmark, emit):
    series = run_once(
        benchmark,
        fig12_13_throughput.run,
        tuner_kind="ottertune",
        flavor="postgres",
        hours=24.0,
        window_s=600.0,
        feeder_count=3,
    )
    emit(
        "fig12_ottertune_tput",
        format_table(
            ("hour", "OtterTune+TDE tps", "OtterTune tps"),
            [
                (f"{h:.0f}", f"{g:.0f}", f"{u:.0f}")
                for h, g, u in zip(
                    series.hours, series.gated_tps, series.ungated_tps
                )
            ],
        )
        + (
            f"\ndaytime means: gated {series.daytime_mean(series.gated_tps):.0f}"
            f" vs ungated {series.daytime_mean(series.ungated_tps):.0f}"
            f" (advantage {series.gated_advantage:.2f}x);"
            f" requests gated {series.gated_requests}"
            f" vs ungated {series.ungated_requests}"
        ),
    )
    # Robust shape (see EXPERIMENTS.md deviations): the TDE-gated
    # pipeline stays in the ungated deployment's throughput band while
    # issuing a fraction of the tuning requests. The paper's strict
    # "gated wins throughput" direction is not stable in this noise-free
    # simulator, where every busy-hour sample is informative and more
    # tuning iterations can outweigh restart churn.
    assert series.gated_advantage > 0.8
    assert series.gated_requests < series.ungated_requests * 0.75
