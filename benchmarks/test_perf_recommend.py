"""Bench: recommend() cold/warm trajectory — screen and knob selection.

Six timed points, one JSON artifact (``benchmarks/out/BENCH_recommend.json``):

- **cold** requests land right after a fresh repository sample (the
  Fig. 9 pattern: every TDE tuning request is preceded by an upload), so
  the exact GPR refits — and with the screen armed the coreset surrogate
  refits too;
- **warm** requests hit an unchanged repository version and are served
  from the version-keyed caches; with the screen armed, §4 budget repair
  and exact GP-UCB run on a <= ``shortlist_size`` shortlist instead of
  the full 720-candidate matrix;
- the **select** profile arms the screen *plus* dynamic knob selection
  (``SelectionPolicy``): candidate generation, repair, the screen and
  the GP all run inside the per-workload active subspace (8 of 14
  catalog dims), with inactive knobs carried from the incumbent.

Timing is **best-of-rounds** (the minimum over timed rounds): the
steady-state cost of the code path with scheduler and allocator noise
removed, which is what the speedup ratio gate needs to be stable on
shared CI boxes. The mean is recorded alongside for context.

Gates:

- warm speedup (flag-off / flag-on) >= 3x, and within 20% of the
  committed baseline (``benchmarks/baselines/BENCH_recommend_baseline.json``);
- the flag-on path hands exact scoring a shortlist no larger than the
  policy's ``shortlist_size`` (<= 16);
- warm flag-on recommend stays under 1.5 ms (full profile only —
  absolute times are skipped on the quick CI profile, ratios are not).
  Typical quiet-box best-of is 0.65–0.95 ms — the sub-millisecond
  number the JSON artifact records — but contended boxes show tails to
  ~1.1 ms, so the hard gate leaves headroom; a real warm-path
  regression (say an accidental per-call LAPACK solve) lands at 3 ms+;
- the select profile's warm speedup over flag-off must hold its own
  (lenient) floor and stay within 20% of its committed baseline, and
  its recorded subspace must be strictly smaller than the catalog.

Set ``PERF_QUICK=1`` (CI) to reduce the number of timed rounds.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import run_once

from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners.base import TrainingSample, TuningRequest
from repro.tuners.knob_selection import SelectionPolicy
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.surrogate import SurrogatePolicy
from repro.workloads.tpcc import TPCCWorkload

QUICK = os.environ.get("PERF_QUICK") == "1"
ROUNDS = 15 if QUICK else 50

BASELINE_PATH = (
    pathlib.Path(__file__).parent / "baselines" / "BENCH_recommend_baseline.json"
)
JSON_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_recommend.json"

#: Warm flag-on must beat warm flag-off by at least this factor.
MIN_WARM_SPEEDUP = 3.0
#: And stay within 20% of the committed baseline's measured speedup.
REGRESSION_FRACTION = 0.8
#: Absolute warm flag-on ceiling (full profile); see the module docstring.
WARM_ON_MS_CEILING = 1.5
#: Warm select-profile speedup over flag-off must hold this floor. More
#: lenient than the screen's: selection trades a little warm latency
#: headroom (selector bookkeeping) for the smaller optimisation space.
MIN_SELECT_WARM_SPEEDUP = 2.0


def _build_tuner(
    surrogate: bool, selection: bool = False
) -> tuple[OtterTuneTuner, TuningRequest]:
    """One tuner plus a representative request, identical apart from the flags."""
    catalog = postgres_catalog()
    repository = offline_train(
        catalog,
        [TPCCWorkload(rps=500.0, data_size_gb=12.0, seed=21)],
        n_configs=40,
        seed=22,
    )
    tuner = OtterTuneTuner(
        catalog,
        repository,
        memory_limit_mb=6553.6,
        seed=23,
        surrogate=SurrogatePolicy() if surrogate else None,
        selection=SelectionPolicy() if selection else None,
    )
    workload_id = repository.workload_ids()[0]
    sample = repository.samples(workload_id)[0]
    request = TuningRequest(
        "db0", workload_id, sample.config, sample.metrics, timestamp_s=0.0
    )
    return tuner, request


def _trajectory(tuner: OtterTuneTuner, request: TuningRequest) -> dict:
    """Cold then warm best-of/mean timings for one tuner."""
    repository = tuner.repository
    sample = repository.samples(request.workload_id)[0]
    cold: list[float] = []
    for i in range(ROUNDS):
        repository.add(
            TrainingSample(
                request.workload_id, sample.config, sample.metrics, float(i)
            )
        )
        start = time.perf_counter()
        tuner.recommend(request)
        cold.append(time.perf_counter() - start)
    warm: list[float] = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        tuner.recommend(request)
        warm.append(time.perf_counter() - start)
    return {
        "cold_ms": {
            "best": 1e3 * min(cold),
            "mean": 1e3 * sum(cold) / len(cold),
        },
        "warm_ms": {
            "best": 1e3 * min(warm),
            "mean": 1e3 * sum(warm) / len(warm),
        },
    }


def test_perf_recommend_trajectory(benchmark, emit):
    # The two profiles time different round counts on differently loaded
    # boxes; each gates against its own committed measurement.
    baselines = json.loads(BASELINE_PATH.read_text())
    baseline_speedup = baselines[
        "warm_speedup_quick" if QUICK else "warm_speedup_full"
    ]
    baseline_select = baselines[
        "select_warm_speedup_quick" if QUICK else "select_warm_speedup_full"
    ]

    def work() -> dict:
        report: dict = {"quick": QUICK, "rounds": ROUNDS}
        tuner_off, request_off = _build_tuner(surrogate=False)
        report["surrogate_off"] = _trajectory(tuner_off, request_off)
        tuner_on, request_on = _build_tuner(surrogate=True)
        report["surrogate_on"] = _trajectory(tuner_on, request_on)
        screen = tuner_on.surrogate_screen
        assert screen is not None
        report["screen"] = {
            "shortlist_size": screen.policy.shortlist_size,
            "max_coreset": screen.policy.max_coreset,
            "shortlists": screen.shortlists,
            "retrains": screen.retrains,
            "hits": screen.hits,
        }
        tuner_sel, request_sel = _build_tuner(surrogate=True, selection=True)
        report["select_on"] = _trajectory(tuner_sel, request_sel)
        selector = tuner_sel.knob_selector
        assert selector is not None
        active = selector.active_knobs(request_sel.workload_id)
        assert active is not None
        report["subspace"] = {
            "active": len(active),
            "total": selector.dimension,
            "reranks": selector.reranks,
            "reuses": selector.reuses,
            "hits": selector.hits,
        }
        return report

    report = run_once(benchmark, work)

    off, on = report["surrogate_off"], report["surrogate_on"]
    select = report["select_on"]
    speedup = off["warm_ms"]["best"] / on["warm_ms"]["best"]
    select_speedup = off["warm_ms"]["best"] / select["warm_ms"]["best"]
    report["warm_speedup"] = speedup
    report["select_warm_speedup"] = select_speedup
    report["gates"] = {
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "baseline_warm_speedup": baseline_speedup,
        "regression_floor": REGRESSION_FRACTION * baseline_speedup,
        "min_select_warm_speedup": MIN_SELECT_WARM_SPEEDUP,
        "baseline_select_warm_speedup": baseline_select,
        "select_regression_floor": REGRESSION_FRACTION * baseline_select,
        "warm_on_ms_ceiling_asserted": (WARM_ON_MS_CEILING if not QUICK else None),
    }

    JSON_OUT.parent.mkdir(exist_ok=True)
    JSON_OUT.write_text(json.dumps(report, indent=1) + "\n")

    screen = report["screen"]
    subspace = report["subspace"]
    emit(
        "perf_recommend",
        f"rounds: {ROUNDS} (quick={QUICK}; best-of timing)\n"
        f"surrogate off: cold {off['cold_ms']['best']:.2f} ms, "
        f"warm {off['warm_ms']['best']:.2f} ms\n"
        f"surrogate on:  cold {on['cold_ms']['best']:.2f} ms, "
        f"warm {on['warm_ms']['best']:.2f} ms "
        f"(shortlist<={screen['shortlist_size']}, "
        f"coreset<={screen['max_coreset']})\n"
        f"select on:     cold {select['cold_ms']['best']:.2f} ms, "
        f"warm {select['warm_ms']['best']:.2f} ms "
        f"(subspace {subspace['active']}/{subspace['total']})\n"
        f"warm speedup: {speedup:.2f}x "
        f"(gate >= {MIN_WARM_SPEEDUP:.1f}x, baseline "
        f"{baseline_speedup:.2f}x); select {select_speedup:.2f}x "
        f"(gate >= {MIN_SELECT_WARM_SPEEDUP:.1f}x, baseline "
        f"{baseline_select:.2f}x)\n"
        f"screen counters: shortlists={screen['shortlists']} "
        f"retrains={screen['retrains']} hits={screen['hits']}; "
        f"selector: reranks={subspace['reranks']} "
        f"reuses={subspace['reuses']} hits={subspace['hits']}",
    )

    # The screen served every request past the policy threshold, and the
    # warm half of each trajectory hit the version-keyed model cache.
    assert screen["shortlists"] == 2 * ROUNDS
    assert screen["hits"] >= ROUNDS
    assert screen["shortlist_size"] <= 16

    # Warm requests reuse version-keyed fits on both paths.
    assert off["warm_ms"]["best"] <= off["cold_ms"]["best"]
    assert on["warm_ms"]["best"] <= on["cold_ms"]["best"]

    # The headline gate: screening must buy >= 3x on the warm path and
    # must not regress more than 20% against the committed baseline.
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm speedup {speedup:.2f}x below the {MIN_WARM_SPEEDUP:.1f}x gate"
    )
    assert speedup >= REGRESSION_FRACTION * baseline_speedup, (
        f"warm speedup {speedup:.2f}x regressed >20% vs committed baseline "
        f"{baseline_speedup:.2f}x — update the baseline only with "
        "a justified perf change"
    )
    # The select profile tunes a strictly smaller space and must keep
    # most of the screened path's warm advantage.
    assert 0 < subspace["active"] < subspace["total"]
    assert select["warm_ms"]["best"] <= select["cold_ms"]["best"]
    assert select_speedup >= MIN_SELECT_WARM_SPEEDUP, (
        f"select warm speedup {select_speedup:.2f}x below the "
        f"{MIN_SELECT_WARM_SPEEDUP:.1f}x gate"
    )
    assert select_speedup >= REGRESSION_FRACTION * baseline_select, (
        f"select warm speedup {select_speedup:.2f}x regressed >20% vs "
        f"committed baseline {baseline_select:.2f}x — update the baseline "
        "only with a justified perf change"
    )

    if not QUICK:
        # Absolute time, asserted only on the full profile where the box
        # is presumed quiet: the warm-path latency target with headroom
        # for scheduler tails (see the module docstring).
        assert on["warm_ms"]["best"] < WARM_ON_MS_CEILING
