"""Bench: OtterTune ``recommend()`` latency, cold and warm.

Cold requests land right after a fresh repository sample (the Fig. 9
pattern: every TDE tuning request is preceded by an upload), so the GPR
refits and the amortised derived models may refresh. Warm requests hit an
unchanged repository version and should be served almost entirely from
the version-keyed caches this PR introduces.

Set ``PERF_QUICK=1`` (CI) to reduce the number of timed requests.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners.base import TrainingSample, TuningRequest
from repro.tuners.ottertune import OtterTuneTuner
from repro.workloads.tpcc import TPCCWorkload

QUICK = os.environ.get("PERF_QUICK") == "1"
ROUNDS = 10 if QUICK else 50


def test_perf_recommend_latency(benchmark, emit):
    catalog = postgres_catalog()
    repository = offline_train(
        catalog,
        [TPCCWorkload(rps=500.0, data_size_gb=12.0, seed=21)],
        n_configs=40,
        seed=22,
    )
    tuner = OtterTuneTuner(
        catalog, repository, memory_limit_mb=6553.6, seed=23
    )
    workload_id = repository.workload_ids()[0]
    sample = repository.samples(workload_id)[0]
    request = TuningRequest(
        "db0", workload_id, sample.config, sample.metrics, timestamp_s=0.0
    )

    def work() -> tuple[float, float]:
        cold = 0.0
        for i in range(ROUNDS):
            repository.add(
                TrainingSample(workload_id, sample.config, sample.metrics, float(i))
            )
            start = time.perf_counter()
            tuner.recommend(request)
            cold += time.perf_counter() - start
        warm = 0.0
        for _ in range(ROUNDS):
            start = time.perf_counter()
            tuner.recommend(request)
            warm += time.perf_counter() - start
        return cold / ROUNDS, warm / ROUNDS

    cold_s, warm_s = run_once(benchmark, work)
    emit(
        "perf_recommend",
        f"rounds: {ROUNDS} (quick={QUICK})\n"
        f"cold recommend (new sample first): {cold_s * 1000.0:.2f} ms\n"
        f"warm recommend (unchanged repository): {warm_s * 1000.0:.2f} ms",
    )
    # Warm requests reuse the version-keyed GPR fit and Lasso ranking;
    # they must not be slower than requests that pay the refit.
    assert warm_s <= cold_s
    assert cold_s < 1.0
