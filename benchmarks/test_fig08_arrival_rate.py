"""Bench: Fig. 8 — production workload query arrival rate."""

from conftest import run_once

from repro.experiments import fig08_arrival_rate, format_table
from repro.experiments.fig08_arrival_rate import daily_total


def test_fig08_arrival_rate(benchmark, emit):
    points = run_once(benchmark, fig08_arrival_rate.run)
    emit(
        "fig08_arrival_rate",
        format_table(
            ("hour", "queries", "rate/s"),
            [(p.hour, p.queries, f"{p.rate_per_s:.0f}") for p in points],
        )
        + f"\ndaily total: {daily_total(points):,}",
    )
    by_hour = {p.hour: p for p in points}
    # Paper shape: diurnal curve with the 8-11 AM surge; the published
    # trace averages 42.13M queries/day.
    assert by_hour[3].rate_per_s < by_hour[10].rate_per_s
    assert by_hour[12].rate_per_s > 2.5 * by_hour[3].rate_per_s
    assert by_hour[12].rate_per_s > by_hour[22].rate_per_s
    total = daily_total(points)
    assert 30_000_000 < total < 55_000_000
