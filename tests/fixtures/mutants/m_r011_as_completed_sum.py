# repro-mutant: R011
"""Seeded parity bug: throughput summed in completion order.

``sum()`` over ``as_completed`` futures adds shard throughputs in
whatever order workers finish. Float addition is not associative, so the
total's low bits — and every figure derived from it — change with
scheduling. The fixed code gathers results, sorts by shard index, then
reduces.
"""

from concurrent.futures import ProcessPoolExecutor, as_completed


def total_throughput(shards):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(shard.run) for shard in shards]
        return sum(f.result() for f in as_completed(futures))  # BUG
