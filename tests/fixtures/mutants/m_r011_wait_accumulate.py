# repro-mutant: R011
"""Seeded parity bug: pipe payloads accumulated in arrival order.

The drain loop adds shard totals as ``multiprocessing.connection.wait``
hands connections back — arrival order, which depends on OS scheduling.
``acc`` picks up a different rounding trajectory every run. The fixed
code stores ``(shard_index, value)`` pairs and reduces after sorting.
"""

from multiprocessing.connection import wait


def drain_totals(connections):
    acc = 0.0
    pending = list(connections)
    while pending:
        for conn in wait(pending):
            payload = conn.recv()
            if payload is None:
                pending.remove(conn)
            else:
                acc += payload  # BUG: arrival order
    return acc
