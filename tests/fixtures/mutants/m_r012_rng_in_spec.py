# repro-mutant: R012
"""Seeded parity bug: a live generator is pickled into the shard spec.

The spec dict carries ``make_rng(7)`` across the session boundary. Every
worker unpickles the *same* generator state, so all shards replay one
stream — and the draw sequence any member sees depends on how members
were partitioned. The fixed code ships ``stream_root(7)`` (an int) and
each worker derives per-member streams with ``substream(root, "member",
i)``.
"""

from repro.common.rng import make_rng
from repro.parallel.executor import FleetExecutor


class _Worker:
    def __init__(self, spec, indices):
        self.rng = spec["rng"]
        self.indices = list(indices)

    def step(self, window):
        return [(i, float(self.rng.normal())) for i in self.indices]

    def close(self):
        return None


def shard_factory(spec, indices):
    return _Worker(spec, indices)


def run(windows, workers, n_members):
    spec = {"seed": 7, "rng": make_rng(7)}  # BUG: generator crosses pickle
    executor = FleetExecutor(workers=workers)
    with executor.fleet_session(shard_factory, spec, n_members) as session:
        return [session.step(window) for window in windows]
