# repro-mutant: R012
"""Seeded parity bug: derived generators shipped as ``map`` items.

Each item carries a ``derive_rng`` generator built *on the coordinator*;
pickling a generator into a worker freezes its state at ship time, and
the member→worker assignment decides which coordinator-side draw order
each stream saw before shipping. The fixed code sends ``(index, root)``
integer pairs and derives inside the worker via ``substream``.
"""

from repro.common.rng import derive_rng, make_rng
from repro.parallel.executor import FleetExecutor


def _simulate(item):
    index, rng = item
    return (index, float(rng.normal()))


def run(n_members, workers):
    parent = make_rng(123)
    items = [(i, derive_rng(parent, str(i))) for i in range(n_members)]
    executor = FleetExecutor(workers=workers)
    return executor.map(_simulate, items)  # BUG: generators in items
