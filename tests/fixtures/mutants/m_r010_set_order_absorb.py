# repro-mutant: R010
"""Seeded parity bug: trace fragments absorbed in set-iteration order.

Deduplicating shard trace fragments through a ``set`` before absorbing
them destroys the canonical event order: set iteration order depends on
hash seeding, so the golden-trace digest changes run to run. The fixed
code dedupes with an order-preserving dict and absorbs
``sorted(fragments, key=...)``.
"""

from repro.obs.trace import TraceRecorder


def stitch_fragments(fragments):
    root = TraceRecorder()
    for fragment in set(fragments):  # BUG: hash order
        root.absorb(fragment)
    return root
