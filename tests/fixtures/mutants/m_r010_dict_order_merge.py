# repro-mutant: R010
"""Seeded parity bug: registries merged in dict-iteration order.

A refactor of ``merge_registries`` that folds shard metric registries in
whatever order the ``by_shard`` dict yields them. Metric merge is only
order-stable when every input arrives in canonical shard order; float
histogram sums and first-writer-wins metadata make dict order visible in
the exported Prometheus text. The fixed code iterates
``sorted(by_shard)`` and merges by shard index.
"""

from repro.obs.metrics import MetricsRegistry


def collect_shard_metrics(by_shard):
    out = MetricsRegistry()
    for registry in by_shard.values():  # BUG: insertion/hash order
        out.merge(registry)
    return out
