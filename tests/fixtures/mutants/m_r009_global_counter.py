# repro-mutant: R009
"""Seeded parity bug: shard code counts progress in a module global.

``_note_progress`` rebinds ``WINDOWS_DONE`` and is reached from the
executor ``map`` function, so it runs inside worker processes — each
process increments its *own* copy of the global, the coordinator's stays
at zero, and anything keyed off the counter (flush cadence, sampling)
behaves differently serial vs parallel.
"""

from repro.parallel.executor import FleetExecutor

WINDOWS_DONE = 0


def _note_progress():
    global WINDOWS_DONE
    WINDOWS_DONE += 1  # BUG: incremented per worker process, lost on exit


def _simulate(item):
    member, window = item
    sample = member.observe(window)
    _note_progress()
    return (member.index, sample)


def run(members, windows, workers):
    executor = FleetExecutor(workers=workers)
    items = [(m, w) for m in members for w in windows]
    return sorted(executor.map(_simulate, items))
