# repro-mutant: R009
"""Seeded parity bug: the shard worker mutates the coordinator's spec.

``ShardWorker.step`` appends every decoded sample straight to
``self.spec.repository`` — the repository snapshot that crossed the
pickle boundary at session setup. Serially there is one repository and
the mutation sticks; with N workers each process grows its own private
copy and the coordinator's repository never changes, so tuning decisions
diverge by worker count. The fixed code snapshots first
(``pickle.loads(pickle.dumps(spec.repository))``) and returns samples
through the shard output.
"""

from repro.cloud.fleet import build_member
from repro.parallel.executor import FleetExecutor
from repro.parallel.reduce import merge_member_outputs


class ShardWorker:
    """One shard's slice of the fleet (mutant copy of the fig09 worker)."""

    def __init__(self, spec, indices):
        self.spec = spec
        self.indices = list(indices)
        self.members = {i: build_member(spec.fleet, i) for i in self.indices}

    def step(self, window):
        outs = []
        for index in self.indices:
            sample = self.members[index].observe(window)
            self.spec.repository.add(sample)  # BUG: coordinator-owned state
            outs.append((index, sample))
        return outs

    def close(self):
        self.members.clear()


def shard_factory(spec, indices):
    return ShardWorker(spec, indices)


def run_windows(spec, windows, workers):
    executor = FleetExecutor(workers=workers)
    with executor.fleet_session(shard_factory, spec, spec.fleet.size) as session:
        return [merge_member_outputs(session.step(window)) for window in windows]
