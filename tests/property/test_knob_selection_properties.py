"""Property-based tests (hypothesis) on dynamic knob selection.

Invariants the selection tier must hold for *any* seeded sample stream:

- **warm == cold, bit for bit** — a selector whose running moments grew
  incrementally (one repository version at a time) produces the exact
  ranking and path coefficients a fresh selector fed the same prefix in
  one shot does, at *every* version. This is the license for the
  incremental re-rank: warm-starting can never drift from a from-scratch
  Lasso-path fit;
- **projection round-trips** — a projected recommendation carries every
  inactive knob byte-identically from the incumbent configuration,
  through candidate generation, frozen budget repair and the final
  ``with_values`` merge;
- **bounded set-churn** — the stability window caps active-subspace
  replacements at ``1 + reranks // stability_window`` per workload, no
  matter how noisy the rank stream is.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners.base import TuningRequest, config_to_vector
from repro.tuners.cdbtune import CDBTuneTuner
from repro.tuners.knob_selection import KnobSelector, SelectionPolicy
from repro.tuners.ottertune import OtterTuneTuner
from repro.workloads.tpcc import TPCCWorkload

seeds = st.integers(min_value=0, max_value=2**31 - 1)
row_counts = st.integers(min_value=14, max_value=48)
windows = st.integers(min_value=1, max_value=5)

_CATALOG = postgres_catalog()
_D = len(_CATALOG)


def _stream(seed: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    """A seeded (configs, objective) sample stream in arrival order."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(n, _D))
    y = (
        3.0 * x[:, 0]
        - 2.0 * x[:, 1] ** 2
        + np.sin(5.0 * x[:, 2])
        + rng.normal(0.0, 0.2, n)
    )
    return x, y


class TestWarmEqualsCold:
    @given(seed=seeds, n=row_counts)
    @settings(max_examples=25, deadline=None)
    def test_incremental_rerank_matches_from_scratch(self, seed, n):
        """Warm-started rankings == cold rankings at every version."""
        policy = SelectionPolicy(stability_window=1)
        x, y = _stream(seed, n)
        warm = KnobSelector(policy, _CATALOG)
        # Grow one row per version past the abstain threshold, so the
        # warm selector re-ranks from incrementally updated moments at
        # every step.
        for version in range(policy.min_rank_samples, n + 1):
            warm_sub = warm.subspace(
                "w", x[:version], y[:version], version
            )
            cold = KnobSelector(policy, _CATALOG)
            cold_sub = cold.subspace("w", x[:version], y[:version], version)
            assert warm_sub is not None and cold_sub is not None
            assert warm_sub.ranking == cold_sub.ranking
            warm_path = warm._states["w"].path
            cold_path = cold._states["w"].path
            assert np.array_equal(warm_path, cold_path)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_version_bump_without_rows_reuses_coefficients(self, seed):
        """No new rows → the previous path is reused, rank unchanged."""
        policy = SelectionPolicy()
        x, y = _stream(seed, 20)
        selector = KnobSelector(policy, _CATALOG)
        first = selector.subspace("w", x, y, version=1)
        assert first is not None
        before = selector.reuses
        # A repository version bump caused by *another* workload's
        # samples: same rows, new version.
        again = selector.subspace("w", x, y, version=2)
        assert again is not None
        assert selector.reuses == before + 1
        assert again.ranking == first.ranking


def _live_fixture(seed: int):
    catalog = postgres_catalog()
    repository = offline_train(
        catalog,
        [TPCCWorkload(rps=500.0, data_size_gb=12.0, seed=seed)],
        n_configs=24,
        seed=seed + 1,
    )
    return catalog, repository


class TestProjectionRoundTrip:
    @given(seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_ottertune_inactive_knobs_byte_identical(self, seed):
        """Every inactive knob survives recommend() byte-for-byte."""
        catalog, repository = _live_fixture(seed)
        tuner = OtterTuneTuner(
            catalog,
            repository,
            memory_limit_mb=6553.6,
            seed=seed + 2,
            selection=SelectionPolicy(),
        )
        workload_id = repository.workload_ids()[0]
        sample = repository.samples(workload_id)[0]
        request = TuningRequest(
            "db0", workload_id, sample.config, sample.metrics, timestamp_s=0.0
        )
        recommendation = tuner.recommend(request)
        selector = tuner.knob_selector
        assert selector is not None
        active = selector.active_knobs(workload_id)
        assert active is not None
        inactive = [n for n in catalog.names() if n not in active]
        assert inactive, "projection test needs a non-trivial subspace"
        for name in inactive:
            assert recommendation.config[name] == request.config[name]

    @given(seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_cdbtune_inactive_knobs_byte_identical(self, seed):
        catalog, repository = _live_fixture(seed)
        tuner = CDBTuneTuner(
            catalog,
            memory_limit_mb=6553.6,
            seed=seed + 2,
            selection=SelectionPolicy(),
        )
        workload_id = repository.workload_ids()[0]
        samples = repository.samples(workload_id)
        for sample in samples:
            tuner.learn(sample)
        probe = samples[0]
        request = TuningRequest(
            "db0", workload_id, probe.config, probe.metrics, timestamp_s=0.0
        )
        recommendation = tuner.recommend(request)
        selector = tuner.knob_selector
        assert selector is not None
        active = selector.active_knobs(workload_id)
        assert active is not None
        inactive = [n for n in catalog.names() if n not in active]
        for name in inactive:
            assert recommendation.config[name] == request.config[name]

    @given(seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_pending_action_matches_projected_vector(self, seed):
        """The RL pending action snaps inactive coords to the incumbent."""
        catalog, repository = _live_fixture(seed)
        tuner = CDBTuneTuner(
            catalog, seed=seed + 2, selection=SelectionPolicy()
        )
        workload_id = repository.workload_ids()[0]
        samples = repository.samples(workload_id)
        for sample in samples:
            tuner.learn(sample)
        probe = samples[0]
        request = TuningRequest(
            "db0", workload_id, probe.config, probe.metrics, timestamp_s=0.0
        )
        tuner.recommend(request)
        selector = tuner.knob_selector
        assert selector is not None
        sub = selector._states[workload_id].subspace
        assert sub is not None
        _, action = tuner._pending[workload_id]
        incumbent = config_to_vector(request.config)
        inactive_mask = ~selector.mask(sub)
        assert np.array_equal(
            action[inactive_mask], incumbent[inactive_mask]
        )


class TestChurnBound:
    @given(seed=seeds, stability_window=st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_updates_bounded_by_stability_window(self, seed, stability_window):
        """updates <= 1 + reranks // stability_window, any stream."""
        policy = SelectionPolicy(stability_window=stability_window)
        selector = KnobSelector(policy, _CATALOG)
        rng = np.random.default_rng(seed)
        rows = 0
        x = np.empty((0, _D))
        y = np.empty(0)
        for version in range(1, 12):
            # Fresh, differently-distributed rows each version so the
            # candidate set is as jittery as real young repositories.
            grow = int(rng.integers(2, 8))
            nx = rng.uniform(0.0, 1.0, size=(grow, _D))
            weights = rng.normal(0.0, 1.0, _D)
            ny = nx @ weights + rng.normal(0.0, 0.1, grow)
            x = np.vstack([x, nx])
            y = np.concatenate([y, ny])
            rows += grow
            selector.subspace("w", x, y, version)
        assert selector.updates <= 1 + selector.reranks // stability_window
