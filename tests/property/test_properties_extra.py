"""Property-based tests for the newer modules."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.tde.workload_change import hellinger_distance
from repro.tuners.lasso import lasso_coordinate_descent

import numpy as np

distributions = st.dictionaries(
    st.text(alphabet="abcdef", min_size=1, max_size=3),
    st.floats(min_value=0.001, max_value=1.0),
    min_size=1,
    max_size=8,
).map(lambda d: {k: v / sum(d.values()) for k, v in d.items()})


class TestHellingerProperties:
    @given(distributions)
    def test_self_distance_zero(self, p):
        assert hellinger_distance(p, dict(p)) == 0.0

    @given(distributions, distributions)
    def test_bounded(self, p, q):
        d = hellinger_distance(p, q)
        assert 0.0 <= d <= 1.0 + 1e-9

    @given(distributions, distributions)
    def test_symmetric(self, p, q):
        assert math.isclose(
            hellinger_distance(p, q),
            hellinger_distance(q, p),
            rel_tol=1e-12,
            abs_tol=1e-12,
        )

    @given(distributions, distributions, distributions)
    def test_triangle_inequality(self, p, q, r):
        assert hellinger_distance(p, r) <= (
            hellinger_distance(p, q) + hellinger_distance(q, r) + 1e-9
        )


class TestLassoProperties:
    @given(st.integers(0, 2**31 - 1), st.floats(min_value=0.001, max_value=10.0))
    def test_coefficients_finite(self, seed, alpha):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(30, 4))
        y = rng.normal(size=30)
        w = lasso_coordinate_descent(x, y, alpha)
        assert np.isfinite(w).all()

    @given(st.integers(0, 2**31 - 1))
    def test_monotone_sparsity_along_path(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(40, 5))
        y = x @ rng.normal(size=5) + rng.normal(0, 0.1, size=40)
        supports = [
            int(np.sum(np.abs(lasso_coordinate_descent(x, y, a)) > 1e-9))
            for a in (1.0, 0.1, 0.01)
        ]
        assert supports[0] <= supports[-1]
