"""Property: columnar `MemberBatch.step_window` ≡ the per-member loop.

The batched engine's hard invariant is bit-identity with
``[db.run(batch) for db, batch in ...]`` — not approximate equality:
fleet experiments compare rendered bytes across worker counts, so a
single ULP of drift anywhere would break the parity suite. Hypothesis
drives both engines over arbitrary seeds, member counts, window plans
and fault plans (config reloads, restarts with their stall/cold-cache
fallback windows, disk degradation, crash/heal cycles), comparing
rendered results, RNG stream positions and write-back scheduler state
after every window.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.fleet import FleetSpec, build_member
from repro.dbsim.batch_engine import MemberBatch
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import DatabaseCrashed

_WINDOW_S = 60.0

#: Per-member, per-window fault operations. Everything except "none"
#: pushes the member onto the scalar fallback path for at least one
#: window, so plans exercise vector/fallback mixes.
_OPS = ("none", "reload", "restart", "degrade", "heal_disk", "crash_heal")

_plans = st.lists(
    st.lists(st.sampled_from(_OPS), min_size=1, max_size=4),
    min_size=1,
    max_size=6,
)


def _build(seed: int, size: int):
    spec = FleetSpec(size=size, root=seed)
    return [build_member(spec, i) for i in range(size)]


def _apply_op(db, op: str) -> None:
    if op == "none":
        return
    if op == "reload":
        # Tunable knob delta: applies without downtime.
        values = db.config.as_dict()
        values["work_mem"] = min(values["work_mem"] * 2.0, 4096.0)
        db.apply_config(KnobConfiguration(db.catalog, values), mode="reload")
    elif op == "restart":
        # Restart-required knob delta within budget: stall + cold cache.
        values = db.config.as_dict()
        values["shared_buffers"] = max(values["shared_buffers"] * 0.5, 16.0)
        db.apply_config(KnobConfiguration(db.catalog, values), mode="restart")
    elif op == "degrade":
        db.set_disk_degradation(1.5)
    elif op == "heal_disk":
        db.set_disk_degradation(1.0)
    elif op == "crash_heal":
        db.crashed = True
        db.heal()


def _scheduler_state(db):
    s = db._scheduler
    return (
        s.dirty_backlog_mb,
        s.wal_since_checkpoint_mb,
        s.since_checkpoint_s,
        s.since_vacuum_s,
        s._active_rate_mb_s,
        s._active_remaining_s,
    )


class TestBatchedEqualsLoop:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), plan=_plans)
    def test_bit_identical_across_fault_plans(self, seed, plan):
        size = len(plan[0])
        serial = _build(seed, size)
        batched = _build(seed, size)
        engine = MemberBatch(
            [m.deployment.service.master for m in batched]
        )
        clock = 0.0
        for ops in plan:
            for fleet in (serial, batched):
                for member, op in zip(fleet, ops):
                    _apply_op(member.deployment.service.master, op)
            serial_batches = [
                m.workload.batch(_WINDOW_S, start_time_s=clock + m.phase_offset_s)
                for m in serial
            ]
            batched_batches = [
                m.workload.batch(_WINDOW_S, start_time_s=clock + m.phase_offset_s)
                for m in batched
            ]
            serial_results = [
                m.deployment.service.run(b)
                for m, b in zip(serial, serial_batches)
            ]
            batched_results = engine.step_window(batched_batches)
            for a, b in zip(serial_results, batched_results):
                assert repr(a) == repr(b)
            for a, b in zip(serial, batched):
                da = a.deployment.service.master
                db = b.deployment.service.master
                assert da.clock_s == db.clock_s
                assert repr(_scheduler_state(da)) == repr(_scheduler_state(db))
                assert (
                    da._rng.bit_generator.state == db._rng.bit_generator.state
                )
                assert (
                    a.workload._rng.bit_generator.state
                    == b.workload._rng.bit_generator.state
                )
            clock += _WINDOW_S

    def test_crashed_member_raises_like_serial_loop(self):
        serial = _build(3, 3)
        batched = _build(3, 3)
        engine = MemberBatch([m.deployment.service.master for m in batched])
        for fleet in (serial, batched):
            fleet[1].deployment.service.master.crashed = True
        serial_batches = [
            m.workload.batch(_WINDOW_S, start_time_s=m.phase_offset_s)
            for m in serial
        ]
        batched_batches = [
            m.workload.batch(_WINDOW_S, start_time_s=m.phase_offset_s)
            for m in batched
        ]
        serial_exc = None
        try:
            for m, b in zip(serial, serial_batches):
                m.deployment.service.run(b)
        except DatabaseCrashed as exc:
            serial_exc = exc
        assert serial_exc is not None
        try:
            engine.step_window(batched_batches)
        except DatabaseCrashed as exc:
            assert str(exc) == str(serial_exc)
        else:  # pragma: no cover - failure branch
            raise AssertionError("batched path did not raise")
        # Members before the crash advanced identically in both engines.
        assert (
            serial[0].deployment.service.master.clock_s
            == batched[0].deployment.service.master.clock_s
            == _WINDOW_S
        )
        # Members after the crash did not advance.
        assert batched[2].deployment.service.master.clock_s == 0.0

    def test_member_count_mismatch_rejected(self):
        fleet = _build(0, 2)
        engine = MemberBatch([m.deployment.service.master for m in fleet])
        try:
            engine.step_window([])
        except ValueError as exc:
            assert "one batch per member" in str(exc)
        else:  # pragma: no cover - failure branch
            raise AssertionError("mismatched batch list accepted")
