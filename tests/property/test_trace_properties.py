"""Property-based tests (hypothesis) on the trace recorder's invariants.

Hypothesis drives random but deterministic *programs* against a
:class:`~repro.obs.trace.TraceRecorder` — interleavings of clock
advances, span opens/closes and events — and checks the structural
invariants the golden tests rely on: span timing, id uniqueness,
sequence monotonicity, stack containment, instance inheritance and
byte-identical replay.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import to_jsonl
from repro.obs.trace import TraceRecorder

#: One program step: (op, payload).
_ops = st.one_of(
    st.tuples(
        st.just("advance"),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    st.tuples(st.just("open"), st.sampled_from("abcd")),
    st.tuples(st.just("open_timed"), st.sampled_from("abcd")),
    st.tuples(st.just("close"), st.just("")),
    st.tuples(st.just("event"), st.sampled_from("xyz")),
)

programs = st.lists(_ops, min_size=0, max_size=60)

#: Instance names drawn when opening instanced spans.
instances = st.sampled_from(["", "svc-0000", "svc-0001"])


def _execute(program) -> TraceRecorder:
    """Run *program*; unconditionally well-formed (closes all spans)."""
    recorder = TraceRecorder()
    for op, payload in program:
        if op == "advance":
            recorder.advance(recorder.now_s + payload)
        elif op == "open":
            recorder.span(f"span.{payload}", instance="svc-0000")
        elif op == "open_timed":
            recorder.span(f"timed.{payload}", duration_s=7.5)
        elif op == "close":
            if recorder.open_spans:
                recorder._stack[-1].__exit__(None, None, None)
        elif op == "event":
            recorder.event(f"event.{payload}", flag=True)
    while recorder.open_spans:
        recorder._stack[-1].__exit__(None, None, None)
    return recorder


class TestSpanTiming:
    @given(programs)
    @settings(max_examples=50, deadline=None)
    def test_end_never_before_start(self, program):
        recorder = _execute(program)
        for span in recorder.spans:
            assert span.end_sim_s >= span.start_sim_s

    @given(programs)
    @settings(max_examples=50, deadline=None)
    def test_untimed_spans_close_at_or_after_the_clock_position(self, program):
        recorder = _execute(program)
        for span in recorder.spans:
            if span.pinned_duration_s is None:
                assert span.end_sim_s <= recorder.now_s
            else:
                # start + pinned - start need not be exactly pinned (IEEE
                # rounding); it is within one ulp of the modelled duration.
                assert abs(span.duration_s - span.pinned_duration_s) < 1e-9


class TestIdentityAndOrdering:
    @given(programs)
    @settings(max_examples=50, deadline=None)
    def test_span_ids_unique(self, program):
        recorder = _execute(program)
        ids = [s.span_id for s in recorder.spans]
        assert len(ids) == len(set(ids))

    @given(programs)
    @settings(max_examples=50, deadline=None)
    def test_event_seq_strictly_increasing_and_time_monotone(self, program):
        recorder = _execute(program)
        events = recorder.events
        for earlier, later in zip(events, events[1:]):
            assert earlier.seq < later.seq
            assert earlier.time_s <= later.time_s

    @given(programs)
    @settings(max_examples=50, deadline=None)
    def test_parent_interval_contains_child(self, program):
        recorder = _execute(program)
        by_id = {s.span_id: s for s in recorder.spans}
        for span in recorder.spans:
            assert span.seq < span.end_seq
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.seq < span.seq
            assert span.end_seq < parent.end_seq


class TestInstanceInheritance:
    def test_children_inherit_the_enclosing_instance(self):
        recorder = TraceRecorder()
        with recorder.span("outer", instance="svc-0007"):
            inner = recorder.span("inner")
            recorder.event("tick")
            inner.__exit__(None, None, None)
        assert recorder.spans[1].instance == "svc-0007"
        assert recorder.events[0].instance == "svc-0007"

    def test_explicit_instance_wins_over_inheritance(self):
        recorder = TraceRecorder()
        with recorder.span("outer", instance="svc-0007"):
            with recorder.span("inner", instance="svc-0008"):
                pass
        assert recorder.spans[1].instance == "svc-0008"


class TestReplayStability:
    @given(programs)
    @settings(max_examples=30, deadline=None)
    def test_identical_programs_export_byte_identically(self, program):
        first = to_jsonl(_execute(program))
        second = to_jsonl(_execute(program))
        assert first == second

    @given(programs)
    @settings(max_examples=30, deadline=None)
    def test_span_ids_stable_across_identical_runs(self, program):
        first = _execute(program)
        second = _execute(program)
        assert [s.span_id for s in first.spans] == [
            s.span_id for s in second.spans
        ]
        assert [s.seq for s in first.spans] == [s.seq for s in second.spans]
