"""Property-based tests (hypothesis) for deterministic parallel execution.

The determinism contract of :mod:`repro.parallel` is a set of algebraic
properties — results invariant to shard count and member ordering, the
registry reducer equal to serial recording, absorbed traces preserving
span identity and time order. Hypothesis drives them over arbitrary
partitions, orderings and sample streams; everything here runs on the
in-process sequential backend, which shares the merge/replay code paths
with the process backend (the integration parity suite covers the
process boundary itself).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import substream
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.parallel import (
    FleetExecutor,
    merge_registries,
    partition_members,
)

# -- a tiny deterministic shard worker ------------------------------------------


class _DigestWorker:
    """Per-member keyed-substream draws — the determinism contract in
    miniature: a member's output may depend only on the root seed, the
    member index and the step count, never on shard placement."""

    def __init__(self, spec, indices):
        self.root = spec
        self.indices = indices
        self.steps = 0

    def step(self, command):
        self.steps += 1
        return [
            (
                i,
                float(
                    substream(self.root, "member", i, self.steps).integers(
                        0, 2**32
                    )
                ),
            )
            for i in self.indices
        ]


def _digest_factory(spec, indices):
    return _DigestWorker(spec, indices)


partitions = st.integers(min_value=1, max_value=12)


class TestShardInvariance:
    @given(
        n_members=st.integers(min_value=1, max_value=24),
        n_shards_a=partitions,
        n_shards_b=partitions,
        root=st.integers(min_value=0, max_value=2**31),
        steps=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_results_invariant_to_shard_count(
        self, n_members, n_shards_a, n_shards_b, root, steps
    ):
        def run(n_shards):
            executor = FleetExecutor()
            partition = partition_members(n_members, n_shards)
            with executor.fleet_session(
                _digest_factory, root, n_members, partition=partition
            ) as session:
                return [session.step(None) for _ in range(steps)]

        assert run(n_shards_a) == run(n_shards_b)

    @given(
        n_members=st.integers(min_value=1, max_value=16),
        root=st.integers(min_value=0, max_value=2**31),
        order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_results_invariant_to_member_ordering(self, n_members, root, order):
        # Any disjoint cover of the member range — members shuffled into
        # arbitrarily sized shards in arbitrary order — merges back to
        # the canonical serial output.
        members = list(range(n_members))
        order.shuffle(members)
        shards = []
        while members:
            take = order.randint(1, len(members))
            shards.append(members[:take])
            members = members[take:]

        executor = FleetExecutor()
        with executor.fleet_session(
            _digest_factory, root, n_members
        ) as canonical:
            expected = canonical.step(None)
        with executor.fleet_session(
            _digest_factory, root, n_members, partition=shards
        ) as shuffled:
            assert shuffled.step(None) == expected

    @given(
        n_members=st.integers(min_value=0, max_value=64),
        n_shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_partition_is_a_balanced_exact_cover(self, n_members, n_shards):
        shards = partition_members(n_members, n_shards)
        assert [i for shard in shards for i in shard] == list(range(n_members))
        assert all(shard for shard in shards)
        if shards:
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1


# -- metrics reducer -------------------------------------------------------------

# Integer-valued increments: float addition over them is exact, so the
# reducer's algebra (serial equivalence, associativity) can be asserted
# bit-for-bit. With arbitrary floats the *sums* differ in the last ulp
# across groupings — which is why the production reducers always merge
# in one fixed canonical order, a guarantee the parity suite pins on
# real experiment output.
_events = st.lists(
    st.tuples(
        st.sampled_from(["alpha_total", "beta_total", "gamma_seconds"]),
        st.integers(min_value=0, max_value=1000).map(float),
    ),
    max_size=30,
)


def _record(reg, events, **labels):
    for name, value in events:
        if name.endswith("_seconds"):
            reg.observe(name, value, **labels)
        else:
            reg.inc(name, value=value, **labels)


def _dump(reg):
    return sorted((s.name, s.labels, s.value) for s in reg.samples())


class TestRegistryReducer:
    @given(shards=st.lists(_events, min_size=1, max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_merged_equals_serial(self, shards):
        # Recording shard-by-shard into separate registries and merging
        # must equal recording every event into one registry serially.
        serial = MetricsRegistry()
        for events in shards:
            _record(serial, events)
        parts = []
        for events in shards:
            reg = MetricsRegistry()
            _record(reg, events)
            parts.append(reg)
        assert _dump(merge_registries(parts)) == _dump(serial)

    @given(a=_events, b=_events, c=_events)
    @settings(max_examples=80, deadline=None)
    def test_merge_associative(self, a, b, c):
        def reg(events):
            r = MetricsRegistry()
            _record(r, events)
            return r

        left = merge_registries([merge_registries([reg(a), reg(b)]), reg(c)])
        right = merge_registries([reg(a), merge_registries([reg(b), reg(c)])])
        assert _dump(left) == _dump(right)

    @given(
        shards=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["alpha_total", "gamma_seconds"]),
                    st.floats(
                        min_value=0.0, max_value=1e6, allow_nan=False
                    ),
                ),
                max_size=20,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_disjoint_series_merge_exactly_for_any_floats(self, shards):
        # Per-member series carry the member's instance label, so shards
        # never share an accumulator — merging is then exact for any
        # float values, not just integer-representable ones.
        serial = MetricsRegistry()
        for shard, events in enumerate(shards):
            _record(serial, events, instance=f"svc-{shard:04d}")
        parts = []
        for shard, events in enumerate(shards):
            reg = MetricsRegistry()
            _record(reg, events, instance=f"svc-{shard:04d}")
            parts.append(reg)
        assert _dump(merge_registries(parts)) == _dump(serial)


# -- trace absorb ----------------------------------------------------------------

_fragment_plans = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["tde.inspect", "member.window", "db.step"]),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=4,
    ),
    min_size=1,
    max_size=5,
)


def _build_fragment(plan, clock_s):
    frag = TraceRecorder()
    frag.advance(clock_s)
    for name, n_events in plan:
        with frag.span(name):
            for k in range(n_events):
                frag.event(f"{name}.event", k=k)
    return frag


class TestAbsorbProperties:
    @given(
        plans=_fragment_plans,
        clock=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_absorbed_span_ids_unique_and_ordered(self, plans, clock):
        main = TraceRecorder()
        main.advance(clock)
        with main.span("landscape.window"):
            for plan in plans:
                main.absorb(_build_fragment(plan, clock))
        ids = [s.span_id for s in main.spans]
        assert len(set(ids)) == len(ids)
        # seq numbers are issued monotonically and spans are stored in
        # open order, so both views must agree.
        seqs = [s.seq for s in main.spans]
        assert seqs == sorted(seqs)
        assert all(s.end_seq > s.seq for s in main.spans)
        # simulated time never runs backwards through a merged trace.
        starts = [s.start_sim_s for s in main.spans]
        assert starts == sorted(starts)
        assert all(s.end_sim_s >= s.start_sim_s for s in main.spans)

    @given(plans=_fragment_plans)
    @settings(max_examples=50, deadline=None)
    def test_absorb_matches_inline_recording(self, plans):
        inline = TraceRecorder()
        merged = TraceRecorder()
        for plan in plans:
            for name, n_events in plan:
                with inline.span(name):
                    for k in range(n_events):
                        inline.event(f"{name}.event", k=k)
            merged.absorb(_build_fragment(plan, 0.0))
        assert [
            (s.span_id, s.parent_id, s.seq, s.end_seq, s.name)
            for s in merged.spans
        ] == [
            (s.span_id, s.parent_id, s.seq, s.end_seq, s.name)
            for s in inline.spans
        ]
        assert [(e.seq, e.name, e.attrs) for e in merged.events] == [
            (e.seq, e.name, e.attrs) for e in inline.events
        ]
