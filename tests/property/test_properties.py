"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import exponential_moving_average, percentile
from repro.common.timeseries import TimeSeries
from repro.core.tde.entropy import normalized_entropy
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.knobs import postgres_catalog
from repro.tuners.base import config_to_vector, vector_to_config
from repro.tuners.gpr import GaussianProcessRegressor
from repro.workloads.sampling import ReservoirSampler
from repro.workloads.templating import make_template

_CATALOG = postgres_catalog()

counts = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=0, max_size=20
)


class TestEntropyProperties:
    @given(counts)
    def test_entropy_in_unit_interval(self, values):
        h = normalized_entropy(values)
        assert 0.0 <= h <= 1.0 + 1e-12

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=20))
    def test_uniform_maximises(self, values):
        uniform = [1.0] * len(values)
        assert normalized_entropy(uniform) >= normalized_entropy(values) - 1e-9

    @given(st.floats(min_value=0.01, max_value=1e6), st.integers(2, 12))
    def test_scale_invariance(self, scale, n):
        base = list(range(1, n + 1))
        scaled = [scale * b for b in base]
        assert normalized_entropy(base) == np.float64(
            normalized_entropy(scaled)
        ).item() or math.isclose(
            normalized_entropy(base), normalized_entropy(scaled), rel_tol=1e-9
        )

    @given(counts)
    def test_permutation_invariance(self, values):
        shuffled = list(reversed(values))
        assert math.isclose(
            normalized_entropy(values),
            normalized_entropy(shuffled),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )


class TestReservoirProperties:
    @given(st.integers(1, 30), st.integers(0, 200), st.integers(0, 2**31 - 1))
    def test_size_invariant(self, capacity, n, seed):
        r = ReservoirSampler(capacity, seed=seed)
        r.observe_many(range(n))
        assert len(r) == min(capacity, n)
        assert r.seen == n

    @given(st.integers(1, 30), st.integers(0, 200), st.integers(0, 2**31 - 1))
    def test_sample_subset_of_stream(self, capacity, n, seed):
        r = ReservoirSampler(capacity, seed=seed)
        r.observe_many(range(n))
        assert set(r.sample) <= set(range(n))

    @given(st.integers(1, 30), st.integers(0, 200), st.integers(0, 2**31 - 1))
    def test_no_duplicates_for_distinct_stream(self, capacity, n, seed):
        r = ReservoirSampler(capacity, seed=seed)
        r.observe_many(range(n))
        assert len(r.sample) == len(set(r.sample))


knob_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=len(_CATALOG),
    max_size=len(_CATALOG),
)


class TestConfigProperties:
    @given(knob_vectors)
    def test_vector_roundtrip(self, vec):
        config = vector_to_config(np.array(vec), _CATALOG)
        back = config_to_vector(config)
        assert np.allclose(back, np.clip(vec, 0.0, 1.0), atol=1e-9)

    @given(knob_vectors, st.floats(min_value=300.0, max_value=20_000.0),
           st.integers(1, 64))
    def test_fitted_to_budget_always_fits(self, vec, limit, connections):
        config = vector_to_config(np.array(vec), _CATALOG)
        fitted = config.fitted_to_budget(limit, connections)
        floors = {
            k.name: k.min_value
            for k in _CATALOG.memory_budget_knobs()
            if k.name != "shared_buffers"
        }
        # Either it fits the (headroomed) budget, or every non-buffer
        # memory knob is pinned at its minimum and the budget is simply
        # impossible for this catalog.
        footprint = fitted.memory_footprint_mb(connections)
        at_floor = all(
            fitted[name] <= floor + 1e-9 for name, floor in floors.items()
        )
        assert footprint <= limit * 0.95 + 1e-6 or at_floor

    @given(knob_vectors)
    def test_all_values_within_ranges(self, vec):
        config = vector_to_config(np.array(vec), _CATALOG)
        for knob in _CATALOG:
            assert knob.min_value <= config[knob.name] <= knob.max_value


class TestTimeSeriesProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_mean_between_min_and_max(self, values):
        ts = TimeSeries("t")
        ts.extend(list(enumerate(values)))
        assert min(values) - 1e-9 <= ts.mean() <= max(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=1.0, max_value=20.0),
    )
    def test_resample_preserves_bounds(self, values, bucket):
        ts = TimeSeries("t")
        ts.extend(list(enumerate(values)))
        out = ts.resample_mean(bucket)
        assert len(out) >= 1
        assert min(values) - 1e-9 <= out.mean() <= max(values) + 1e-9


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=60),
           st.floats(min_value=0.0, max_value=100.0))
    def test_percentile_within_range(self, values, q):
        p = percentile(values, q)
        assert min(values) - 1e-6 <= p <= max(values) + 1e-6

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60),
           st.floats(min_value=0.01, max_value=1.0))
    def test_ema_bounded_by_input_range(self, values, alpha):
        out = exponential_moving_average(values, alpha)
        assert len(out) == len(values)
        assert all(min(values) - 1e-9 <= v <= max(values) + 1e-9 for v in out)


class TestTemplatingProperties:
    sql_texts = st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd", "Zs"),
                               whitelist_characters="=*,()'._"),
        min_size=1,
        max_size=80,
    )

    @given(sql_texts)
    def test_template_idempotent(self, sql):
        once = make_template(sql)
        twice = make_template(once)
        assert once == twice

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    def test_parameter_values_never_survive(self, a, b):
        t1 = make_template(f"SELECT * FROM t WHERE a = {a} AND b = {b}")
        t2 = make_template("SELECT * FROM t WHERE a = 0 AND b = 1")
        assert t1 == t2


class TestGPRProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 25), st.integers(0, 2**31 - 1))
    def test_posterior_mean_finite_and_std_nonnegative(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, size=(n, 3))
        y = rng.normal(size=n)
        gpr = GaussianProcessRegressor().fit(x, y)
        grid = rng.uniform(0, 1, size=(10, 3))
        mean, std = gpr.predict(grid, return_std=True)
        assert np.isfinite(mean).all()
        assert (std >= 0).all()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 25), st.integers(0, 2**31 - 1))
    def test_ucb_monotone_in_kappa(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, size=(n, 2))
        y = rng.normal(size=n)
        gpr = GaussianProcessRegressor().fit(x, y)
        grid = rng.uniform(0, 1, size=(8, 2))
        assert np.all(gpr.ucb(grid, 2.0) >= gpr.ucb(grid, 1.0) - 1e-9)
