"""Property-based tests (hypothesis) on the safety governor.

Three invariants safe online tuning must hold for *any* seed:

- ``SafetyGovernor.bound`` always returns a config inside both the step
  budget (L-inf in normalised knob space) and every knob's legal range;
  a candidate already inside the budget passes through untouched.
- An auto-revert restores the anchor configuration byte-identically:
  after the DFA applies the revert decision, every node carries exactly
  the pre-promotion config.
- A canary rejection never mutates the master (nor leaves the canary
  slave on the candidate), whatever the candidate was.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import make_rng
from repro.core.apply import CanaryContext, DataFederationAgent
from repro.core.director import ConfigRepository, GovernorPolicy, SafetyGovernor
from repro.dbsim import KnobConfiguration, ReplicatedService, postgres_catalog
from repro.tuners.base import config_to_vector, vector_to_config
from repro.workloads import TPCCWorkload

seeds = st.integers(min_value=0, max_value=2**31 - 1)
budgets = st.floats(min_value=0.05, max_value=1.0)

_EPS = 1e-6


def _random_candidate(catalog, seed, reload_only=False):
    """A uniform draw from the normalised knob space, as a config."""
    rng = make_rng(seed)
    base = KnobConfiguration(catalog)
    values = vector_to_config(rng.random(len(catalog)), catalog)
    updates = {
        knob.name: values[knob.name]
        for knob in catalog
        if not (reload_only and knob.restart_required)
    }
    return base.with_values(updates)


class TestBoundedMoves:
    @given(seeds, budgets)
    @settings(max_examples=50, deadline=None)
    def test_bounded_within_budget_and_ranges(self, seed, budget):
        catalog = postgres_catalog()
        incumbent = KnobConfiguration(catalog)
        candidate = _random_candidate(catalog, seed)
        governor = SafetyGovernor(
            ConfigRepository(), policy=GovernorPolicy(step_budget=budget)
        )
        move = governor.bound("svc", incumbent, candidate, 0.0)

        delta = config_to_vector(move.config) - config_to_vector(incumbent)
        distance = float(np.max(np.abs(delta))) if delta.size else 0.0
        assert distance <= budget + _EPS
        by_name = {knob.name: knob for knob in catalog}
        for name, value in move.config.as_dict().items():
            knob = by_name[name]
            assert knob.min_value - _EPS <= value <= knob.max_value + _EPS

    @given(seeds, budgets)
    @settings(max_examples=50, deadline=None)
    def test_within_budget_passes_through_byte_identical(self, seed, budget):
        catalog = postgres_catalog()
        incumbent = KnobConfiguration(catalog)
        candidate = _random_candidate(catalog, seed)
        governor = SafetyGovernor(
            ConfigRepository(), policy=GovernorPolicy(step_budget=budget)
        )
        original = float(
            np.max(
                np.abs(config_to_vector(candidate) - config_to_vector(incumbent))
            )
        )
        move = governor.bound("svc", incumbent, candidate, 0.0)
        if original <= budget:
            assert not move.clamped
            assert move.config == candidate
            assert move.config.as_dict() == candidate.as_dict()
        else:
            assert move.clamped
            assert move.stages >= 2


class TestRevertRestoresIncumbent:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_revert_is_byte_identical(self, seed):
        service = ReplicatedService(
            "postgres", "m4.large", 20.0, replicas=2, seed=seed % 97
        )
        good = service.master.config
        bad = _random_candidate(good.catalog, seed, reload_only=True)
        governor = SafetyGovernor(ConfigRepository())
        dfa = DataFederationAgent()

        governor.observe_window("svc", good, 100.0, 0.0)
        assert dfa.apply(service, bad).applied
        governor.note_promotion("svc", bad, 300.0)
        decision = governor.observe_window(
            "svc", service.master.config, 10.0, 600.0
        )
        assert decision is not None
        assert dfa.apply(service, decision.config).applied
        for node in service.nodes:
            assert node.config == good
            assert node.config.as_dict() == good.as_dict()


class TestCanaryRejectionLeavesMasterAlone:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_rejection_never_mutates_master(self, seed):
        service = ReplicatedService(
            "postgres", "m4.large", 20.0, replicas=2, seed=seed % 97
        )
        before = service.master.config
        slave_before = service.slaves[0].config
        candidate = _random_candidate(before.catalog, seed, reload_only=True)
        batch = TPCCWorkload(rps=400.0, seed=seed % 31).batch(20.0)
        # An unreachable threshold forces the rejection path regardless of
        # what the draw did to throughput.
        report = DataFederationAgent().apply(
            service,
            candidate,
            canary=CanaryContext(batch=batch, threshold=1e9),
        )
        assert not report.applied
        assert report.canary_rejected
        assert service.master.config == before
        assert service.master.config.as_dict() == before.as_dict()
        assert service.slaves[0].config == slave_before
