"""Property-based tests (hypothesis) on the hardened control plane.

Two invariants the robustness layer must hold for *any* seed:

- ``Reconciler.tick`` is idempotent: once a drift is reconciled, a second
  tick at the same instant observes a consistent service and changes
  nothing.
- A DFA apply rejected by a slave crash leaves the fleet restorable: after
  the reconciler's watcher timeout elapses, every node is back on the
  persisted pre-apply configuration, however the crash was injected.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import Provisioner
from repro.core.apply import (
    DataFederationAgent,
    Reconciler,
    ServiceOrchestrator,
    adapter_for,
)
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultyAdapter

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _deployment(seed):
    provisioner = Provisioner(seed=seed)
    deployment = provisioner.provision(replicas=2)
    orchestrator = ServiceOrchestrator()
    orchestrator.register(deployment)
    return orchestrator, deployment


class TestReconcilerIdempotence:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_tick_idempotent_after_reconcile(self, seed):
        orchestrator, deployment = _deployment(seed)
        service = deployment.service
        drifted = service.master.config.with_values({"work_mem": 96})
        service.master.apply_config(drifted, mode="reload")

        reconciler = Reconciler(orchestrator, watcher_timeout_s=60.0)
        instance_id = deployment.instance_id
        reconciler.tick(instance_id, service, 0.0)
        first = reconciler.tick(instance_id, service, 120.0)
        assert first.reconciled
        assert service.configs_consistent()

        snapshot = [node.config for node in service.nodes]
        second = reconciler.tick(instance_id, service, 120.0)
        assert not second.drift_detected
        assert not second.reconciled
        assert second.nodes_restored == 0
        assert [node.config for node in service.nodes] == snapshot

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_consistent_service_never_touched(self, seed):
        orchestrator, deployment = _deployment(seed)
        service = deployment.service
        reconciler = Reconciler(orchestrator, watcher_timeout_s=60.0)
        snapshot = [node.config for node in service.nodes]
        for t in (0.0, 120.0, 240.0):
            action = reconciler.tick(deployment.instance_id, service, t)
            assert not action.drift_detected
        assert [node.config for node in service.nodes] == snapshot


class TestCrashRejectionRestores:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_slave_crash_rejection_restores_persisted_config(self, seed):
        orchestrator, deployment = _deployment(seed)
        service = deployment.service
        persisted = orchestrator.persisted_config(deployment.instance_id)

        plan = FaultPlan(
            (FaultEvent(FaultKind.APPLY_CRASH, deployment.instance_id, 0.0, 1.0),)
        )
        injector = FaultInjector(plan)
        adapter = FaultyAdapter(adapter_for(service.flavor), injector)
        adapter.register_service(deployment.instance_id, service.nodes)

        dfa = DataFederationAgent(adapter=adapter)
        target = persisted.with_values({"work_mem": 64})
        report = dfa.apply(service, target)
        assert not report.applied
        assert report.rejected_at == "slave0"

        # The crash-mid-apply left the slave drifted; the reconciler heals
        # the node and restores the persisted config once its watcher
        # timeout elapses. The fault window is over by then.
        injector.advance(10.0)
        reconciler = Reconciler(
            orchestrator, watcher_timeout_s=60.0, adapter=adapter
        )
        reconciler.tick(deployment.instance_id, service, 10.0)
        action = reconciler.tick(deployment.instance_id, service, 120.0)
        assert action.reconciled
        assert service.configs_consistent()
        assert all(node.config == persisted for node in service.nodes)
        assert not any(node.crashed for node in service.nodes)
