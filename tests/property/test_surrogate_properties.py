"""Property-based tests (hypothesis) on the surrogate screening tier.

Invariants the screen must hold for *any* seeded training set:

- **determinism** — two independently constructed screens given the same
  training set and candidates produce byte-identical predictions and the
  same shortlist order; there is no hidden RNG state;
- **version-keyed retraining** — a retrain fires exactly when the
  repository version moves, never on a repeat of the same version;
- **shortlist sanity** — the shortlist is always a duplicate-free subset
  of the candidate indices and is never empty when candidates exist and
  the screen does not abstain.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuners.gpr import GaussianProcessRegressor
from repro.tuners.surrogate import (
    CoresetGPR,
    SurrogatePolicy,
    SurrogateScreen,
    kcenter_coreset,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)
sample_counts = st.integers(min_value=8, max_value=60)
candidate_counts = st.integers(min_value=1, max_value=120)
shortlist_sizes = st.integers(min_value=1, max_value=24)


def _training_set(seed: int, n: int, d: int = 4):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(n, d))
    y = np.cos(4.0 * x[:, 0]) + x[:, 1] ** 2 + rng.normal(0.0, 0.1, n)
    return x, y


def _candidates(seed: int, n: int, d: int = 4) -> np.ndarray:
    return np.random.default_rng(seed + 1).uniform(0.0, 1.0, size=(n, d))


class TestDeterminism:
    @given(seeds, sample_counts)
    @settings(max_examples=40, deadline=None)
    def test_equal_inputs_give_byte_identical_predictions(self, seed, n):
        x, y = _training_set(seed, n)
        query = _candidates(seed, 32)
        a = CoresetGPR(max_coreset=8).fit(x.copy(), y.copy())
        b = CoresetGPR(max_coreset=8).fit(x.copy(), y.copy())
        mean_a, std_a = a.predict(query, return_std=True)
        mean_b, std_b = b.predict(query, return_std=True)
        assert mean_a.tobytes() == mean_b.tobytes()
        assert std_a.tobytes() == std_b.tobytes()

    @given(seeds, sample_counts, candidate_counts, shortlist_sizes)
    @settings(max_examples=40, deadline=None)
    def test_independent_screens_agree_on_shortlist_order(
        self, seed, n, n_candidates, size
    ):
        x, y = _training_set(seed, n)
        candidates = _candidates(seed, n_candidates)
        gpr = GaussianProcessRegressor().fit(x, y)
        policy = SurrogatePolicy(shortlist_size=size, min_train_samples=4)
        keep_a = SurrogateScreen(policy).shortlist(
            "w", candidates, gpr, x, y, 0.5, version=1
        )
        keep_b = SurrogateScreen(policy).shortlist(
            "w", candidates, gpr, x, y, 0.5, version=1
        )
        assert keep_a is not None and keep_b is not None
        assert keep_a.tolist() == keep_b.tolist()

    @given(seeds, sample_counts)
    @settings(max_examples=40, deadline=None)
    def test_coreset_selection_is_deterministic(self, seed, n):
        x, y = _training_set(seed, n)
        assert (
            kcenter_coreset(x, y, 8).tolist()
            == kcenter_coreset(x.copy(), y.copy(), 8).tolist()
        )


class TestVersionKeyedRetrain:
    @given(seeds, st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_retrain_fires_exactly_on_version_bump(self, seed, repeats):
        x, y = _training_set(seed, 30)
        candidates = _candidates(seed, 40)
        gpr = GaussianProcessRegressor().fit(x, y)
        screen = SurrogateScreen(SurrogatePolicy(min_train_samples=4))
        for _ in range(repeats):
            screen.shortlist("w", candidates, gpr, x, y, 0.5, version=10)
        assert screen.retrains == 1
        assert screen.hits == repeats - 1
        # The version moves: exactly one more retrain, however often the
        # new version repeats afterwards.
        for _ in range(repeats):
            screen.shortlist("w", candidates, gpr, x, y, 0.5, version=11)
        assert screen.retrains == 2
        assert screen.hits == 2 * (repeats - 1)
        assert screen.model_version("w") == 11

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_abstentions_never_touch_the_cache(self, seed):
        x, y = _training_set(seed, 30)
        candidates = _candidates(seed, 20)
        screen = SurrogateScreen(SurrogatePolicy(min_train_samples=4))
        assert screen.shortlist("w", candidates, None, x, y, 0.5, 1) is None
        assert (
            screen.shortlist("w", candidates[:0],
                             GaussianProcessRegressor().fit(x, y),
                             x, y, 0.5, 1)
            is None
        )
        assert screen.retrains == 0
        assert screen.model_version("w") is None


class TestShortlistSanity:
    @given(seeds, sample_counts, candidate_counts, shortlist_sizes)
    @settings(max_examples=60, deadline=None)
    def test_subset_unique_and_nonempty(self, seed, n, n_candidates, size):
        x, y = _training_set(seed, n)
        candidates = _candidates(seed, n_candidates)
        gpr = GaussianProcessRegressor().fit(x, y)
        policy = SurrogatePolicy(shortlist_size=size, min_train_samples=4)
        keep = SurrogateScreen(policy).shortlist(
            "w", candidates, gpr, x, y, 0.5, version=1
        )
        # Candidates exist and the screen has enough data: it must answer.
        assert keep is not None and len(keep) > 0
        assert len(keep) == min(size, n_candidates)
        indices = keep.tolist()
        assert len(set(indices)) == len(indices)
        assert all(0 <= i < n_candidates for i in indices)

    @given(seeds, sample_counts, candidate_counts, shortlist_sizes)
    @settings(max_examples=40, deadline=None)
    def test_shortlist_ordered_by_descending_surrogate_score(
        self, seed, n, n_candidates, size
    ):
        x, y = _training_set(seed, n)
        candidates = _candidates(seed, n_candidates)
        gpr = GaussianProcessRegressor().fit(x, y)
        policy = SurrogatePolicy(shortlist_size=size, min_train_samples=4)
        screen = SurrogateScreen(policy)
        keep = screen.shortlist("w", candidates, gpr, x, y, 0.5, version=1)
        assert keep is not None
        model = screen._models["w"][1]
        scores = model.ucb(candidates, kappa=0.5)[keep]
        assert all(
            scores[i] >= scores[i + 1] for i in range(len(scores) - 1)
        )
