"""Unit tests for query templating."""

import numpy as np

from repro.workloads.query import QueryFamily, QueryFootprint, QueryType
from repro.workloads.templating import TemplateCatalog, make_template, template_id


class TestMakeTemplate:
    def test_strips_numbers(self):
        assert make_template("SELECT * FROM t WHERE id = 42") == (
            "SELECT * FROM t WHERE id = ?"
        )

    def test_strips_strings(self):
        out = make_template("SELECT * FROM t WHERE name = 'bob'")
        assert "'bob'" not in out
        assert "?" in out

    def test_numbers_inside_strings_not_double_stripped(self):
        out = make_template("UPDATE t SET v = 'a1b2' WHERE id = 7")
        assert out == "UPDATE t SET v = ? WHERE id = ?"

    def test_whitespace_normalised(self):
        assert make_template("SELECT  *\n FROM t") == "SELECT * FROM t"

    def test_same_template_for_different_params(self):
        a = make_template("SELECT * FROM t WHERE id = 1")
        b = make_template("SELECT * FROM t WHERE id = 999")
        assert a == b


class TestTemplateId:
    def test_stable(self):
        assert template_id("abc") == template_id("abc")

    def test_distinct(self):
        assert template_id("a") != template_id("b")

    def test_short(self):
        assert len(template_id("query")) == 12


def _query(text, family="f"):
    from repro.workloads.query import Query

    return Query(family, QueryType.SELECT, text, QueryFootprint())


class TestTemplateCatalog:
    def test_observe_groups_by_template(self):
        cat = TemplateCatalog()
        t1 = cat.observe(_query("SELECT * FROM t WHERE id = 1"))
        t2 = cat.observe(_query("SELECT * FROM t WHERE id = 2"))
        assert t1 == t2
        assert len(cat) == 1
        assert cat.total_observed == 2

    def test_counts_per_template(self):
        cat = TemplateCatalog()
        tid = cat.observe(_query("SELECT 1"))
        cat.observe(_query("SELECT 1"))
        cat.observe(_query("SELECT * FROM other"))
        assert cat.stats(tid).count == 2

    def test_most_frequent_params(self):
        cat = TemplateCatalog()
        tid = cat.observe(_query("SELECT * FROM t WHERE id = 7"))
        cat.observe(_query("SELECT * FROM t WHERE id = 7"))
        cat.observe(_query("SELECT * FROM t WHERE id = 8"))
        assert cat.stats(tid).most_frequent_params() == ("7",)

    def test_top_templates_ordering(self):
        cat = TemplateCatalog()
        for _ in range(3):
            cat.observe(_query("SELECT a FROM x"))
        cat.observe(_query("SELECT b FROM y"))
        top = cat.top_templates(2)
        assert top[0].count == 3

    def test_example_retained(self):
        cat = TemplateCatalog()
        q = _query("SELECT 1")
        tid = cat.observe(q)
        assert cat.stats(tid).example is q

    def test_generated_families_template_cleanly(self):
        fam = QueryFamily(
            "f",
            QueryType.SELECT,
            "SELECT * FROM t WHERE a = %s AND b = %s",
            1.0,
            QueryFootprint(),
            ("int", "str"),
        )
        rng = np.random.default_rng(0)
        cat = TemplateCatalog()
        ids = {cat.observe(fam.instantiate(rng)) for _ in range(10)}
        assert len(ids) == 1


class TestIdentifierSuffixes:
    def test_numeric_identifier_suffixes_templated(self):
        """Generated names (tmp_sales_482) must share one template."""
        a = make_template("CREATE TEMP TABLE tmp_sales_482 AS SELECT 1")
        b = make_template("CREATE TEMP TABLE tmp_sales_91 AS SELECT 1")
        assert a == b
        assert "tmp_sales_?" in a
