"""Unit tests for AutoDBaaS facade behaviours."""

import pytest

from repro import AutoDBaaS
from repro.cloud import Provisioner
from repro.dbsim import postgres_catalog
from repro.tuners import OtterTuneTuner, WorkloadRepository
from repro.workloads import AdulteratedTPCCWorkload, TPCCWorkload


def _service(**kwargs):
    repo = WorkloadRepository()
    tuner = OtterTuneTuner(postgres_catalog(), repo, memory_limit_mb=6553.6, seed=1)
    return AutoDBaaS([tuner], repo, **kwargs)


class TestAttach:
    def test_requires_tuners(self):
        with pytest.raises(ValueError):
            AutoDBaaS([], WorkloadRepository())

    def test_apply_mode_validation(self):
        svc = _service()
        d = Provisioner(seed=2).provision()
        with pytest.raises(ValueError, match="apply_mode"):
            svc.attach(d, TPCCWorkload(seed=3), apply_mode="yolo")

    def test_registration_persists_config(self):
        svc = _service()
        d = Provisioner(seed=2).provision()
        svc.attach(d, TPCCWorkload(seed=3))
        assert (
            svc.orchestrator.persisted_config(d.instance_id)
            == d.service.master.config
        )


class TestThrottleContext:
    def test_request_carries_throttle_knobs(self):
        svc = _service(window_s=60.0)
        d = Provisioner(seed=2).provision(plan="m4.large", data_size_gb=21.0)
        svc.attach(d, AdulteratedTPCCWorkload(0.8, seed=3), policy="tde")
        outcome = svc.step()[0]
        assert outcome.tuning_requested
        # The throttle floors must have been raised in the director.
        floors = svc.director._knob_floors.get(d.instance_id, {})
        assert "work_mem" in floors

    def test_restart_apply_mode_restarts_nodes(self):
        svc = _service(window_s=60.0)
        d = Provisioner(seed=2).provision(plan="m4.large", data_size_gb=21.0)
        svc.attach(
            d,
            AdulteratedTPCCWorkload(0.8, seed=3),
            policy="periodic",
            periodic_interval_s=60.0,
            apply_mode="restart",
        )
        before_buffer = d.service.master.config["shared_buffers"]
        outcome = svc.step()[0]
        assert outcome.tuning_requested
        assert outcome.apply_report is not None
        # Native restart applies even restart-required knobs immediately.
        if outcome.apply_report.applied:
            rec_buffer = outcome.split.recommendation.config["shared_buffers"]
            if rec_buffer != before_buffer:
                assert d.service.master.config["shared_buffers"] != before_buffer

    def test_crashed_master_healed_next_step(self):
        svc = _service(window_s=60.0)
        d = Provisioner(seed=2).provision()
        svc.attach(d, TPCCWorkload(rps=50.0, seed=3), policy="monitor")
        d.service.master.crashed = True
        outcome = svc.step()[0]
        assert outcome.result is not None
        assert not d.service.master.crashed


class TestSampleStreaming:
    def test_rl_tuner_learns_through_facade(self):
        """Uploaded samples must reach policy-based tuners' learn()."""
        from repro.tuners import CDBTuneTuner

        repo = WorkloadRepository()
        tuner = CDBTuneTuner(postgres_catalog(), memory_limit_mb=6553.6, seed=1)
        svc = AutoDBaaS([tuner], repo, window_s=60.0)
        d = Provisioner(seed=2).provision(plan="m4.large", data_size_gb=21.0)
        svc.attach(
            d,
            AdulteratedTPCCWorkload(0.8, seed=3),
            policy="periodic",
            periodic_interval_s=60.0,
        )
        for _ in range(4):
            svc.step()
        # Transition per window after the first: recommend -> next learn.
        assert len(tuner.episode_rewards) >= 2
        # The repository holds each sample exactly once (no double-add).
        assert repo.total_samples() == 4
