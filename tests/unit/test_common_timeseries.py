"""Unit tests for repro.common.timeseries."""

import numpy as np
import pytest

from repro.common.timeseries import TimeSeries


def series(pairs):
    ts = TimeSeries("t")
    ts.extend(pairs)
    return ts


class TestAppend:
    def test_append_and_len(self):
        ts = series([(0, 1.0), (1, 2.0)])
        assert len(ts) == 2

    def test_rejects_non_monotonic(self):
        ts = series([(5, 1.0)])
        with pytest.raises(ValueError, match="non-monotonic"):
            ts.append(4, 2.0)

    def test_allows_equal_timestamps(self):
        ts = series([(5, 1.0)])
        ts.append(5, 2.0)
        assert len(ts) == 2

    def test_iteration_yields_pairs(self):
        ts = series([(0, 1.0), (2, 3.0)])
        assert list(ts) == [(0.0, 1.0), (2.0, 3.0)]


class TestReductions:
    def test_mean(self):
        assert series([(0, 2.0), (1, 4.0)]).mean() == 3.0

    def test_mean_empty_is_zero(self):
        assert TimeSeries("x").mean() == 0.0

    def test_max(self):
        assert series([(0, 2.0), (1, 9.0), (2, 4.0)]).max() == 9.0

    def test_std_single_sample_is_zero(self):
        assert series([(0, 2.0)]).std() == 0.0

    def test_std_matches_numpy(self):
        values = [1.0, 5.0, 3.0, 8.0]
        ts = series(list(enumerate(values)))
        assert ts.std() == pytest.approx(float(np.std(values)))


class TestWindow:
    def test_window_half_open(self):
        ts = series([(0, 1.0), (5, 2.0), (10, 3.0)])
        win = ts.window(0, 10)
        assert len(win) == 2
        assert win.values.tolist() == [1.0, 2.0]

    def test_window_empty(self):
        ts = series([(0, 1.0)])
        assert len(ts.window(5, 10)) == 0


class TestPeaks:
    def test_finds_local_maximum(self):
        ts = series([(0, 1.0), (1, 5.0), (2, 1.0), (3, 7.0), (4, 1.0)])
        assert ts.peaks(threshold=2.0) == [1.0, 3.0]

    def test_threshold_filters(self):
        ts = series([(0, 1.0), (1, 3.0), (2, 1.0)])
        assert ts.peaks(threshold=5.0) == []

    def test_endpoints_not_peaks(self):
        ts = series([(0, 10.0), (1, 1.0), (2, 10.0)])
        assert ts.peaks(threshold=0.0) == []


class TestResample:
    def test_resample_mean_buckets(self):
        ts = series([(0, 1.0), (1, 3.0), (2, 5.0), (3, 7.0)])
        out = ts.resample_mean(2.0)
        assert out.values.tolist() == [2.0, 6.0]

    def test_resample_preserves_name(self):
        ts = series([(0, 1.0)])
        assert ts.resample_mean(10.0).name == ts.name

    def test_resample_with_gap(self):
        ts = series([(0, 2.0), (10, 4.0)])
        out = ts.resample_mean(2.0)
        assert len(out) == 2
        assert out.values.tolist() == [2.0, 4.0]
