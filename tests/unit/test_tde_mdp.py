"""Unit tests for the learning automaton (MDP {Q,A,B,N,H})."""

import pytest

from repro.core.tde.mdp import LearningAutomaton
from repro.dbsim.knobs import KnobClass, KnobDef, KnobUnit


def _knob():
    return KnobDef(
        "k", KnobClass.ASYNC_PLANNER, KnobUnit.COST, 5.0, 0.0, 10.0
    )


class TestActions:
    def test_starts_uniform(self):
        a = LearningAutomaton(_knob(), seed=0)
        assert a.probabilities == {"increase": 0.5, "decrease": 0.5}

    def test_next_value_steps(self):
        a = LearningAutomaton(_knob(), step_fraction=0.1, seed=0)
        assert a.next_value(5.0, "increase") == pytest.approx(6.0)
        assert a.next_value(5.0, "decrease") == pytest.approx(4.0)

    def test_next_value_clamped(self):
        a = LearningAutomaton(_knob(), step_fraction=0.5, seed=0)
        assert a.next_value(9.0, "increase") == 10.0
        assert a.next_value(1.0, "decrease") == 0.0

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            LearningAutomaton(_knob()).next_value(5.0, "wiggle")

    def test_step_fraction_validation(self):
        with pytest.raises(ValueError):
            LearningAutomaton(_knob(), step_fraction=0.0)


class TestLearning:
    def test_reward_raises_action_probability(self):
        a = LearningAutomaton(_knob(), seed=0)
        a.update("increase", rewarded=True)
        probs = a.probabilities
        assert probs["increase"] > 0.5
        assert probs["increase"] + probs["decrease"] == pytest.approx(1.0)

    def test_penalty_lowers_action_probability(self):
        a = LearningAutomaton(_knob(), seed=0)
        a.update("increase", rewarded=False)
        assert a.probabilities["increase"] < 0.5

    def test_repeated_rewards_converge(self):
        a = LearningAutomaton(_knob(), seed=0)
        for _ in range(50):
            a.update("increase", rewarded=True)
        assert a.probabilities["increase"] > 0.95

    def test_choose_action_follows_distribution(self):
        a = LearningAutomaton(_knob(), seed=1)
        for _ in range(40):
            a.update("decrease", rewarded=True)
        choices = [a.choose_action() for _ in range(50)]
        assert choices.count("decrease") > 40

    def test_probabilities_stay_normalised(self):
        a = LearningAutomaton(_knob(), seed=2)
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(200):
            action = a.choose_action()
            a.update(action, rewarded=bool(rng.integers(0, 2)))
            probs = a.probabilities
            assert probs["increase"] + probs["decrease"] == pytest.approx(1.0)
            assert 0.0 <= probs["increase"] <= 1.0

    def test_record_history(self):
        a = LearningAutomaton(_knob(), seed=0)
        step = a.record("increase", 5.0, 6.0, 0.1, True)
        assert a.history == [step]
        assert step.knob == "k"
