"""Unit suite for the whole-program substrate: index, dataflow, call graph."""

import textwrap
from pathlib import Path, PurePosixPath

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.dataflow import ProjectAnalysis, Root, Tag
from repro.analysis.engine import Linter, ParsedModule
from repro.analysis.project import (
    ProjectContext,
    ProjectIndex,
    module_name,
)


def parse_tree(tmp_path: Path, files: dict[str, str]) -> list[ParsedModule]:
    """Write *files* (relpath -> source) and parse them all."""
    linter = Linter(root=tmp_path)
    modules = []
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        parsed = linter.parse(target)
        assert isinstance(parsed, ParsedModule), f"{relpath} failed to parse"
        modules.append(parsed)
    return modules


def build_context(tmp_path: Path, files: dict[str, str]) -> ProjectContext:
    """Parse *files* and build a full context (no package fill-in)."""
    return ProjectContext.build(parse_tree(tmp_path, files))


class TestModuleName:
    @pytest.mark.parametrize(
        ("relpath", "expected"),
        [
            ("src/repro/parallel/reduce.py", "repro.parallel.reduce"),
            ("repro/cloud/fleet.py", "repro.cloud.fleet"),
            ("src/repro/__init__.py", "repro"),
            ("src/repro/obs/__init__.py", "repro.obs"),
            ("tests/fixtures/mutants/m_x.py", "tests.fixtures.mutants.m_x"),
            ("tool.py", "tool"),
        ],
    )
    def test_mapping(self, relpath, expected):
        assert module_name(PurePosixPath(relpath)) == expected

    def test_absolute_package_path_anchors_at_repro(self):
        path = PurePosixPath("/opt/env/site-packages/repro/common/rng.py")
        assert module_name(path) == "repro.common.rng"


class TestProjectIndex:
    def test_functions_classes_and_methods_indexed(self, tmp_path):
        (module,) = parse_tree(
            tmp_path,
            {
                "app/mod.py": """
                def top():
                    def nested():
                        return 1
                    return nested()

                class Box:
                    def __init__(self, value):
                        self.value = value

                    def get(self):
                        return self.value
                """
            },
        )
        index = ProjectIndex([module])
        assert "app.mod.top" in index.functions
        assert "app.mod.top.nested" in index.functions
        assert "app.mod.Box" in index.classes
        box = index.classes["app.mod.Box"]
        assert box.methods == {
            "__init__": "app.mod.Box.__init__",
            "get": "app.mod.Box.get",
        }
        assert box.init_qname == "app.mod.Box.__init__"
        init = index.functions["app.mod.Box.__init__"]
        assert init.is_method and init.params == ("self", "value")
        assert init.param_index("value") == 1

    def test_resolve_name_prefers_local_then_imports(self, tmp_path):
        modules = parse_tree(
            tmp_path,
            {
                "app/util.py": """
                def helper():
                    return 1
                """,
                "app/mod.py": """
                from app.util import helper

                def local():
                    return helper()
                """,
            },
        )
        index = ProjectIndex(modules)
        mod = index.modules["app.mod"]
        assert index.resolve_name(mod, "local") == "app.mod.local"
        assert index.resolve_name(mod, "helper") == "app.util.helper"
        assert index.resolve_name(mod, "unknown") is None

    def test_canonical_follows_reexports(self, tmp_path):
        modules = parse_tree(
            tmp_path,
            {
                "pkg/impl.py": """
                class Engine:
                    def start(self):
                        return 1
                """,
                "pkg/__init__.py": """
                from pkg.impl import Engine
                """,
            },
        )
        index = ProjectIndex(modules)
        assert index.canonical("pkg.Engine") == "pkg.impl.Engine"
        assert index.canonical("pkg.Engine.start") == "pkg.impl.Engine.start"
        assert index.canonical("math.sqrt") == "math.sqrt"  # unchanged


class TestDataflow:
    def _analysis(self, tmp_path, files):
        return ProjectAnalysis(ProjectIndex(parse_tree(tmp_path, files)))

    def test_rng_source_and_sanitizer_tags(self, tmp_path):
        analysis = self._analysis(
            tmp_path,
            {
                "app/mod.py": """
                from repro.common.rng import make_rng, stream_root

                def live(seed):
                    return make_rng(seed)

                def root(seed):
                    return stream_root(seed)
                """
            },
        )
        assert analysis.summaries["app.mod.live"].returns_tags == {Tag.RNG}
        assert analysis.summaries["app.mod.root"].returns_tags == frozenset()

    def test_unordered_tag_from_sets_and_dict_views(self, tmp_path):
        analysis = self._analysis(
            tmp_path,
            {
                "app/mod.py": """
                def dedupe(items):
                    return set(items)

                def ordered(items):
                    return sorted(set(items))
                """
            },
        )
        summaries = analysis.summaries
        assert Tag.UNORDERED in summaries["app.mod.dedupe"].returns_tags
        assert Tag.UNORDERED not in summaries["app.mod.ordered"].returns_tags

    def test_call_results_drop_provenance_roots(self, tmp_path):
        analysis = self._analysis(
            tmp_path,
            {
                "app/mod.py": """
                import pickle

                def snapshot(spec):
                    fresh = pickle.loads(pickle.dumps(spec.repository))
                    fresh.add(1)
                    return fresh
                """
            },
        )
        facts = analysis.facts["app.mod.snapshot"]
        # ``fresh`` is a new object: mutating it charges no parameter.
        assert all(
            root.kind != "param"
            for mutation in facts.mutations
            for root in mutation.roots
        )

    def test_mutation_roots_use_load_semantics(self, tmp_path):
        analysis = self._analysis(
            tmp_path,
            {
                "app/mod.py": """
                def direct(spec, sample):
                    spec.repository.add(sample)
                """
            },
        )
        facts = analysis.facts["app.mod.direct"]
        (mutation,) = facts.mutations
        assert Root("param", 0) in mutation.roots

    def test_summary_closes_mutation_over_calls(self, tmp_path):
        analysis = self._analysis(
            tmp_path,
            {
                "app/mod.py": """
                def leaf(store, item):
                    store.append(item)

                def outer(store, items):
                    for item in items:
                        leaf(store, item)
                """
            },
        )
        assert 0 in analysis.summaries["app.mod.leaf"].mutates
        assert 0 in analysis.summaries["app.mod.outer"].mutates

    def test_alias_through_returns_param_roots(self, tmp_path):
        analysis = self._analysis(
            tmp_path,
            {
                "app/mod.py": """
                def pick(spec):
                    return spec

                def outer(spec):
                    pick(spec).registry.update({1: 2})
                """
            },
        )
        assert analysis.summaries["app.mod.pick"].returns_params == {0}
        facts = analysis.facts["app.mod.outer"]
        assert any(
            Root("param", 0) in mutation.roots for mutation in facts.mutations
        )


class TestCallGraph:
    def test_edges_and_reachability(self, tmp_path):
        context = build_context(
            tmp_path,
            {
                "app/mod.py": """
                def a():
                    return b() + 1

                def b():
                    return c()

                def c():
                    return 0

                def island():
                    return 9
                """
            },
        )
        graph = context.graph
        assert graph.callees("app.mod.a") == {"app.mod.b"}
        assert graph.callers("app.mod.c") == {"app.mod.b"}
        reach = graph.reachable(["app.mod.a"])
        assert reach == {"app.mod.a", "app.mod.b", "app.mod.c"}
        assert "app.mod.island" not in reach

    def test_constructor_edges_to_every_method(self, tmp_path):
        context = build_context(
            tmp_path,
            {
                "app/mod.py": """
                class Worker:
                    def __init__(self, spec):
                        self.spec = spec

                    def step(self):
                        return 1

                def factory(spec):
                    return Worker(spec)
                """
            },
        )
        callees = context.graph.callees("app.mod.factory")
        assert "app.mod.Worker.__init__" in callees
        assert "app.mod.Worker.step" in callees

    def test_shard_reachability_seeded_from_entries(self, tmp_path):
        context = ProjectContext.build(
            parse_tree(
                tmp_path,
                {
                    "app/mod.py": """
                    from repro.parallel.executor import FleetExecutor

                    def work(item):
                        return helper(item)

                    def helper(item):
                        return item * 2

                    def coordinator_only():
                        return 1

                    def run(items, workers):
                        executor = FleetExecutor(workers=workers)
                        return executor.map(work, items)
                    """
                },
            ),
            parser=Linter(root=tmp_path).parse,
        )
        reach = context.graph.shard_reachable()
        assert "app.mod.work" in reach
        assert "app.mod.helper" in reach
        assert "app.mod.coordinator_only" not in reach
        assert "app.mod.run" not in reach
        entries = [e.kind for _, e in context.graph.shard_entry_events()]
        assert entries == ["map"]


class TestProjectContextBuild:
    def test_package_seams_filled_in_for_fixture_trees(self, tmp_path):
        modules = parse_tree(
            tmp_path,
            {
                "app/mod.py": """
                from repro.obs.metrics import MetricsRegistry

                def fresh():
                    return MetricsRegistry()
                """
            },
        )
        context = ProjectContext.build(
            modules, parser=Linter(root=tmp_path).parse
        )
        assert "repro.obs.metrics.MetricsRegistry" in context.index.classes
        assert "repro.parallel.executor.FleetExecutor" in context.index.classes

    def test_no_parser_means_no_fill_in(self, tmp_path):
        context = build_context(
            tmp_path,
            {
                "app/mod.py": """
                def f():
                    return 1
                """
            },
        )
        assert "repro.obs.metrics.MetricsRegistry" not in context.index.classes
