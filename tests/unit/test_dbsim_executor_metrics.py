"""Unit tests for the executor service-time model and metric vectors."""

import numpy as np
import pytest

from repro.common.hardware import vm_type
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.executor import family_service_time_ms, run_batch
from repro.dbsim.memory import SpillReport
from repro.dbsim.metrics import METRIC_NAMES, OTTERTUNE_METRICS, MetricsDelta
from repro.dbsim.planner import PlannerModel
from repro.workloads.generator import WorkloadBatch
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType


@pytest.fixture
def planner():
    return PlannerModel("postgres", "tpcc", vm_type("m4.large"))


def _service(fp, cfg, planner, hit=0.9, wlat=1.0, data_factor=1.0, swap=1.0):
    return family_service_time_ms(
        fp, cfg, vm_type("m4.large"), hit, planner, wlat, data_factor, swap
    )


class TestServiceTime:
    def test_more_rows_more_time(self, pg_catalog, planner):
        cfg = KnobConfiguration(pg_catalog)
        small = _service(QueryFootprint(rows_examined=10), cfg, planner)
        big = _service(QueryFootprint(rows_examined=100_000), cfg, planner)
        assert big > small

    def test_buffer_misses_cost_io(self, pg_catalog, planner):
        cfg = KnobConfiguration(pg_catalog)
        fp = QueryFootprint(read_kb=10_000.0)
        hot = _service(fp, cfg, planner, hit=0.99)
        cold = _service(fp, cfg, planner, hit=0.1)
        assert cold > hot

    def test_spill_costs_io(self, pg_catalog, planner):
        cfg_small = KnobConfiguration(pg_catalog, {"work_mem": 4})
        cfg_big = KnobConfiguration(pg_catalog, {"work_mem": 512})
        fp = QueryFootprint(sort_mb=300.0)
        assert _service(fp, cfg_small, planner) > _service(fp, cfg_big, planner)

    def test_write_queries_pay_commit_wait(self, pg_catalog, planner):
        cfg = KnobConfiguration(pg_catalog)
        fp = QueryFootprint(write_kb=8.0)
        calm = _service(fp, cfg, planner, wlat=1.0)
        surging = _service(fp, cfg, planner, wlat=50.0)
        assert surging > calm

    def test_swap_multiplies_everything(self, pg_catalog, planner):
        cfg = KnobConfiguration(pg_catalog)
        fp = QueryFootprint(rows_examined=1000)
        assert _service(fp, cfg, planner, swap=3.0) == pytest.approx(
            3.0 * _service(fp, cfg, planner, swap=1.0)
        )


class TestRunBatch:
    def _batch(self, count, duration=10.0):
        fam = QueryFamily(
            "q", QueryType.SELECT, "SELECT", 1.0, QueryFootprint(rows_examined=100)
        )
        return WorkloadBatch("w", duration, count / duration, {"q": count}, {"q": fam})

    def _run(self, batch, pg_catalog, planner):
        return run_batch(
            batch,
            KnobConfiguration(pg_catalog),
            vm_type("m4.large"),
            0.9,
            planner,
            SpillReport(),
            1.0,
            1.0,
        )

    def test_empty_batch(self, pg_catalog, planner):
        summary = self._run(self._batch(0), pg_catalog, planner)
        assert summary.achieved_tps == 0.0
        assert summary.total_queries == 0

    def test_light_load_meets_offered(self, pg_catalog, planner):
        summary = self._run(self._batch(100), pg_catalog, planner)
        assert summary.achieved_tps == pytest.approx(10.0)
        assert summary.cpu_utilisation < 0.2

    def test_saturation_caps_throughput(self, pg_catalog, planner):
        summary = self._run(self._batch(2_000_000), pg_catalog, planner)
        assert summary.achieved_tps < 200_000
        assert summary.cpu_utilisation == 1.0

    def test_latency_inflates_near_saturation(self, pg_catalog, planner):
        light = self._run(self._batch(100), pg_catalog, planner)
        heavy = self._run(self._batch(2_000_000), pg_catalog, planner)
        assert heavy.avg_latency_ms > light.avg_latency_ms


class TestMetricsDelta:
    def test_defaults_zero_filled(self):
        m = MetricsDelta({"throughput_tps": 5.0})
        assert m["throughput_tps"] == 5.0
        assert m["wal_mb"] == 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            MetricsDelta({"made_up": 1.0})

    def test_unknown_lookup_rejected(self):
        with pytest.raises(KeyError):
            MetricsDelta({})["nope"]

    def test_vector_ordering(self):
        m = MetricsDelta({"xact_commit": 7.0})
        vec = m.as_vector()
        assert vec[METRIC_NAMES.index("xact_commit")] == 7.0
        assert len(vec) == len(METRIC_NAMES)

    def test_subset_vector(self):
        m = MetricsDelta({"wal_mb": 3.0})
        vec = m.as_vector(("wal_mb",))
        assert vec.tolist() == [3.0]

    def test_ottertune_set_lacks_planner_metrics(self):
        """§5/Fig. 15: OtterTune's metric set misses planner estimates."""
        assert "planner_cost_mean" not in OTTERTUNE_METRICS
        assert "planner_distance" not in OTTERTUNE_METRICS
        assert "throughput_tps" in OTTERTUNE_METRICS

    def test_scaled_copy(self):
        m = MetricsDelta({"wal_mb": 2.0}).scaled_copy(3.0)
        assert m["wal_mb"] == 6.0
