"""Unit tests for normalized entropy, query classes and the filter."""

import math

import pytest

from repro.core.tde.entropy import (
    QUERY_CLASSES,
    EntropyFilter,
    QueryClassHistogram,
    classify_query,
    normalized_entropy,
)
from repro.workloads.query import Query, QueryFootprint, QueryType


def _query(**fp_kwargs):
    return Query("f", QueryType.SELECT, "q", QueryFootprint(**fp_kwargs))


class TestNormalizedEntropy:
    def test_uniform_is_one(self):
        assert normalized_entropy([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_class_is_zero(self):
        assert normalized_entropy([10]) == 0.0

    def test_empty_is_zero(self):
        assert normalized_entropy([]) == 0.0

    def test_all_zero_counts_is_zero(self):
        assert normalized_entropy([0, 0, 0]) == 0.0

    def test_skew_lowers_entropy(self):
        assert normalized_entropy([100, 1, 1]) < normalized_entropy([34, 33, 33])

    def test_zero_counts_ignored(self):
        assert normalized_entropy([5, 5, 0]) == pytest.approx(1.0)

    def test_matches_shannon_formula(self):
        counts = [3, 7]
        p = [3 / 10, 7 / 10]
        h = -sum(pi * math.log(pi) for pi in p) / math.log(2)
        assert normalized_entropy(counts) == pytest.approx(h)

    def test_bounded(self):
        assert 0.0 <= normalized_entropy([1, 2, 3, 4, 50]) <= 1.0


class TestClassifyQuery:
    def test_maintenance_wins(self):
        q = _query(maintenance_mb=10.0, sort_mb=50.0)
        assert classify_query(q) == "maintenance_memory"

    def test_temp(self):
        assert classify_query(_query(temp_mb=5.0)) == "temp_memory"

    def test_sort(self):
        assert classify_query(_query(sort_mb=10.0)) == "working_memory"

    def test_small_sort_is_point(self):
        assert classify_query(_query(sort_mb=0.2)) == "point"

    def test_write_heavy(self):
        assert classify_query(_query(write_kb=100.0)) == "write_heavy"

    def test_point(self):
        assert classify_query(_query()) == "point"


class TestHistogram:
    def test_counts_zero_filled(self):
        h = QueryClassHistogram()
        h.observe(_query(sort_mb=10.0))
        counts = h.counts()
        assert counts["working_memory"] == 1
        assert set(counts) == set(QUERY_CLASSES)

    def test_entropy_uniform_mix(self):
        h = QueryClassHistogram()
        h.observe(_query(sort_mb=10.0))
        h.observe(_query(maintenance_mb=10.0))
        h.observe(_query(temp_mb=10.0))
        h.observe(_query(write_kb=100.0))
        assert h.entropy() == pytest.approx(1.0)

    def test_frequency(self):
        h = QueryClassHistogram()
        h.observe_many([_query(sort_mb=10.0)] * 3 + [_query()])
        assert h.frequency("working_memory") == pytest.approx(0.75)

    def test_frequency_empty(self):
        assert QueryClassHistogram().frequency("point") == 0.0

    def test_reset(self):
        h = QueryClassHistogram()
        h.observe(_query())
        h.reset()
        assert sum(h.counts().values()) == 0


class TestEntropyFilter:
    def _uniform_histogram(self):
        h = QueryClassHistogram()
        h.observe_many(
            [
                _query(sort_mb=10.0),
                _query(maintenance_mb=10.0),
                _query(temp_mb=10.0),
                _query(write_kb=100.0),
            ]
        )
        return h

    def _skewed_histogram(self):
        h = QueryClassHistogram()
        h.observe_many([_query(sort_mb=10.0)] * 50 + [_query()])
        return h

    def test_no_escalation_before_trigger_count(self):
        f = EntropyFilter(trigger_count=8)
        h = self._uniform_histogram()
        for _ in range(7):
            assert not f.should_escalate(h, knobs_at_cap=True)

    def test_escalates_at_eighth_consecutive_with_cap_and_entropy(self):
        f = EntropyFilter(trigger_count=8)
        h = self._uniform_histogram()
        results = [f.should_escalate(h, knobs_at_cap=True) for _ in range(8)]
        assert results == [False] * 7 + [True]
        assert f.entropy_hits == 1

    def test_no_escalation_below_entropy_threshold(self):
        f = EntropyFilter(trigger_count=8, entropy_threshold=0.75)
        h = self._skewed_histogram()
        results = [f.should_escalate(h, knobs_at_cap=True) for _ in range(8)]
        assert not any(results)

    def test_no_escalation_when_knobs_not_at_cap(self):
        f = EntropyFilter(trigger_count=8)
        h = self._uniform_histogram()
        results = [f.should_escalate(h, knobs_at_cap=False) for _ in range(8)]
        assert not any(results)

    def test_quiet_window_breaks_streak(self):
        f = EntropyFilter(trigger_count=4)
        h = self._uniform_histogram()
        for _ in range(3):
            f.should_escalate(h, knobs_at_cap=True)
        f.record_quiet_window()
        assert not f.should_escalate(h, knobs_at_cap=True)
        assert f.consecutive == 1

    def test_counter_resets_after_evaluation(self):
        """§3.1: 'the same job waits for next 8 throttles'."""
        f = EntropyFilter(trigger_count=4)
        h = self._skewed_histogram()
        for _ in range(4):
            f.should_escalate(h, knobs_at_cap=True)
        assert f.consecutive == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EntropyFilter(trigger_count=0)
        with pytest.raises(ValueError):
            EntropyFilter(entropy_threshold=1.5)
