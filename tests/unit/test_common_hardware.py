"""Unit tests for repro.common.hardware (VM and disk catalog)."""

import pytest

from repro.common.hardware import HDD, SSD, VM_TYPES, vm_type


class TestVMCatalog:
    def test_paper_plans_present(self):
        for name in ("t2.small", "t2.medium", "m4.large", "t2.large", "m4.xlarge"):
            assert name in VM_TYPES

    def test_fig2_vm_present(self):
        assert "t3.xlarge" in VM_TYPES

    def test_lookup(self):
        vm = vm_type("m4.xlarge")
        assert vm.vcpus == 4
        assert vm.memory_mb == 16_384

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="m4.xlarge"):
            vm_type("m9.mega")

    def test_db_memory_limit_leaves_headroom(self):
        for vm in VM_TYPES.values():
            assert vm.db_memory_limit_mb < vm.memory_mb
            assert vm.memory_mb - vm.db_memory_limit_mb >= 256.0

    def test_memory_ordering(self):
        assert vm_type("t2.small").memory_mb < vm_type("t2.medium").memory_mb
        assert vm_type("t2.medium").memory_mb < vm_type("m4.xlarge").memory_mb


class TestDiskKinds:
    def test_ssd_faster_than_hdd(self):
        assert SSD.base_latency_ms < HDD.base_latency_ms
        assert SSD.max_iops > HDD.max_iops

    def test_default_disk_is_ssd(self):
        assert vm_type("m4.large").disk == SSD
