"""Unit tests for the §3.1 at-cap rule filter in the memory detector."""

from repro.core.tde import MemoryThrottleDetector
from repro.dbsim import SimulatedDatabase
from repro.workloads import AdulteratedTPCCWorkload


def _undersized_db():
    """t2.small whose budget cannot cover the adulterated demands."""
    db = SimulatedDatabase("postgres", "t2.small", 21.0, seed=1)
    db.config = db.config.with_values(
        {"work_mem": 4096, "maintenance_work_mem": 8192, "temp_buffers": 2048}
    ).fitted_to_budget(db.vm.db_memory_limit_mb, db.active_connections)
    return db


class TestAtCapFilter:
    def test_capped_throttles_filtered_not_fired(self):
        db = _undersized_db()
        detector = MemoryThrottleDetector("svc", seed=2)
        workload = AdulteratedTPCCWorkload(0.8, data_size_gb=21.0, seed=3)
        filtered = 0
        working_area_throttles = 0
        for _ in range(10):
            result = db.run(workload.batch(30.0, start_time_s=db.clock_s))
            report = detector.inspect(db, result)
            filtered += report.filtered_at_cap
            working_area_throttles += sum(
                1 for t in report.throttles if not t.requires_restart
            )
        # Every spill round is suppressed (rule filter or escalation):
        # a tuning request cannot raise knobs that are already at cap.
        assert filtered > 0
        assert working_area_throttles == 0

    def test_uncapped_knobs_still_throttle(self):
        db = SimulatedDatabase("postgres", "m4.xlarge", 21.0, seed=1)
        detector = MemoryThrottleDetector("svc", seed=2)
        workload = AdulteratedTPCCWorkload(0.8, data_size_gb=21.0, seed=3)
        result = db.run(workload.batch(30.0))
        report = detector.inspect(db, result)
        assert report.filtered_at_cap == 0
        assert any(not t.requires_restart for t in report.throttles)
