"""Unit tests for restart-cost physics (cold cache, shutdown checkpoint)."""

import pytest

from repro.dbsim import SimulatedDatabase
from repro.workloads import TPCCWorkload, YCSBWorkload


class TestColdCache:
    def test_restart_cools_the_buffer_pool(self):
        """Post-restart windows run at a reduced hit ratio, then recover."""
        db = SimulatedDatabase("postgres", "m4.large", 8.0, seed=1)
        db.config = db.config.with_values({"shared_buffers": 2048})
        workload = YCSBWorkload(rps=500.0, data_size_gb=8.0, seed=2)
        warm = db.run(workload.batch(30.0, start_time_s=db.clock_s))
        db.apply_config(db.config, mode="restart")
        cold = db.run(workload.batch(30.0, start_time_s=db.clock_s))
        warming = db.run(workload.batch(30.0, start_time_s=db.clock_s))
        recovered = db.run(workload.batch(30.0, start_time_s=db.clock_s))
        assert cold.hit_ratio < warming.hit_ratio < recovered.hit_ratio
        assert recovered.hit_ratio == pytest.approx(warm.hit_ratio)

    def test_heal_also_cools(self):
        db = SimulatedDatabase("postgres", "m4.large", 8.0, seed=1)
        db.config = db.config.with_values({"shared_buffers": 2048})
        workload = YCSBWorkload(rps=500.0, data_size_gb=8.0, seed=2)
        warm = db.run(workload.batch(30.0, start_time_s=db.clock_s))
        db.crashed = True
        db.heal()
        cold = db.run(workload.batch(30.0, start_time_s=db.clock_s))
        assert cold.hit_ratio < warm.hit_ratio


class TestShutdownCheckpoint:
    def test_dirty_backlog_extends_restart_stall(self):
        """A write-heavy window before restart makes the restart longer."""
        clean = SimulatedDatabase("postgres", "m4.large", 26.0, seed=3)
        dirty = SimulatedDatabase("postgres", "m4.large", 26.0, seed=3)
        dirty.config = dirty.config.with_values({"shared_buffers": 4096})
        clean.config = dirty.config
        # Only the dirty instance accumulates a backlog first.
        dirty.run(TPCCWorkload(seed=4).batch(60.0))
        clean._pending_stall_s = 0.0
        dirty._pending_stall_s = 0.0
        clean.apply_config(clean.config, mode="restart")
        dirty.apply_config(dirty.config, mode="restart")
        assert dirty._pending_stall_s > clean._pending_stall_s

    def test_frequent_restarts_are_not_free(self):
        """Restarting every window must lose throughput vs not restarting."""
        steady = SimulatedDatabase("postgres", "m4.large", 26.0, seed=5)
        churner = SimulatedDatabase("postgres", "m4.large", 26.0, seed=5)
        workload_a = TPCCWorkload(rps=1500.0, seed=6)
        workload_b = TPCCWorkload(rps=1500.0, seed=6)
        steady_tps = []
        churn_tps = []
        for _ in range(6):
            steady_tps.append(
                steady.run(workload_a.batch(60.0, start_time_s=steady.clock_s)).throughput
            )
            churn_tps.append(
                churner.run(workload_b.batch(60.0, start_time_s=churner.clock_s)).throughput
            )
            churner.apply_config(churner.config, mode="restart")
        assert sum(churn_tps) < sum(steady_tps) * 0.9
