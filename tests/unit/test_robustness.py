"""Unit tests for the fault-injection layer and the hardened control plane:
fault plans, injection shims, circuit breakers, balancer health, director
fallback, DFA retries/deadlines, reconciler bounds, orchestrator adopt."""

import pytest

from repro.cloud import Provisioner
from repro.core.apply import (
    AlreadyRegistered,
    DataFederationAgent,
    Reconciler,
    ServiceOrchestrator,
    adapter_for,
)
from repro.core.apply.adapters import DatabaseAdapter, NodeApplyResult
from repro.core.director import (
    FALLBACK_SOURCE,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    ConfigDirector,
    LeastLoadedBalancer,
    NoHealthyTuners,
    TunerInstance,
)
from repro.dbsim import KnobConfiguration, ReplicatedService
from repro.dbsim.metrics import MetricsDelta
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultyAdapter,
    FaultyMonitoringAgent,
    FaultyTuner,
    strip_telemetry,
)
from repro.tuners import Recommendation, TuningRequest
from repro.tuners.base import Tuner, TunerUnavailable


class _StubTuner(Tuner):
    def __init__(self, catalog, cost_s=10.0, name="stub"):
        self.catalog = catalog
        self.cost_s = cost_s
        self.name = name

    def observe(self, sample):
        pass

    def recommend(self, request):
        config = request.config.with_values({"work_mem": 64})
        return Recommendation(request.instance_id, config, self.name)

    def recommendation_cost_s(self):
        return self.cost_s


class _DownTuner(_StubTuner):
    """A tuner whose deployment is permanently unreachable."""

    def recommend(self, request):
        raise TunerUnavailable("deployment down")


def _request(catalog, t=0.0, instance_id="svc-1"):
    return TuningRequest(
        instance_id, "w", KnobConfiguration(catalog), MetricsDelta({}), timestamp_s=t
    )


class _FlakyAdapter(DatabaseAdapter):
    """Fails the first *failures* applies transiently, then delegates."""

    def __init__(self, inner, failures):
        self.inner = inner
        self.flavor = inner.flavor
        self.remaining = failures
        self.calls = 0

    def apply(self, node, config, mode="reload"):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            return NodeApplyResult(
                ok=False, crashed=False, skipped_restart_required=(), error="flake"
            )
        return self.inner.apply(node, config, mode=mode)

    def read_config(self, node):
        return self.inner.read_config(node)


# -- fault plans -----------------------------------------------------------


class TestFaultPlan:
    def test_compile_is_deterministic(self):
        a = FaultPlan.compile(3, ["t0", "t1"], ["s0", "s1"])
        b = FaultPlan.compile(3, ["t0", "t1"], ["s0", "s1"])
        assert a.events == b.events
        assert len(a) == len(FaultKind)

    def test_different_seeds_differ(self):
        a = FaultPlan.compile(3, ["t0", "t1"], ["s0", "s1"])
        b = FaultPlan.compile(4, ["t0", "t1"], ["s0", "s1"])
        assert a.events != b.events

    def test_standard_kinds_pin_the_original_six(self):
        """The standard chaos profile compiles the pre-BAD_RECOMMENDATION
        kinds explicitly, so adding fault kinds never shifts its draws."""
        from repro.experiments.chaos_recovery import STANDARD_KINDS

        assert FaultKind.BAD_RECOMMENDATION not in STANDARD_KINDS
        assert len(STANDARD_KINDS) == 6
        plan = FaultPlan.compile(
            3, ["t0", "t1"], ["s0", "s1"], kinds=STANDARD_KINDS
        )
        assert all(e.kind in STANDARD_KINDS for e in plan.events)

    def test_compile_default_includes_bad_recommendation(self):
        plan = FaultPlan.compile(3, ["t0", "t1"], ["s0", "s1"])
        assert FaultPlan.compile(3, ["t0"], ["s0"]).by_kind(
            FaultKind.BAD_RECOMMENDATION
        )
        assert len(plan) == len(FaultKind)

    def test_events_sorted_by_start(self):
        plan = FaultPlan.compile(9, ["t0"], ["s0"], events_per_kind=2)
        starts = [e.start_s for e in plan.events]
        assert starts == sorted(starts)

    def test_active_window_and_wildcard(self):
        event = FaultEvent(FaultKind.TUNER_OUTAGE, "*", 100.0, 50.0)
        plan = FaultPlan((event,))
        assert plan.active(FaultKind.TUNER_OUTAGE, "anything", 100.0) is event
        assert plan.active(FaultKind.TUNER_OUTAGE, "anything", 149.9) is event
        assert plan.active(FaultKind.TUNER_OUTAGE, "anything", 150.0) is None
        assert plan.active(FaultKind.APPLY_CRASH, "anything", 120.0) is None

    def test_last_fault_end(self):
        plan = FaultPlan(
            (
                FaultEvent(FaultKind.TUNER_OUTAGE, "t0", 0.0, 10.0),
                FaultEvent(FaultKind.APPLY_CRASH, "s0", 50.0, 5.0),
            )
        )
        assert plan.last_fault_end_s() == 55.0
        assert FaultPlan(()).last_fault_end_s() == 0.0

    def test_compile_confined_to_fault_phase(self):
        plan = FaultPlan.compile(
            11, ["t0"], ["s0"], window_s=100.0, start_window=2, end_window=8
        )
        for event in plan.events:
            assert 200.0 <= event.start_s < 800.0
            assert event.end_s <= 800.0 + 1e-9


class TestFaultInjector:
    def test_disabled_injector_is_transparent(self):
        plan = FaultPlan(
            (FaultEvent(FaultKind.TUNER_OUTAGE, "t0", 0.0, 1e9),)
        )
        injector = FaultInjector(plan, enabled=False)
        assert injector.hit(FaultKind.TUNER_OUTAGE, "t0") is None
        assert injector.log == []

    def test_hit_logs_delivery(self):
        plan = FaultPlan(
            (FaultEvent(FaultKind.APPLY_CRASH, "s0", 10.0, 10.0),)
        )
        injector = FaultInjector(plan)
        assert injector.hit(FaultKind.APPLY_CRASH, "s0") is None  # t=0
        injector.advance(15.0)
        assert injector.hit(FaultKind.APPLY_CRASH, "s0") is not None
        assert injector.delivered(FaultKind.APPLY_CRASH) == 1
        assert injector.delivered(FaultKind.TUNER_OUTAGE) == 0


# -- injection shims -------------------------------------------------------


class TestFaultyTuner:
    def _shimmed(self, catalog, kind, magnitude=1.0):
        plan = FaultPlan((FaultEvent(kind, "t0", 0.0, 100.0, magnitude),))
        injector = FaultInjector(plan)
        return FaultyTuner(_StubTuner(catalog), injector, "t0"), injector

    def test_outage_raises_typed_error(self, pg_catalog):
        tuner, _ = self._shimmed(pg_catalog, FaultKind.TUNER_OUTAGE)
        with pytest.raises(TunerUnavailable):
            tuner.recommend(_request(pg_catalog))

    def test_outage_over_passes_through(self, pg_catalog):
        tuner, injector = self._shimmed(pg_catalog, FaultKind.TUNER_OUTAGE)
        injector.advance(500.0)
        rec = tuner.recommend(_request(pg_catalog))
        assert rec.source == "stub"

    def test_slow_recommendation_inflates_cost(self, pg_catalog):
        tuner, injector = self._shimmed(
            pg_catalog, FaultKind.SLOW_RECOMMENDATION, magnitude=5.0
        )
        assert tuner.recommendation_cost_s() == 50.0
        injector.advance(500.0)
        assert tuner.recommendation_cost_s() == 10.0


class TestFaultyAdapter:
    def _service(self):
        return ReplicatedService("postgres", "m4.large", 20.0, replicas=1, seed=3)

    def test_transient_failure_leaves_node_untouched(self):
        service = self._service()
        plan = FaultPlan(
            (FaultEvent(FaultKind.APPLY_FAILURE, "svc", 0.0, 100.0),)
        )
        adapter = FaultyAdapter(adapter_for("postgres"), FaultInjector(plan), "svc")
        before = service.master.config
        result = adapter.apply(
            service.master, before.with_values({"work_mem": 64})
        )
        assert not result.ok and not result.crashed
        assert service.master.config == before

    def test_crash_mid_apply_lands_config_and_downs_node(self):
        service = self._service()
        plan = FaultPlan((FaultEvent(FaultKind.APPLY_CRASH, "svc", 0.0, 100.0),))
        adapter = FaultyAdapter(adapter_for("postgres"), FaultInjector(plan), "svc")
        target = service.master.config.with_values({"work_mem": 64})
        result = adapter.apply(service.master, target)
        assert result.crashed and not result.ok
        assert service.master.crashed
        assert service.master.config["work_mem"] == 64  # config landed first

    def test_register_service_scopes_targets(self):
        service_a, service_b = self._service(), self._service()
        plan = FaultPlan((FaultEvent(FaultKind.APPLY_FAILURE, "a", 0.0, 100.0),))
        adapter = FaultyAdapter(adapter_for("postgres"), FaultInjector(plan))
        adapter.register_service("a", service_a.nodes)
        adapter.register_service("b", service_b.nodes)
        target = service_a.master.config.with_values({"work_mem": 64})
        assert not adapter.apply(service_a.master, target).ok
        assert adapter.apply(service_b.master, target).ok


class TestTelemetryGap:
    def test_strip_telemetry_empties_disk_series(self, pg_db, tpcc):
        result = pg_db.run(tpcc.batch(20.0))
        stripped = strip_telemetry(result)
        assert len(stripped.data_disk.write_latency) == 0
        assert len(stripped.wal_disk.write_latency) == 0
        assert stripped.throughput == result.throughput

    def test_gapped_agent_drops_ingest_and_strips(self, pg_db, tpcc):
        plan = FaultPlan(
            (FaultEvent(FaultKind.TELEMETRY_GAP, "db0", 0.0, 100.0),)
        )
        agent = FaultyMonitoringAgent("db0", FaultInjector(plan))
        result = pg_db.run(tpcc.batch(20.0))
        agent.ingest(result)
        assert agent.gap_windows == 1
        assert len(agent.write_latency) == 0
        assert len(agent.filter_result(result).data_disk.write_latency) == 0

    def test_tde_degrades_on_missing_telemetry(self, pg_db, tpcc):
        from repro.core.tde import ThrottlingDetectionEngine

        tde = ThrottlingDetectionEngine("db0", pg_db)
        result = pg_db.run(tpcc.batch(20.0))
        healthy = tde.inspect(result)
        assert not healthy.degraded
        degraded = tde.inspect(strip_telemetry(result))
        assert degraded.degraded  # bgwriter skipped, no exception raised


# -- circuit breaker -------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(policy=BreakerPolicy(failure_threshold=3))
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(1.0)
        assert breaker.record_failure(2.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_tripped == 1
        assert not breaker.allows_requests

    def test_success_resets_count(self):
        breaker = CircuitBreaker(policy=BreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success()
        assert not breaker.record_failure(1.0)  # count restarted

    def test_half_open_after_cooldown_then_close(self):
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=1, cooldown_s=100.0)
        )
        breaker.record_failure(0.0)
        assert not breaker.try_half_open(50.0)
        assert breaker.try_half_open(100.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=3, cooldown_s=100.0)
        )
        for t in range(3):
            breaker.record_failure(float(t))
        breaker.try_half_open(200.0)
        assert breaker.record_failure(201.0)  # single trial failure re-trips
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_tripped == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_s=0.0)


class TestBalancerHealth:
    def test_pick_skips_unhealthy(self, pg_catalog):
        a = TunerInstance("a", _StubTuner(pg_catalog, cost_s=1.0))
        b = TunerInstance("b", _StubTuner(pg_catalog, cost_s=100.0))
        balancer = LeastLoadedBalancer([a, b])
        balancer.set_health("a", False)
        assert balancer.pick().instance_id == "b"

    def test_no_healthy_tuners_typed_error(self, pg_catalog):
        balancer = LeastLoadedBalancer(
            [TunerInstance("a", _StubTuner(pg_catalog))]
        )
        balancer.set_health("a", False)
        with pytest.raises(NoHealthyTuners):
            balancer.pick()

    def test_exclusion_exhaustion_raises(self, pg_catalog):
        balancer = LeastLoadedBalancer(
            [TunerInstance("a", _StubTuner(pg_catalog))]
        )
        with pytest.raises(NoHealthyTuners):
            balancer.pick(exclude={"a"})

    def test_unknown_id_keyerror(self, pg_catalog):
        balancer = LeastLoadedBalancer(
            [TunerInstance("a", _StubTuner(pg_catalog))]
        )
        with pytest.raises(KeyError):
            balancer.set_health("nope", False)


# -- director failover and fallback ----------------------------------------


class TestDirectorFailover:
    def test_failover_to_second_instance(self, pg_catalog):
        down = TunerInstance("down", _DownTuner(pg_catalog, cost_s=1.0))
        up = TunerInstance("up", _StubTuner(pg_catalog, cost_s=100.0))
        director = ConfigDirector(LeastLoadedBalancer([down, up]))
        split = director.handle_tuning_request(_request(pg_catalog))
        assert split.recommendation.source == "stub"
        # The failed attempt was refunded on the down instance.
        assert down.outstanding_s == 0.0
        assert down.requests_served == 0
        assert up.requests_served == 1

    def test_breaker_trips_and_removes_from_rotation(self, pg_catalog):
        down = TunerInstance("down", _DownTuner(pg_catalog, cost_s=1.0))
        up = TunerInstance("up", _StubTuner(pg_catalog, cost_s=100.0))
        director = ConfigDirector(
            LeastLoadedBalancer([down, up]),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_s=600.0),
        )
        director.handle_tuning_request(_request(pg_catalog, t=0.0))
        director.handle_tuning_request(_request(pg_catalog, t=10.0))
        assert director.breaker_trips() == 1
        assert not down.healthy
        # While open, requests route straight to the healthy instance.
        split = director.handle_tuning_request(_request(pg_catalog, t=20.0))
        assert split.recommendation.source == "stub"

    def test_half_open_readmission_after_cooldown(self, pg_catalog):
        down = TunerInstance("down", _DownTuner(pg_catalog, cost_s=1.0))
        up = TunerInstance("up", _StubTuner(pg_catalog, cost_s=100.0))
        director = ConfigDirector(
            LeastLoadedBalancer([down, up]),
            breaker_policy=BreakerPolicy(failure_threshold=1, cooldown_s=100.0),
        )
        director.handle_tuning_request(_request(pg_catalog, t=0.0))
        assert not down.healthy
        director.handle_tuning_request(_request(pg_catalog, t=150.0))
        # Re-admitted at half-open, failed its trial, straight back out.
        assert not down.healthy
        assert director.breaker_trips() == 2

    def test_fallback_serves_last_known_good(self, pg_catalog):
        good = TunerInstance("good", _StubTuner(pg_catalog, cost_s=1.0))
        director = ConfigDirector(
            LeastLoadedBalancer([good]),
            breaker_policy=BreakerPolicy(failure_threshold=1, cooldown_s=1e9),
        )
        split = director.handle_tuning_request(_request(pg_catalog, t=0.0))
        assert split.recommendation.config["work_mem"] == 64
        # Kill the only tuner: next answer comes from the repository.
        good.tuner = _DownTuner(pg_catalog)
        split = director.handle_tuning_request(_request(pg_catalog, t=10.0))
        assert split.recommendation.source == FALLBACK_SOURCE
        assert split.recommendation.config["work_mem"] == 64
        assert director.fallbacks_served == 1

    def test_fallback_with_empty_repository_holds_current(self, pg_catalog):
        down = TunerInstance("down", _DownTuner(pg_catalog))
        director = ConfigDirector(
            LeastLoadedBalancer([down]),
            breaker_policy=BreakerPolicy(failure_threshold=1, cooldown_s=1e9),
        )
        request = _request(pg_catalog, t=0.0)
        split = director.handle_tuning_request(request)
        assert split.recommendation.source == FALLBACK_SOURCE
        assert split.recommendation.config == request.config
        # Fallbacks are not stored as new versions (they add no information).
        assert director.configs.latest("svc-1") is None


# -- DFA retries and deadlines ---------------------------------------------


class TestDFARetries:
    def _service(self):
        return ReplicatedService("postgres", "m4.large", 20.0, replicas=2, seed=5)

    def test_transient_failure_retried_to_success(self):
        service = self._service()
        adapter = _FlakyAdapter(adapter_for("postgres"), failures=2)
        dfa = DataFederationAgent(adapter=adapter, max_attempts=3, backoff_s=2.0)
        report = dfa.apply(
            service, service.config.with_values({"work_mem": 64})
        )
        assert report.applied
        assert report.attempts == 5  # 3 on slave0 (2 fail + 1 ok), 1 + 1
        assert report.backoff_s == 6.0  # 2 + 4
        assert service.configs_consistent()

    def test_attempt_bound_exhaustion_rejects_and_rolls_back(self):
        service = self._service()
        before = service.master.config
        adapter = _FlakyAdapter(adapter_for("postgres"), failures=100)
        dfa = DataFederationAgent(adapter=adapter, max_attempts=3)
        report = dfa.apply(service, before.with_values({"work_mem": 64}))
        assert not report.applied
        assert report.rejected_at == "slave0"
        assert report.deadline_exceeded
        assert report.attempts == 3
        assert all(node.config == before for node in service.nodes)

    def test_deadline_bounds_total_backoff(self):
        service = self._service()
        adapter = _FlakyAdapter(adapter_for("postgres"), failures=100)
        dfa = DataFederationAgent(
            adapter=adapter, max_attempts=50, backoff_s=8.0, apply_deadline_s=20.0
        )
        report = dfa.apply(
            service, service.config.with_values({"work_mem": 64})
        )
        assert not report.applied
        # Backoff stopped growing once it crossed the deadline.
        assert report.backoff_s >= 20.0
        assert report.attempts < 50

    def test_crash_is_never_retried(self):
        service = self._service()
        plan = FaultPlan((FaultEvent(FaultKind.APPLY_CRASH, "svc", 0.0, 100.0),))
        adapter = FaultyAdapter(
            adapter_for("postgres"), FaultInjector(plan), "svc"
        )
        dfa = DataFederationAgent(adapter=adapter, max_attempts=5)
        report = dfa.apply(
            service, service.config.with_values({"work_mem": 64})
        )
        assert not report.applied
        assert report.rejected_at == "slave0"
        assert not report.deadline_exceeded
        assert report.attempts == 1  # §4: a crash is a definitive rejection
        assert report.healed_slaves == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            DataFederationAgent(max_attempts=0)
        with pytest.raises(ValueError):
            DataFederationAgent(backoff_s=0.0)
        with pytest.raises(ValueError):
            DataFederationAgent(apply_deadline_s=-1.0)


# -- reconciler bounds -----------------------------------------------------


class TestReconcilerBounds:
    def _drifted(self):
        provisioner = Provisioner(seed=2)
        deployment = provisioner.provision(replicas=1)
        orchestrator = ServiceOrchestrator()
        orchestrator.register(deployment)
        service = deployment.service
        service.master.apply_config(
            service.master.config.with_values({"work_mem": 96}), mode="reload"
        )
        return orchestrator, deployment

    def test_restore_counts_nodes(self):
        orchestrator, deployment = self._drifted()
        reconciler = Reconciler(orchestrator, watcher_timeout_s=60.0)
        service = deployment.service
        reconciler.tick(deployment.instance_id, service, 0.0)
        action = reconciler.tick(deployment.instance_id, service, 120.0)
        assert action.reconciled
        assert action.nodes_restored == 2
        assert action.failed_nodes == ()
        assert service.configs_consistent()

    def test_unreachable_node_reported_not_spun_on(self):
        orchestrator, deployment = self._drifted()
        adapter = _FlakyAdapter(adapter_for("postgres"), failures=10_000)
        reconciler = Reconciler(
            orchestrator,
            watcher_timeout_s=60.0,
            adapter=adapter,
            max_attempts_per_node=2,
        )
        service = deployment.service
        reconciler.tick(deployment.instance_id, service, 0.0)
        action = reconciler.tick(deployment.instance_id, service, 120.0)
        assert action.drift_detected and not action.reconciled
        assert action.failed_nodes == (0, 1)
        # Hard bound: exactly max_attempts_per_node calls per node.
        assert adapter.calls == 4

    def test_partial_failure_retries_next_tick(self):
        orchestrator, deployment = self._drifted()
        adapter = _FlakyAdapter(adapter_for("postgres"), failures=4)
        reconciler = Reconciler(
            orchestrator,
            watcher_timeout_s=60.0,
            adapter=adapter,
            max_attempts_per_node=2,
        )
        service = deployment.service
        reconciler.tick(deployment.instance_id, service, 0.0)
        failed = reconciler.tick(deployment.instance_id, service, 120.0)
        assert failed.failed_nodes == (0, 1)
        # Next tick the flakes are exhausted and the restore completes
        # immediately (the drift clock kept running, no fresh timeout).
        healed = reconciler.tick(deployment.instance_id, service, 180.0)
        assert healed.reconciled
        assert service.configs_consistent()

    def test_validation(self):
        orchestrator = ServiceOrchestrator()
        with pytest.raises(ValueError):
            Reconciler(orchestrator, max_attempts_per_node=0)


# -- orchestrator registration ---------------------------------------------


class TestOrchestratorRegistration:
    def test_double_register_raises(self):
        provisioner = Provisioner(seed=1)
        deployment = provisioner.provision()
        orchestrator = ServiceOrchestrator()
        orchestrator.register(deployment)
        with pytest.raises(AlreadyRegistered):
            orchestrator.register(deployment)

    def test_register_preserves_persisted_config_on_error(self):
        provisioner = Provisioner(seed=1)
        deployment = provisioner.provision()
        orchestrator = ServiceOrchestrator()
        orchestrator.register(deployment)
        tuned = deployment.service.master.config.with_values({"work_mem": 96})
        orchestrator.persist_config(deployment.instance_id, tuned)
        with pytest.raises(AlreadyRegistered):
            orchestrator.register(deployment)
        assert (
            orchestrator.persisted_config(deployment.instance_id) == tuned
        )

    def test_adopt_is_explicit_re_registration(self):
        provisioner = Provisioner(seed=1)
        deployment = provisioner.provision()
        orchestrator = ServiceOrchestrator()
        orchestrator.register(deployment)
        tuned = deployment.service.master.config.with_values({"work_mem": 96})
        orchestrator.persist_config(deployment.instance_id, tuned)
        orchestrator.adopt(deployment)
        # Adoption resets persistence to the master's live config.
        assert (
            orchestrator.persisted_config(deployment.instance_id)
            == deployment.service.master.config
        )
