"""Unit tests for the CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out and "fig15" in out

    def test_run_fig02(self, capsys):
        assert main(["run", "fig02"]) == 0
        out = capsys.readouterr().out
        assert "tpcc" in out and "wikipedia" in out

    def test_run_fig03_with_args(self, capsys):
        assert main(["run", "fig03", "--windows", "3", "--adulteration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4

    def test_run_fig08(self, capsys):
        assert main(["run", "fig08"]) == 0
        assert "daily total" in capsys.readouterr().out

    def test_chaos_quick(self, capsys):
        args = ["chaos", "--quick", "--seed", "3", "--windows", "8", "--fleet-size", "1"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "chaos recovery report" in first
        assert "verdict:" in first
        # Same seed and flags must reproduce the report byte for byte.
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_chaos_adversarial_profile(self, capsys):
        args = [
            "chaos", "--profile", "adversarial", "--quick",
            "--seed", "3", "--windows", "8", "--fleet-size", "1",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "adversarial chaos report" in first
        assert "governor policy:" in first
        assert "safety: violations_clamped=" in first
        assert "verdict:" in first
        # Same seed and flags must reproduce the report byte for byte.
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_trace_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "chaos" in out and "fleet" in out and "--profile" in out

    def test_trace_chaos_writes_deterministic_artifacts(self, capsys, tmp_path):
        out_base = tmp_path / "trace"
        args = [
            "trace",
            "chaos",
            "--seed",
            "3",
            "--out",
            str(out_base),
            "--profile",
            "--metrics",
        ]
        assert main(args) == 0
        first_out = capsys.readouterr().out
        assert "trace: experiment=chaos seed=3" in first_out
        assert "jsonl sha256:" in first_out
        assert "sim_cum_s" in first_out  # --profile table
        assert "# TYPE" in first_out  # --metrics exposition
        jsonl = (tmp_path / "trace.jsonl").read_text()
        chrome = (tmp_path / "trace.chrome.json").read_text()
        assert jsonl.startswith('{"')
        assert '"traceEvents"' in chrome
        # Same seed must reproduce both artifacts byte for byte.
        rerun = tmp_path / "rerun"
        args[5] = str(rerun / "trace")
        rerun.mkdir()
        assert main(args) == 0
        capsys.readouterr()
        assert (rerun / "trace.jsonl").read_text() == jsonl
        assert (rerun / "trace.chrome.json").read_text() == chrome

    def test_trace_default_out_lands_in_artifacts_dir(
        self, capsys, tmp_path, monkeypatch
    ):
        # No --out: artifacts go under artifacts/, never the repo root,
        # and the directory is created on demand.
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "chaos", "--seed", "3"]) == 0
        capsys.readouterr()
        assert (tmp_path / "artifacts" / "trace.jsonl").is_file()
        assert (tmp_path / "artifacts" / "trace.chrome.json").is_file()
        assert not (tmp_path / "trace.jsonl").exists()

    def test_trace_out_creates_parent_directories(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        out_base = tmp_path / "deep" / "nested" / "trace"
        assert main(["trace", "chaos", "--out", str(out_base)]) == 0
        capsys.readouterr()
        assert out_base.with_suffix(".jsonl").is_file()

    def test_trace_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "fig99"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
