"""Unit tests for coordinate-descent Lasso and the path ranking."""

import numpy as np
import pytest

from repro.tuners.lasso import lasso_coordinate_descent, lasso_path_ranking


def _design(n=120, d=6, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    # y depends strongly on feature 0, weakly on feature 2, not on others.
    y = 5.0 * x[:, 0] + 0.8 * x[:, 2] + rng.normal(0, 0.1, size=n)
    return x, y


class TestCoordinateDescent:
    def test_huge_alpha_zeroes_all(self):
        x, y = _design()
        w = lasso_coordinate_descent(x, y, alpha=100.0)
        assert np.allclose(w, 0.0)

    def test_small_alpha_recovers_support(self):
        x, y = _design()
        w = lasso_coordinate_descent(x, y, alpha=0.01)
        assert abs(w[0]) > abs(w[1])
        assert abs(w[0]) > 0.5

    def test_sparsity_increases_with_alpha(self):
        x, y = _design()
        few = np.sum(np.abs(lasso_coordinate_descent(x, y, 0.5)) > 1e-9)
        many = np.sum(np.abs(lasso_coordinate_descent(x, y, 0.001)) > 1e-9)
        assert few <= many

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            lasso_coordinate_descent(np.zeros((3, 2)), np.zeros(4), 0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lasso_coordinate_descent(np.zeros((0, 2)), np.zeros(0), 0.1)

    def test_constant_feature_ignored(self):
        x, y = _design()
        x[:, 3] = 7.0
        w = lasso_coordinate_descent(x, y, alpha=0.01)
        assert w[3] == 0.0


class TestPathRanking:
    def test_strongest_feature_first(self):
        x, y = _design()
        order = lasso_path_ranking(x, y)
        assert order[0] == 0

    def test_secondary_feature_before_noise(self):
        x, y = _design()
        order = lasso_path_ranking(x, y)
        assert order.index(2) < order.index(1)

    def test_permutation_of_all_features(self):
        x, y = _design(d=5)
        order = lasso_path_ranking(x, y)
        assert sorted(order) == list(range(5))

    def test_deterministic(self):
        x, y = _design()
        assert lasso_path_ranking(x, y) == lasso_path_ranking(x, y)
