"""Unit tests for the surrogate screening tier.

Three concerns:

- mechanics: policy validation, k-center coreset selection, the
  coreset GP's posterior, the screen's cache/abstain behaviour;
- **parity/regret**: across seeded fixture repositories built by the
  real offline-training pipeline, the surrogate's shortlist must retain
  the exact GP-UCB argmax at least 90% of the time — the guarantee the
  warm-path speedup is allowed to cost;
- **flag-off byte parity**: with no policy wired, a quick fig09 window
  must render byte-identically to the pre-surrogate golden capture
  (``tests/golden/fig09_quick.txt``).
"""

import pathlib

import numpy as np
import pytest

from repro.cli import main
from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners.base import TuningRequest
from repro.tuners.gpr import GaussianProcessRegressor
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.surrogate import (
    CoresetGPR,
    SurrogatePolicy,
    SurrogateScreen,
    kcenter_coreset,
)
from repro.workloads.tpcc import TPCCWorkload

GOLDEN = pathlib.Path(__file__).parents[1] / "golden" / "fig09_quick.txt"

#: Seeds for the retention fixture sweep; 90% of these repositories must
#: keep the exact argmax inside the surrogate shortlist.
RETENTION_SEEDS = tuple(range(10))
RETENTION_FLOOR = 0.9


def _toy_data(seed: int = 0, n: int = 40, d: int = 5):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(n, d))
    y = np.sin(3.0 * x[:, 0]) + 0.3 * x[:, 1] + rng.normal(0.0, 0.05, n)
    return x, y


class TestPolicy:
    def test_defaults_valid(self):
        policy = SurrogatePolicy()
        assert policy.shortlist_size == 16
        assert policy.max_coreset == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shortlist_size": 0},
            {"max_coreset": 1},
            {"min_train_samples": 3},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SurrogatePolicy(**kwargs)


class TestKCenterCoreset:
    def test_sorted_unique_and_bounded(self):
        x, y = _toy_data()
        keep = kcenter_coreset(x, y, 8)
        assert len(keep) == 8
        assert list(keep) == sorted(set(keep.tolist()))

    def test_contains_best_objective_row(self):
        x, y = _toy_data(seed=4)
        keep = kcenter_coreset(x, y, 6)
        assert int(np.argmax(y)) in keep

    def test_m_at_least_n_keeps_everything(self):
        x, y = _toy_data(n=5)
        assert kcenter_coreset(x, y, 16).tolist() == [0, 1, 2, 3, 4]

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            kcenter_coreset(np.empty((0, 3)), np.empty(0), 4)
        with pytest.raises(ValueError):
            kcenter_coreset(np.zeros((3, 2)), np.zeros(2), 2)


class TestCoresetGPR:
    def test_matching_copies_exact_kernel(self):
        gpr = GaussianProcessRegressor(
            length_scale=0.4, signal_variance=1.3, noise_variance=0.07
        )
        model = CoresetGPR.matching(gpr, max_coreset=12)
        assert model.length_scale == gpr.length_scale
        assert model.signal_variance == gpr.signal_variance
        assert model.noise_variance == gpr.noise_variance
        assert model.max_coreset == 12

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CoresetGPR().predict(np.zeros((1, 3)))

    def test_coreset_capped(self):
        x, y = _toy_data(n=50)
        model = CoresetGPR(max_coreset=10).fit(x, y)
        assert model.is_fitted
        assert model.coreset_size == 10

    def test_interpolates_near_training_points(self):
        # With every sample in the coreset the model is an exact GP on
        # the full data; its posterior mean at training rows should sit
        # near the observations (noise keeps it from matching exactly).
        x, y = _toy_data(n=12)
        model = CoresetGPR(max_coreset=16).fit(x, y)
        mean = model.predict(x)
        assert float(np.mean(np.abs(mean - y))) < 0.2

    def test_ucb_is_mean_plus_kappa_std(self):
        x, y = _toy_data()
        model = CoresetGPR().fit(x, y)
        query = np.random.default_rng(1).uniform(0.0, 1.0, size=(7, x.shape[1]))
        mean, std = model.predict(query, return_std=True)
        np.testing.assert_allclose(
            model.ucb(query, kappa=1.7), mean + 1.7 * std, rtol=1e-12
        )


class TestScreenCache:
    def _fitted(self, seed=0):
        x, y = _toy_data(seed=seed)
        return GaussianProcessRegressor().fit(x, y), x, y

    def test_abstains_without_gpr_or_candidates_or_data(self):
        screen = SurrogateScreen(SurrogatePolicy(min_train_samples=4))
        gpr, x, y = self._fitted()
        candidates = np.random.default_rng(2).uniform(0, 1, size=(30, x.shape[1]))
        assert screen.shortlist("w", candidates, None, x, y, 0.5, 1) is None
        assert (
            screen.shortlist("w", candidates[:0], gpr, x, y, 0.5, 1) is None
        )
        assert (
            screen.shortlist("w", candidates, gpr, x[:3], y[:3], 0.5, 1) is None
        )
        assert screen.shortlists == 0

    def test_shortlist_is_subset_and_sized(self):
        screen = SurrogateScreen(SurrogatePolicy(shortlist_size=8))
        gpr, x, y = self._fitted()
        candidates = np.random.default_rng(3).uniform(0, 1, size=(40, x.shape[1]))
        keep = screen.shortlist("w", candidates, gpr, x, y, 0.5, 1)
        assert keep is not None and len(keep) == 8
        assert len(set(keep.tolist())) == 8
        assert all(0 <= i < 40 for i in keep)

    def test_cache_hit_until_version_bump(self):
        screen = SurrogateScreen(SurrogatePolicy())
        gpr, x, y = self._fitted()
        candidates = np.random.default_rng(4).uniform(0, 1, size=(50, x.shape[1]))
        screen.shortlist("w", candidates, gpr, x, y, 0.5, version=7)
        screen.shortlist("w", candidates, gpr, x, y, 0.5, version=7)
        assert (screen.retrains, screen.hits) == (1, 1)
        assert screen.model_version("w") == 7
        screen.shortlist("w", candidates, gpr, x, y, 0.5, version=8)
        assert (screen.retrains, screen.hits) == (2, 1)
        assert screen.model_version("w") == 8

    def test_models_keyed_per_workload(self):
        screen = SurrogateScreen(SurrogatePolicy())
        gpr, x, y = self._fitted()
        candidates = np.random.default_rng(5).uniform(0, 1, size=(30, x.shape[1]))
        screen.shortlist("a", candidates, gpr, x, y, 0.5, 1)
        screen.shortlist("b", candidates, gpr, x, y, 0.5, 1)
        assert screen.retrains == 2
        assert screen.model_version("a") == 1
        assert screen.model_version("b") == 1


def _fixture_repository(seed: int):
    """A seeded repository built by the real offline-training pipeline."""
    catalog = postgres_catalog()
    repository = offline_train(
        catalog,
        [TPCCWorkload(rps=500.0, data_size_gb=12.0, seed=seed)],
        n_configs=24,
        seed=seed + 1,
    )
    return catalog, repository


class TestArgmaxRetention:
    def test_shortlist_retains_exact_argmax(self):
        """Exact GP-UCB argmax survives the screen on >= 90% of fixtures."""
        policy = SurrogatePolicy()
        retained = 0
        for seed in RETENTION_SEEDS:
            catalog, repository = _fixture_repository(seed)
            tuner = OtterTuneTuner(catalog, repository, seed=seed + 2)
            workload_id = repository.workload_ids()[0]
            sample = repository.samples(workload_id)[0]
            request = TuningRequest(
                "db0", workload_id, sample.config, sample.metrics, timestamp_s=0.0
            )
            gpr, x, y = tuner._fitted_surrogate(request)
            assert gpr is not None
            raw = tuner._raw_candidates(x, y)
            exact_best = int(np.argmax(gpr.ucb(raw, kappa=tuner.kappa)))
            keep = SurrogateScreen(policy).shortlist(
                workload_id, raw, gpr, x, y, tuner.kappa, repository.version
            )
            assert keep is not None and len(keep) <= policy.shortlist_size
            if exact_best in keep:
                retained += 1
        assert retained >= RETENTION_FLOOR * len(RETENTION_SEEDS), (
            f"argmax retained on only {retained}/{len(RETENTION_SEEDS)} "
            f"fixtures (floor {RETENTION_FLOOR:.0%})"
        )

    def test_flag_on_recommendations_deterministic(self):
        """Two identically built flag-on tuners recommend identically."""
        recs = []
        for _ in range(2):
            catalog, repository = _fixture_repository(3)
            tuner = OtterTuneTuner(
                catalog, repository, seed=5, surrogate=SurrogatePolicy()
            )
            workload_id = repository.workload_ids()[0]
            sample = repository.samples(workload_id)[0]
            recs.append(
                tuner.recommend(
                    TuningRequest(
                        "db0",
                        workload_id,
                        sample.config,
                        sample.metrics,
                        timestamp_s=0.0,
                    )
                )
            )
        assert recs[0].config.as_dict() == recs[1].config.as_dict()
        assert recs[0].expected_improvement == recs[1].expected_improvement

    def test_configure_surrogate_arms_the_screen(self):
        catalog, repository = _fixture_repository(2)
        tuner = OtterTuneTuner(catalog, repository, seed=9)
        assert tuner.surrogate_screen is None
        assert tuner.configure_surrogate(SurrogatePolicy()) is True
        assert tuner.surrogate_screen is not None
        workload_id = repository.workload_ids()[0]
        sample = repository.samples(workload_id)[0]
        request = TuningRequest(
            "db0", workload_id, sample.config, sample.metrics, timestamp_s=0.0
        )
        tuner.recommend(request)
        tuner.recommend(request)
        screen = tuner.surrogate_screen
        assert screen.shortlists == 2
        assert (screen.retrains, screen.hits) == (1, 1)


class TestFlagOffGoldenParity:
    def test_fig09_quick_window_matches_pre_surrogate_golden(self, capsys):
        """Flag-off output is byte-identical to the pre-PR capture.

        ``tests/golden/fig09_quick.txt`` was rendered by the commit
        before the surrogate tier existed; the default (no
        ``--surrogate``) path must reproduce it exactly.
        """
        assert (
            main(["run", "fig09", "--fleet-size", "4", "--hours", "1",
                  "--seed", "3"])
            == 0
        )
        assert capsys.readouterr().out == GOLDEN.read_text()
