"""Unit tests for the learned (rule-free) throttle detector (§7)."""

import pytest

from repro.core.tde import (
    LabelledWindow,
    LearnedThrottleDetector,
    ThrottlingDetectionEngine,
)
from repro.dbsim import KnobClass, SimulatedDatabase
from repro.tuners import WorkloadRepository
from repro.workloads import AdulteratedTPCCWorkload, YCSBWorkload


def _collect_windows(n_each=8, seed=0):
    """Labelled windows from a spilling and a quiet deployment."""
    windows = []
    spilly = SimulatedDatabase("postgres", "m4.xlarge", 21.0, seed=seed)
    tde = ThrottlingDetectionEngine("svc", spilly, WorkloadRepository(), seed=seed)
    workload = AdulteratedTPCCWorkload(0.8, data_size_gb=21.0, seed=seed + 1)
    for _ in range(n_each):
        result = spilly.run(workload.batch(30.0, start_time_s=spilly.clock_s))
        windows.append(LearnedThrottleDetector.shadow(tde, result))

    quiet = SimulatedDatabase("postgres", "m4.xlarge", 2.0, seed=seed + 2)
    quiet.config = quiet.config.with_values(
        {"shared_buffers": 2048, "work_mem": 512}
    )
    quiet_tde = ThrottlingDetectionEngine(
        "svc", quiet, WorkloadRepository(),
        enabled_classes={KnobClass.MEMORY}, seed=seed + 3,
    )
    calm = YCSBWorkload(rps=200.0, data_size_gb=2.0, seed=seed + 4)
    for _ in range(n_each):
        result = quiet.run(calm.batch(30.0, start_time_s=quiet.clock_s))
        windows.append(LearnedThrottleDetector.shadow(quiet_tde, result))
    return windows


class TestLearnedDetector:
    def test_learns_memory_class_from_metrics(self):
        windows = _collect_windows(n_each=10, seed=0)
        detector = LearnedThrottleDetector(seed=1)
        loss = detector.fit(windows, epochs=200)
        assert loss < 0.4
        scores = detector.score(windows)
        assert scores["memory"] >= 0.9

    def test_predicts_spill_window_and_quiet_window(self):
        windows = _collect_windows(n_each=10, seed=0)
        detector = LearnedThrottleDetector(seed=1)
        detector.fit(windows, epochs=200)
        spill_window = windows[0]
        quiet_window = windows[-1]
        assert KnobClass.MEMORY in detector.predict_classes(spill_window.metrics)
        assert KnobClass.MEMORY not in detector.predict_classes(quiet_window.metrics)

    def test_inspect_emits_throttles(self):
        windows = _collect_windows(n_each=10, seed=0)
        detector = LearnedThrottleDetector(seed=1)
        detector.fit(windows, epochs=200)
        db = SimulatedDatabase("postgres", "m4.xlarge", 21.0, seed=9)
        workload = AdulteratedTPCCWorkload(0.8, data_size_gb=21.0, seed=10)
        result = db.run(workload.batch(30.0))
        throttles = detector.inspect(result)
        assert any(t.knob_class is KnobClass.MEMORY for t in throttles)
        assert all(t.reason == "learned detector prediction" for t in throttles)

    def test_predict_before_fit_rejected(self):
        detector = LearnedThrottleDetector(seed=1)
        from repro.dbsim.metrics import MetricsDelta

        with pytest.raises(RuntimeError):
            detector.predict_classes(MetricsDelta({}))

    def test_too_few_windows_rejected(self):
        detector = LearnedThrottleDetector(seed=1)
        with pytest.raises(ValueError):
            detector.fit(_collect_windows(n_each=1, seed=0)[:2])
