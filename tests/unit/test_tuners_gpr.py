"""Unit tests for the from-scratch Gaussian process regressor."""

import numpy as np
import pytest

from repro.tuners.gpr import GaussianProcessRegressor


def _wave(n=40, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 2))
    y = np.sin(4 * x[:, 0]) + 0.5 * x[:, 1]
    return x, y


class TestFit:
    def test_interpolates_training_points(self):
        x, y = _wave()
        gpr = GaussianProcessRegressor(noise_variance=1e-4).fit(x, y)
        pred = gpr.predict(x)
        assert np.max(np.abs(pred - y)) < 0.05

    def test_generalises_smooth_function(self):
        x, y = _wave(n=80)
        gpr = GaussianProcessRegressor().fit(x, y)
        x_test, y_test = _wave(n=20, seed=99)
        pred = gpr.predict(x_test)
        assert np.mean(np.abs(pred - y_test)) < 0.25

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(length_scale=0.0)

    def test_constant_targets_handled(self):
        x = np.random.default_rng(0).uniform(0, 1, size=(10, 2))
        gpr = GaussianProcessRegressor().fit(x, np.full(10, 5.0))
        assert gpr.predict(x)[0] == pytest.approx(5.0, abs=0.1)


class TestUncertainty:
    def test_std_small_at_training_points(self):
        x, y = _wave()
        gpr = GaussianProcessRegressor(noise_variance=1e-4).fit(x, y)
        _, std_train = gpr.predict(x, return_std=True)
        _, std_far = gpr.predict(np.array([[5.0, 5.0]]), return_std=True)
        assert std_train.mean() < std_far[0]

    def test_ucb_above_mean(self):
        x, y = _wave()
        gpr = GaussianProcessRegressor().fit(x, y)
        grid = np.random.default_rng(1).uniform(0, 1, size=(10, 2))
        mean = gpr.predict(grid)
        ucb = gpr.ucb(grid, kappa=2.0)
        assert np.all(ucb >= mean)

    def test_kappa_zero_is_mean(self):
        x, y = _wave()
        gpr = GaussianProcessRegressor().fit(x, y)
        grid = np.random.default_rng(1).uniform(0, 1, size=(5, 2))
        assert np.allclose(gpr.ucb(grid, kappa=0.0), gpr.predict(grid))

    def test_n_train(self):
        x, y = _wave(n=13)
        gpr = GaussianProcessRegressor()
        assert gpr.n_train == 0
        gpr.fit(x, y)
        assert gpr.n_train == 13
