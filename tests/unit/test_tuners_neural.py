"""Unit tests for the numpy MLP/Adam toolkit."""

import numpy as np
import pytest

from repro.tuners.neural import MLP, Adam, soft_update


class TestMLP:
    def test_forward_shape(self):
        net = MLP([3, 8, 2], seed=0)
        out = net(np.zeros((5, 3)))
        assert out.shape == (5, 2)

    def test_sigmoid_output_bounded(self):
        net = MLP([3, 8, 4], output="sigmoid", seed=0)
        out = net(np.random.default_rng(0).normal(size=(10, 3)) * 10)
        assert np.all(out > 0.0) and np.all(out < 1.0)

    def test_deterministic_init(self):
        a = MLP([3, 4, 1], seed=7)
        b = MLP([3, 4, 1], seed=7)
        x = np.ones((1, 3))
        assert a(x).tolist() == b(x).tolist()

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            MLP([3])

    def test_invalid_output(self):
        with pytest.raises(ValueError):
            MLP([3, 1], output="softmax")

    def test_backward_before_forward_rejected(self):
        net = MLP([2, 2], seed=0)
        with pytest.raises(RuntimeError):
            net.backward(np.zeros((1, 2)))

    def test_gradients_match_finite_differences(self):
        net = MLP([2, 4, 1], seed=3)
        x = np.array([[0.3, -0.7]])
        target = np.array([[0.5]])

        def loss():
            return 0.5 * float(((net(x) - target) ** 2).sum())

        base = net(x)
        grads, _ = net.backward(base - target)
        eps = 1e-6
        w = net.weights[0]
        for idx in [(0, 0), (1, 2)]:
            original = w[idx]
            w[idx] = original + eps
            up = loss()
            w[idx] = original - eps
            down = loss()
            w[idx] = original
            numeric = (up - down) / (2 * eps)
            assert grads[0][idx] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_copy_from(self):
        a = MLP([2, 3, 1], seed=0)
        b = MLP([2, 3, 1], seed=99)
        b.copy_from(a)
        x = np.ones((1, 2))
        assert a(x).tolist() == b(x).tolist()


class TestAdam:
    def test_minimises_quadratic(self):
        net = MLP([1, 8, 1], seed=0)
        opt = Adam(net.parameters(), lr=0.01)
        rng = np.random.default_rng(1)
        for _ in range(400):
            x = rng.uniform(-1, 1, size=(16, 1))
            y = x**2
            pred = net(x)
            grads, _ = net.backward((pred - y) / len(x))
            opt.step(grads)
        x_test = np.array([[0.5], [-0.5], [0.0]])
        assert np.max(np.abs(net(x_test) - x_test**2)) < 0.1

    def test_grad_mismatch_rejected(self):
        net = MLP([2, 1], seed=0)
        opt = Adam(net.parameters())
        with pytest.raises(ValueError):
            opt.step([np.zeros((2, 1))])


class TestSoftUpdate:
    def test_polyak_moves_toward_source(self):
        target = MLP([2, 2], seed=0)
        source = MLP([2, 2], seed=1)
        before = target.weights[0].copy()
        soft_update(target, source, tau=0.5)
        after = target.weights[0]
        expected = 0.5 * before + 0.5 * source.weights[0]
        assert np.allclose(after, expected)

    def test_tau_one_copies(self):
        target = MLP([2, 2], seed=0)
        source = MLP([2, 2], seed=1)
        soft_update(target, source, tau=1.0)
        assert np.allclose(target.weights[0], source.weights[0])
