"""Unit tests for the memory model (hit ratio, spills, swap)."""

import pytest

from repro.dbsim.config import KnobConfiguration
from repro.dbsim.memory import (
    buffer_hit_ratio,
    compute_spills,
    swap_factor,
    working_area_knobs,
)
from repro.common.hardware import vm_type
from repro.workloads.generator import WorkloadBatch
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType


def _batch(sort_mb=0.0, maintenance_mb=0.0, temp_mb=0.0, count=10, name="w"):
    fam = QueryFamily(
        "q",
        QueryType.AGGREGATE,
        "SELECT agg",
        1.0,
        QueryFootprint(
            sort_mb=sort_mb, maintenance_mb=maintenance_mb, temp_mb=temp_mb
        ),
    )
    return WorkloadBatch(name, 10.0, count / 10.0, {"q": count}, {"q": fam})


class TestBufferHitRatio:
    def test_zero_buffer_zero_hits(self):
        assert buffer_hit_ratio(0.0, 10.0) == 0.0

    def test_monotone_in_buffer(self):
        ratios = [buffer_hit_ratio(mb, 20.0) for mb in (64, 512, 4096, 16384)]
        assert ratios == sorted(ratios)

    def test_bounded_below_one(self):
        assert buffer_hit_ratio(10**6, 1.0) < 1.0

    def test_working_set_sized_pool_is_good(self):
        # Pool == hot set (35% of data) should give a strong hit ratio.
        assert buffer_hit_ratio(0.35 * 10 * 1024, 10.0) > 0.9


class TestWorkingAreaKnobs:
    def test_postgres_mapping(self):
        knobs = working_area_knobs("postgres")
        assert knobs.sort == ("work_mem",)
        assert knobs.maintenance == ("maintenance_work_mem",)
        assert knobs.temp == ("temp_buffers",)

    def test_mysql_sort_shares_two_buffers(self):
        knobs = working_area_knobs("mysql")
        assert set(knobs.sort) == {"sort_buffer_size", "join_buffer_size"}

    def test_unknown_flavor(self):
        with pytest.raises(ValueError):
            working_area_knobs("oracle")


class TestComputeSpills:
    def test_no_spill_when_fits(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"work_mem": 100})
        report = compute_spills(_batch(sort_mb=50.0), cfg)
        assert not report.any_spill
        assert report.memory_used_mb == pytest.approx(50.0)
        assert report.disk_used_mb == 0.0

    def test_spill_when_exceeds(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"work_mem": 4})
        report = compute_spills(_batch(sort_mb=350.0, count=2), cfg)
        assert report.any_spill
        assert "sort" in report.spilled_categories
        assert report.disk_used_mb == pytest.approx(346.0)
        # write + read-back of the excess, per execution
        assert report.spill_read_write_mb == pytest.approx(2 * 346.0 * 2)
        assert report.temp_files == 2

    def test_maintenance_category(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"maintenance_work_mem": 8})
        report = compute_spills(_batch(maintenance_mb=100.0), cfg)
        assert report.spilled_categories == {"maintenance"}

    def test_temp_category(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"temp_buffers": 8})
        report = compute_spills(_batch(temp_mb=100.0), cfg)
        assert report.spilled_categories == {"temp"}

    def test_multiple_categories_single_query(self, pg_catalog):
        """§3.1: one query class can throttle several knobs at once."""
        cfg = KnobConfiguration(pg_catalog)
        report = compute_spills(
            _batch(sort_mb=100.0, temp_mb=100.0, maintenance_mb=100.0), cfg
        )
        assert report.spilled_categories == {"sort", "maintenance", "temp"}

    def test_zero_count_families_ignored(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        report = compute_spills(_batch(sort_mb=500.0, count=0), cfg)
        assert not report.any_spill

    def test_fig2_tpcc_fits_in_default_work_mem(self, pg_catalog, tpcc):
        """Fig. 2: TPC-C's ~0.5 MB sorts never spill at the 4 MB default."""
        cfg = KnobConfiguration(pg_catalog)
        batch = tpcc.batch(10.0)
        report = compute_spills(batch, cfg)
        assert "sort" not in report.spilled_categories


class TestSwapFactor:
    def test_no_swap_when_fitting(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        assert swap_factor(cfg, vm_type("m4.xlarge"), 20) == 1.0

    def test_swap_grows_with_excess(self, pg_catalog):
        vm = vm_type("t2.small")
        small = KnobConfiguration(pg_catalog, {"shared_buffers": 1024})
        big = KnobConfiguration(
            pg_catalog, {"shared_buffers": 1024, "work_mem": 4000}
        )
        assert swap_factor(big, vm, 20) > swap_factor(small, vm, 20) >= 1.0
