"""Unit tests for the observability layer (repro.obs + the common seam)."""

import json

import pytest

from repro.common.recording import NULL_RECORDER, NullRecorder, Recorder
from repro.obs.export import jsonl_lines, to_chrome_trace, to_jsonl
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.profile import profile, render_profile
from repro.obs.trace import TraceRecorder


class TestNullRecorder:
    def test_is_the_module_default(self):
        assert isinstance(NULL_RECORDER, NullRecorder)
        assert isinstance(NULL_RECORDER, Recorder)

    def test_span_works_as_context_manager(self):
        with NULL_RECORDER.span("anything", instance="svc", extra=1) as span:
            span.set(more=2)  # all no-ops

    def test_every_seam_method_is_a_noop(self):
        NULL_RECORDER.advance(10.0)
        NULL_RECORDER.event("x", instance="svc", attr=1)
        NULL_RECORDER.inc("c", 2.0, label="a")
        NULL_RECORDER.set_gauge("g", 1.0)
        NULL_RECORDER.observe("h", 3.0)


class TestTraceRecorder:
    def test_backwards_clock_rejected(self):
        recorder = TraceRecorder()
        recorder.advance(10.0)
        with pytest.raises(ValueError, match="backwards"):
            recorder.advance(9.0)

    def test_negative_pinned_duration_rejected(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError, match="duration_s"):
            recorder.span("bad", duration_s=-1.0)

    def test_out_of_stack_close_raises(self):
        recorder = TraceRecorder()
        outer = recorder.span("outer")
        recorder.span("inner")
        with pytest.raises(RuntimeError, match="stack order"):
            outer.__exit__(None, None, None)

    def test_exception_stamps_error_attr_and_closes(self):
        recorder = TraceRecorder()
        with pytest.raises(KeyError):
            with recorder.span("risky"):
                raise KeyError("boom")
        assert recorder.open_spans == 0
        assert recorder.spans[0].attrs["error"] == "KeyError"

    def test_pinned_duration_beats_the_clock(self):
        recorder = TraceRecorder()
        with recorder.span("timed", duration_s=120.0):
            pass
        assert recorder.spans[0].duration_s == 120.0

    def test_untimed_span_closes_at_the_clock(self):
        recorder = TraceRecorder()
        recorder.advance(5.0)
        with recorder.span("window"):
            recorder.advance(35.0)
        span = recorder.spans[0]
        assert (span.start_sim_s, span.end_sim_s) == (5.0, 35.0)

    def test_metrics_forwarded_to_registry(self):
        registry = MetricsRegistry()
        recorder = TraceRecorder(metrics=registry)
        recorder.inc("repro_things_total", instance="svc")
        recorder.set_gauge("repro_level", 3.5)
        recorder.observe("repro_cost_seconds", 42.0)
        assert registry.value("repro_things_total", instance="svc") == 1.0
        assert registry.value("repro_level") == 3.5
        assert registry.families["repro_cost_seconds"].kind == "histogram"

    def test_host_time_only_with_profiling_enabled(self):
        plain = TraceRecorder()
        with plain.span("a"):
            pass
        assert plain.spans[0].host_s is None
        profiled = TraceRecorder(host_time=True)
        with profiled.span("a"):
            pass
        assert profiled.spans[0].host_s is not None
        assert profiled.spans[0].host_s >= 0.0


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("c", instance="a")
        registry.inc("c", 2.0, instance="a")
        registry.inc("c", instance="b")
        assert registry.value("c", instance="a") == 3.0
        assert registry.value("c", instance="b") == 1.0
        assert registry.value("c", instance="never") == 0.0

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            registry.inc("c", -1.0)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.inc("c")
        with pytest.raises(ValueError, match="is a counter"):
            registry.set_gauge("c", 1.0)

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.describe("h", "histogram", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            registry.observe("h", value)
        samples = {
            (s.name, s.labels): s.value for s in registry.samples()
        }
        assert samples[("h_bucket", (("le", "1"),))] == 2.0
        assert samples[("h_bucket", (("le", "10"),))] == 3.0
        assert samples[("h_bucket", (("le", "+Inf"),))] == 4.0
        assert samples[("h_sum", ())] == pytest.approx(106.2)
        assert samples[("h_count", ())] == 4.0

    def test_bucket_edges_must_strictly_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            registry.describe("h", "histogram", buckets=(1.0, 1.0, 2.0))

    def test_default_buckets_apply_without_describe(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.1)
        assert registry.families["h"].buckets == DEFAULT_BUCKETS

    def test_samples_in_deterministic_order(self):
        registry = MetricsRegistry()
        registry.inc("z_total", instance="b")
        registry.inc("z_total", instance="a")
        registry.inc("a_total")
        names = [s.name for s in registry.samples()]
        assert names == ["a_total", "z_total", "z_total"]
        z_labels = [s.labels for s in registry.samples() if s.name == "z_total"]
        assert z_labels == [(("instance", "a"),), (("instance", "b"),)]


class TestExports:
    def _recorder(self) -> TraceRecorder:
        recorder = TraceRecorder()
        with recorder.span("outer", instance="svc-0000", knobs=("a", "b")):
            recorder.event("hit", value=1)
            recorder.advance(30.0)
        recorder.inc("repro_hits_total")
        return recorder

    def test_open_span_blocks_export(self):
        recorder = TraceRecorder()
        recorder.span("dangling")
        with pytest.raises(ValueError, match="still open"):
            to_jsonl(recorder)
        with pytest.raises(ValueError, match="still open"):
            to_chrome_trace(recorder)

    def test_jsonl_shape(self):
        lines = list(jsonl_lines(self._recorder(), {"experiment": "unit"}))
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["experiment"] == "unit"
        types = [r["type"] for r in records[1:]]
        assert types == ["span", "event", "metric"]
        span = records[1]
        assert span["attrs"]["knobs"] == ["a", "b"]  # tuple coerced
        assert "host_s" not in span  # host time never exported

    def test_chrome_trace_threads_and_events(self):
        payload = json.loads(to_chrome_trace(self._recorder()))
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert names == {"landscape", "svc-0000"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["dur"] == 30.0 * 1e6
        instant = [e for e in events if e["ph"] == "i"]
        assert instant[0]["name"] == "hit"

    def test_identical_runs_serialise_identically(self):
        assert to_jsonl(self._recorder()) == to_jsonl(self._recorder())


class TestProfile:
    def test_self_time_subtracts_children_and_floors_at_zero(self):
        recorder = TraceRecorder()
        with recorder.span("window", duration_s=300.0):
            with recorder.span("retrain", duration_s=110.0):
                pass
            with recorder.span("retrain", duration_s=250.0):
                pass  # children sum past the parent: self floors at 0
        rows = {r.name: r for r in profile(recorder)}
        assert rows["retrain"].count == 2
        assert rows["retrain"].sim_cum_s == 360.0
        assert rows["window"].sim_self_s == 0.0
        assert rows["window"].sim_cum_s == 300.0

    def test_render_hides_host_columns_without_measurements(self):
        recorder = TraceRecorder()
        with recorder.span("a", duration_s=1.0):
            pass
        table = render_profile(profile(recorder))
        assert "host_cum_s" not in table
        assert "sim_cum_s" in table

    def test_render_shows_host_columns_when_profiled(self):
        recorder = TraceRecorder(host_time=True)
        with recorder.span("a", duration_s=1.0):
            pass
        table = render_profile(profile(recorder))
        assert "host_cum_s" in table
