"""Unit tests for factor-analysis + k-means metric pruning."""

import numpy as np
import pytest

from repro.tuners.metrics_prep import factor_embedding, kmeans, prune_metrics


def _metric_matrix(n=60, seed=0):
    """Three groups of correlated metrics + one constant column."""
    rng = np.random.default_rng(seed)
    base_a = rng.normal(size=n)
    base_b = rng.normal(size=n)
    base_c = rng.normal(size=n)
    cols = [
        base_a,
        base_a * 2 + rng.normal(0, 0.01, n),
        base_b,
        base_b * -1 + rng.normal(0, 0.01, n),
        base_c,
        np.full(n, 3.0),  # constant
    ]
    names = ("a1", "a2", "b1", "b2", "c1", "const")
    return np.column_stack(cols), names


class TestFactorEmbedding:
    def test_shape(self):
        x, _ = _metric_matrix()
        emb = factor_embedding(x, n_factors=3)
        assert emb.shape == (6, 3)

    def test_correlated_metrics_embed_close(self):
        x, _ = _metric_matrix()
        emb = factor_embedding(x, n_factors=3)
        d_corr = np.linalg.norm(emb[0] - emb[1])
        d_uncorr = np.linalg.norm(emb[0] - emb[4])
        assert d_corr < d_uncorr

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            factor_embedding(np.zeros((1, 4)))


class TestKMeans:
    def test_separated_clusters_found(self):
        rng = np.random.default_rng(0)
        pts = np.vstack(
            [rng.normal(0, 0.1, (20, 2)), rng.normal(10, 0.1, (20, 2))]
        )
        labels, centroids = kmeans(pts, 2)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[20]

    def test_deterministic(self):
        pts = np.random.default_rng(1).normal(size=(30, 3))
        l1, c1 = kmeans(pts, 4)
        l2, c2 = kmeans(pts, 4)
        assert np.array_equal(l1, l2)
        assert np.allclose(c1, c2)

    def test_k_validation(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(pts, 0)
        with pytest.raises(ValueError):
            kmeans(pts, 4)


class TestPruneMetrics:
    def test_drops_constant_metric(self):
        x, names = _metric_matrix()
        kept = prune_metrics(x, names, n_clusters=3)
        assert "const" not in kept

    def test_keeps_one_per_correlated_group(self):
        x, names = _metric_matrix()
        kept = prune_metrics(x, names, n_clusters=3)
        assert not ({"a1", "a2"} <= set(kept))
        assert not ({"b1", "b2"} <= set(kept))

    def test_covers_independent_signal(self):
        x, names = _metric_matrix()
        kept = prune_metrics(x, names, n_clusters=3)
        assert "c1" in kept

    def test_name_length_validated(self):
        with pytest.raises(ValueError):
            prune_metrics(np.zeros((5, 3)), ("a", "b"))

    def test_all_constant_returns_empty(self):
        assert prune_metrics(np.ones((5, 3)), ("a", "b", "c")) == []
