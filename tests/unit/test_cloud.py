"""Unit tests for the cloud layer: monitoring, provisioner, fleet."""

import pytest

from repro.cloud import LiveFleet, MonitoringAgent, PAPER_PLAN_MIX, Provisioner


class TestMonitoringAgent:
    def test_ingest_accumulates(self, pg_db, tpcc):
        agent = MonitoringAgent("db0")
        agent.ingest(pg_db.run(tpcc.batch(10.0)))
        agent.ingest(pg_db.run(tpcc.batch(10.0)))
        assert len(agent.write_latency) == 20
        assert len(agent.throughput) == 2

    def test_window_query(self, pg_db, tpcc):
        agent = MonitoringAgent("db0")
        agent.ingest(pg_db.run(tpcc.batch(10.0)))
        agent.ingest(pg_db.run(tpcc.batch(10.0)))
        win = agent.write_latency_between(10.0, 20.0)
        assert len(win) == 10
        assert win.times[0] == 10.0

    def test_peak_spacing_none_without_peaks(self):
        agent = MonitoringAgent("db0")
        assert agent.mean_peak_spacing_s(0, 100, threshold_ms=10.0) is None

    def test_peak_spacing_mean(self):
        agent = MonitoringAgent("db0")
        # Hand-build latency with peaks at t=10 and t=30.
        for t in range(41):
            value = 50.0 if t in (10, 30) else 1.0
            agent.write_latency.append(float(t), value)
        assert agent.mean_peak_spacing_s(0, 41, threshold_ms=10.0) == 20.0


class TestProvisioner:
    def test_provision_and_get(self):
        prov = Provisioner(seed=0)
        d = prov.provision(plan="t2.medium", flavor="mysql", data_size_gb=5.0)
        assert prov.get(d.instance_id) is d
        assert d.service.flavor == "mysql"
        assert d.plan == "t2.medium"

    def test_ids_unique(self):
        prov = Provisioner(seed=0)
        ids = {prov.provision().instance_id for _ in range(10)}
        assert len(ids) == 10

    def test_credentials_assigned(self):
        d = Provisioner(seed=1).provision()
        assert d.credentials.instance_id == d.instance_id
        assert len(d.credentials.password) == 16

    def test_deprovision(self):
        prov = Provisioner(seed=0)
        d = prov.provision()
        prov.deprovision(d.instance_id)
        assert len(prov) == 0
        with pytest.raises(KeyError):
            prov.get(d.instance_id)

    def test_unknown_deprovision(self):
        with pytest.raises(KeyError):
            Provisioner().deprovision("nope")


class TestLiveFleet:
    def test_plan_mix_cycles(self):
        fleet = LiveFleet(size=7, seed=0)
        plans = [m.deployment.plan for m in fleet.members]
        assert plans[:5] == list(PAPER_PLAN_MIX)
        assert plans[5] == PAPER_PLAN_MIX[0]

    def test_step_runs_every_member(self):
        fleet = LiveFleet(size=4, seed=1)
        results = fleet.step(30.0)
        assert len(results) == 4
        assert fleet.clock_s == 30.0
        assert all(r.throughput >= 0 for _, r in results)

    def test_members_have_distinct_rates(self):
        fleet = LiveFleet(size=6, seed=2)
        rates = {m.workload.rps for m in fleet.members}
        assert len(rates) == 6

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LiveFleet(size=0)

    def test_monitoring_filled_by_step(self):
        fleet = LiveFleet(size=2, seed=3)
        fleet.step(20.0)
        assert all(len(m.monitoring.iops) == 20 for m in fleet.members)
