"""Unit tests for the dynamic knob-selection tier.

Four concerns:

- mechanics: policy validation, the version-keyed rerank/reuse/hit
  counters, the frozen budget repair;
- **automaton ownership**: async/planner knobs stay out of every
  subspace (unless the policy opts out) while their throttle signals
  are still counted;
- **flag-on determinism**: two identically built selection-armed tuners
  recommend identically, and the fixed-vs-dynamic ablation report holds
  the strictly-smaller-subspace / >= 0.95-retention claim;
- **flag-off byte parity**: with no policy wired, a quick fig09 window
  must render byte-identically to the pre-selection golden capture
  (``tests/golden/fig09_quick.txt``).
"""

import pathlib

import numpy as np
import pytest

from repro.cli import main
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.knobs import KnobClass, postgres_catalog
from repro.experiments import ablation_knob_selection
from repro.experiments.common import offline_train
from repro.tuners.base import TuningRequest, config_to_vector
from repro.tuners.cdbtune import CDBTuneTuner
from repro.tuners.knob_selection import (
    KNOBSELECT_METRIC_FAMILIES,
    KnobSelector,
    SelectionPolicy,
    repair_config_frozen,
)
from repro.tuners.ottertune import OtterTuneTuner
from repro.workloads.tpcc import TPCCWorkload

GOLDEN = pathlib.Path(__file__).parents[1] / "golden" / "fig09_quick.txt"

CATALOG = postgres_catalog()
AUTOMATON_KNOBS = {
    k.name for k in CATALOG.by_class(KnobClass.ASYNC_PLANNER)
}


def _stream(seed: int = 0, n: int = 24):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(n, len(CATALOG)))
    y = 2.0 * x[:, 0] - x[:, 3] + rng.normal(0.0, 0.1, n)
    return x, y


class TestPolicy:
    def test_defaults_valid(self):
        policy = SelectionPolicy()
        assert policy.top_k == 8
        assert policy.stability_window == 3
        assert policy.exclude_automaton_knobs is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"top_k": 1},
            {"stability_window": 0},
            {"min_rank_samples": 5},
            {"n_alphas": 1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SelectionPolicy(**kwargs)


class TestSelectorCache:
    def test_abstains_below_min_samples(self):
        selector = KnobSelector(SelectionPolicy(), CATALOG)
        x, y = _stream(n=8)
        assert selector.subspace("w", x, y, version=1) is None
        assert selector.counters() == (0, 0, 0, 0, 0)

    def test_version_keyed_hits_and_reranks(self):
        selector = KnobSelector(SelectionPolicy(), CATALOG)
        x, y = _stream()
        first = selector.subspace("w", x, y, version=3)
        assert first is not None
        assert (selector.reranks, selector.hits) == (1, 0)
        # Same version: served from cache, no new rank work.
        assert selector.subspace("w", x, y, version=3) is first
        assert (selector.reranks, selector.hits) == (1, 1)
        # New version, same rows: re-rank runs but the solved problem is
        # bit-identical, so the previous coefficients are reused.
        again = selector.subspace("w", x, y, version=4)
        assert again is not None
        assert (selector.reranks, selector.reuses, selector.hits) == (2, 1, 1)
        assert again.ranking == first.ranking

    def test_states_keyed_per_workload(self):
        selector = KnobSelector(SelectionPolicy(), CATALOG)
        xa, ya = _stream(seed=1)
        xb, yb = _stream(seed=2)
        assert selector.subspace("a", xa, ya, 1) is not None
        assert selector.subspace("b", xb, yb, 1) is not None
        assert selector.reranks == 2
        assert selector.active_knobs("a") is not None
        assert selector.active_knobs("b") is not None

    def test_shrunk_dataset_resets_state(self):
        selector = KnobSelector(SelectionPolicy(), CATALOG)
        x, y = _stream(n=30)
        assert selector.subspace("w", x, y, 1) is not None
        rebuilt = selector.subspace("w", x[:20], y[:20], 2)
        assert rebuilt is not None
        assert selector._states["w"].rows_seen == 20

    def test_record_deltas_mirrors_counters(self):
        from repro.obs.trace import TraceRecorder

        selector = KnobSelector(SelectionPolicy(), CATALOG)
        recorder = TraceRecorder()
        x, y = _stream()
        before = selector.counters()
        selector.subspace("w", x, y, 1)
        selector.record_deltas(recorder, before)
        before = selector.counters()
        selector.subspace("w", x, y, 1)
        selector.record_deltas(recorder, before)
        counts = {
            sample.name: sample.value
            for sample in recorder.metrics.samples()
        }
        assert counts["repro_knobselect_reranks_total"] == 1
        assert counts["repro_knobselect_hits_total"] == 1

    def test_metric_families_cover_all_counters(self):
        assert set(KNOBSELECT_METRIC_FAMILIES) == {
            "repro_knobselect_reranks_total",
            "repro_knobselect_reuses_total",
            "repro_knobselect_hits_total",
            "repro_knobselect_updates_total",
            "repro_knobselect_holds_total",
        }


class TestAutomatonOwnership:
    def test_async_planner_knobs_excluded_from_subspace(self):
        selector = KnobSelector(SelectionPolicy(), CATALOG)
        assert set(selector.excluded_knobs()) == AUTOMATON_KNOBS
        x, y = _stream()
        sub = selector.subspace("w", x, y, 1)
        assert sub is not None
        active = selector.active_knobs("w")
        assert active is not None
        assert not set(active) & AUTOMATON_KNOBS

    def test_opt_out_allows_planner_knobs(self):
        selector = KnobSelector(
            SelectionPolicy(exclude_automaton_knobs=False), CATALOG
        )
        assert selector.excluded_knobs() == ()

    def test_signals_counted_but_knobs_stay_excluded(self):
        selector = KnobSelector(SelectionPolicy(), CATALOG)
        selector.note_automaton_signal("random_page_cost")
        selector.note_automaton_signal("random_page_cost")
        selector.note_automaton_signal("effective_cache_size")
        assert selector.automaton_signals == {
            "random_page_cost": 2,
            "effective_cache_size": 1,
        }
        x, y = _stream()
        selector.subspace("w", x, y, 1)
        active = selector.active_knobs("w")
        assert active is not None
        assert "random_page_cost" not in active


class TestFrozenRepair:
    def test_unmoved_knobs_stay_byte_identical(self):
        defaults = KnobConfiguration(CATALOG, CATALOG.defaults())
        moved = defaults.with_values(
            {"work_mem": CATALOG.get("work_mem").max_value}
        )
        repaired = repair_config_frozen(moved, defaults, 512.0, 20)
        for name in CATALOG.names():
            if name == "work_mem":
                continue
            assert repaired[name] == defaults[name]
        assert repaired["work_mem"] < moved["work_mem"]

    def test_within_budget_is_identity(self):
        defaults = KnobConfiguration(CATALOG, CATALOG.defaults())
        assert repair_config_frozen(defaults, defaults, 1e9, 20) is defaults


def _fixture_repository(seed: int):
    """A seeded repository built by the real offline-training pipeline."""
    catalog = postgres_catalog()
    repository = offline_train(
        catalog,
        [TPCCWorkload(rps=500.0, data_size_gb=12.0, seed=seed)],
        n_configs=24,
        seed=seed + 1,
    )
    return catalog, repository


class TestFlagOnDeterminism:
    def test_ottertune_recommendations_deterministic(self):
        """Two identically built flag-on tuners recommend identically."""
        recs = []
        for _ in range(2):
            catalog, repository = _fixture_repository(3)
            tuner = OtterTuneTuner(
                catalog, repository, seed=5, selection=SelectionPolicy()
            )
            workload_id = repository.workload_ids()[0]
            sample = repository.samples(workload_id)[0]
            recs.append(
                tuner.recommend(
                    TuningRequest(
                        "db0",
                        workload_id,
                        sample.config,
                        sample.metrics,
                        timestamp_s=0.0,
                    )
                )
            )
        assert recs[0].config.as_dict() == recs[1].config.as_dict()
        assert recs[0].expected_improvement == recs[1].expected_improvement

    def test_configure_selection_arms_the_selector(self):
        catalog, repository = _fixture_repository(2)
        tuner = OtterTuneTuner(catalog, repository, seed=9)
        assert tuner.knob_selector is None
        assert tuner.configure_selection(SelectionPolicy()) is True
        assert tuner.knob_selector is not None
        workload_id = repository.workload_ids()[0]
        sample = repository.samples(workload_id)[0]
        request = TuningRequest(
            "db0", workload_id, sample.config, sample.metrics, timestamp_s=0.0
        )
        first = tuner.recommend(request)
        tuner.recommend(request)
        selector = tuner.knob_selector
        assert selector.reranks == 1
        assert selector.hits == 1
        active = selector.active_knobs(workload_id)
        assert active is not None
        assert 0 < len(active) < len(catalog)
        inactive = [n for n in catalog.names() if n not in active]
        for name in inactive:
            assert first.config[name] == request.config[name]

    def test_cdbtune_projects_action_onto_subspace(self):
        catalog, repository = _fixture_repository(4)
        tuner = CDBTuneTuner(catalog, seed=7, selection=SelectionPolicy())
        workload_id = repository.workload_ids()[0]
        samples = repository.samples(workload_id)
        for sample in samples:
            tuner.learn(sample)
        probe = samples[0]
        request = TuningRequest(
            "db0", workload_id, probe.config, probe.metrics, timestamp_s=0.0
        )
        recommendation = tuner.recommend(request)
        selector = tuner.knob_selector
        assert selector is not None
        active = selector.active_knobs(workload_id)
        assert active is not None
        inactive = [n for n in catalog.names() if n not in active]
        for name in inactive:
            assert recommendation.config[name] == request.config[name]
        _, action = tuner._pending[workload_id]
        incumbent = config_to_vector(request.config)
        sub = selector._states[workload_id].subspace
        mask = selector.mask(sub)
        assert np.array_equal(action[~mask], incumbent[~mask])


class TestAblation:
    def test_dynamic_arm_smaller_subspace_with_retention(self):
        """Satellite claim: strictly smaller subspace, >= 0.95 retention."""
        report = ablation_knob_selection.run(seed=0)
        for workload in ablation_knob_selection.WORKLOAD_NAMES:
            fixed, dynamic = report.pair(workload)
            assert fixed.subspace_size == len(CATALOG)
            assert dynamic.subspace_size < fixed.subspace_size
            assert report.retention(workload) >= 0.95

    def test_report_renders_reproducibly(self):
        first = ablation_knob_selection.run(seed=0).render()
        second = ablation_knob_selection.run(seed=0).render()
        assert first == second
        assert "retention" in first


class TestCLI:
    def test_ablate_knobs_dispatch(self, capsys):
        assert main(["ablate", "knobs", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("knob-selection ablation (seed=0")
        assert "retention" in out


class TestFlagOffGoldenParity:
    def test_fig09_quick_window_matches_pre_selection_golden(self, capsys):
        """Flag-off output is byte-identical to the pre-PR capture.

        ``tests/golden/fig09_quick.txt`` predates both the surrogate and
        the selection tiers; the default (no ``--knob-select``) path
        must keep reproducing it exactly.
        """
        assert (
            main(["run", "fig09", "--fleet-size", "4", "--hours", "1",
                  "--seed", "3"])
            == 0
        )
        assert capsys.readouterr().out == GOLDEN.read_text()
