"""Version-keyed cache invalidation and vectorised-path parity tests.

The perf work caches derived tuning state (Lasso rankings, decile bin
edges, GPR fits, per-family service times) behind the repository version
counter / the database config epoch, and replaces scalar hot paths with
batched equivalents. These tests pin down the two properties that make
that safe: caches refresh exactly when their inputs change, and the
vectorised paths match their scalar references bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.timeseries import TimeSeries
from repro.dbsim import SimulatedDatabase
from repro.dbsim.config import fit_values_to_budget
from repro.dbsim.executor import ServiceTimeCache, family_service_time_ms
from repro.tuners import TrainingSample, TuningRequest, WorkloadRepository
from repro.tuners.base import (
    config_to_vector,
    values_to_vectors,
    vector_to_config,
    vectors_to_values,
)
from repro.tuners.lasso import (
    _cd_gram,
    _cd_gram_batch,
    _standardised_problem,
    lasso_coordinate_descent,
)
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.workload_mapping import WorkloadMapper
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType

from tests.conftest import make_samples


# -- refresh policy ------------------------------------------------------------


class TestFreshEnough:
    def test_exact_below_limit(self, pg_catalog):
        repo = WorkloadRepository()
        first, second = make_samples(pg_catalog, "tpcc", n=2, seed=1)
        repo.add(first)
        v = repo.version
        assert repo.fresh_enough(v, scale=10)
        repo.add(second)
        assert not repo.fresh_enough(v, scale=10)
        assert repo.fresh_enough(repo.version, scale=10)

    def test_stale_window_above_limit(self):
        repo = WorkloadRepository()
        repo.exact_refresh_limit = 0  # every scale counts as "at scale"
        repo._version = 100
        scale = 1
        within = 100 - (repo.stale_refresh_every - 1)
        assert repo.fresh_enough(within, scale=scale)
        assert not repo.fresh_enough(100 - repo.stale_refresh_every, scale=scale)

    def test_scale_at_limit_stays_exact(self):
        repo = WorkloadRepository()
        repo._version = 5
        assert not repo.fresh_enough(4, scale=repo.exact_refresh_limit)


# -- derived-model caches ------------------------------------------------------


@pytest.fixture
def repo_and_request(pg_catalog):
    repo = WorkloadRepository()
    repo.add_many(make_samples(pg_catalog, "tpcc", n=8, seed=3))
    repo.add_many(make_samples(pg_catalog, "ycsb", n=8, seed=4))
    sample = repo.samples("tpcc")[0]
    request = TuningRequest(
        "db0", "tpcc", sample.config, sample.metrics, timestamp_s=0.0
    )
    return repo, request, sample


class TestRankingCache:
    def test_recomputed_only_on_version_bump(self, pg_catalog, repo_and_request):
        repo, request, sample = repo_and_request
        tuner = OtterTuneTuner(pg_catalog, repo, memory_limit_mb=6553.6, seed=1)
        calls = []
        inner = tuner.ranked_knobs
        tuner.ranked_knobs = lambda x, y: calls.append(1) or inner(x, y)

        first = tuner.recommend(request).ranked_knobs
        second = tuner.recommend(request).ranked_knobs
        assert len(calls) == 1
        assert first == second

        repo.add(TrainingSample("tpcc", sample.config, sample.metrics, 99.0))
        tuner.recommend(request)
        assert len(calls) == 2

    def test_ranking_matches_uncached(self, pg_catalog, repo_and_request):
        repo, request, _ = repo_and_request
        tuner = OtterTuneTuner(pg_catalog, repo, memory_limit_mb=6553.6, seed=1)
        cached = tuner.recommend(request).ranked_knobs
        ds = repo.dataset("tpcc")
        gpr, x, y = tuner._fitted_surrogate(request)
        assert cached == tuner.ranked_knobs(x, y)
        assert ds.size >= 5  # ranking is non-trivial at this size


class TestMapperEdgeCache:
    def test_edges_reused_until_add(self, repo_and_request):
        repo, _, sample = repo_and_request
        mapper = WorkloadMapper(repo)
        edges = mapper._bin_edges()
        assert mapper._bin_edges() is edges  # same object: cache hit
        repo.add(TrainingSample("tpcc", sample.config, sample.metrics, 99.0))
        refreshed = mapper._bin_edges()
        assert refreshed is not edges

    def test_edges_shared_across_mappers(self, repo_and_request):
        repo, _, _ = repo_and_request
        edges = WorkloadMapper(repo)._bin_edges()
        assert WorkloadMapper(repo)._bin_edges() is edges

    def test_mapping_result_refreshes_after_add(self, repo_and_request):
        repo, _, sample = repo_and_request
        mapper = WorkloadMapper(repo)
        result = mapper.map_workload("tpcc")
        assert mapper.map_workload("tpcc") is result
        repo.add(TrainingSample("ycsb", sample.config, sample.metrics, 99.0))
        assert mapper.map_workload("tpcc") is not result


class TestGPRFitCache:
    def test_fit_reused_at_same_version(self, pg_catalog, repo_and_request):
        repo, request, sample = repo_and_request
        tuner = OtterTuneTuner(pg_catalog, repo, memory_limit_mb=6553.6, seed=1)
        gpr1, _, _ = tuner._fitted_surrogate(request)
        gpr2, _, _ = tuner._fitted_surrogate(request)
        assert gpr1 is gpr2
        repo.add(TrainingSample("tpcc", sample.config, sample.metrics, 99.0))
        gpr3, _, _ = tuner._fitted_surrogate(request)
        assert gpr3 is not gpr1

    def test_fit_is_exact_even_at_scale(self, pg_catalog, repo_and_request):
        """The surrogate never amortises: one version bump = one refit."""
        repo, request, sample = repo_and_request
        repo.exact_refresh_limit = 0  # rankings/edges would now amortise
        tuner = OtterTuneTuner(pg_catalog, repo, memory_limit_mb=6553.6, seed=1)
        gpr1, _, _ = tuner._fitted_surrogate(request)
        repo.add(TrainingSample("tpcc", sample.config, sample.metrics, 99.0))
        gpr2, _, _ = tuner._fitted_surrogate(request)
        assert gpr2 is not gpr1


# -- executor service-time memo ------------------------------------------------


class TestServiceTimeCache:
    def _family(self):
        return QueryFamily(
            name="f",
            query_type=QueryType.SELECT,
            template="SELECT 1",
            weight=1.0,
            footprint=QueryFootprint(sort_mb=2.0, read_kb=64.0),
        )

    def test_hit_returns_exact_value(self, pg_db):
        cache = ServiceTimeCache()
        fam = self._family()
        args = (
            fam.footprint,
            pg_db.config,
            pg_db.vm,
            0.9,
            pg_db._planner,
            1.5,
            1.0,
            1.0,
        )
        direct = family_service_time_ms(*args)
        first = cache.service_time_ms(0, "w", "f", *args)
        second = cache.service_time_ms(0, "w", "f", *args)
        assert first == direct == second
        assert cache.misses == 1 and cache.hits == 1

    def test_epoch_bump_flushes(self, pg_db):
        cache = ServiceTimeCache()
        fam = self._family()
        args = (
            fam.footprint,
            pg_db.config,
            pg_db.vm,
            0.9,
            pg_db._planner,
            1.5,
            1.0,
            1.0,
        )
        cache.service_time_ms(0, "w", "f", *args)
        cache.service_time_ms(1, "w", "f", *args)
        assert cache.misses == 2 and cache.hits == 0

    def test_database_bumps_epoch_on_apply(self, pg_db):
        epoch = pg_db.config_epoch
        bigger = pg_db.config.with_values({"work_mem": 64.0})
        pg_db.apply_config(bigger, mode="reload")
        assert pg_db.config_epoch == epoch + 1
        restart = pg_db.config.with_values({"shared_buffers": 2048})
        pg_db.apply_config(restart, mode="restart")
        assert pg_db.config_epoch == epoch + 2

    def test_reconfigured_run_uses_fresh_service_times(self, pg_db, tpcc):
        """End to end: a reload must change results despite the memo."""
        pg_db.run(tpcc.batch(20.0))
        baseline = pg_db.run(tpcc.batch(20.0)).throughput
        assert pg_db._service_cache.hits > 0
        boosted = pg_db.config.with_values(
            {"shared_buffers": 4096, "work_mem": 256.0}
        )
        pg_db.apply_config(boosted, mode="restart")
        pg_db.run(tpcc.batch(20.0))
        assert pg_db.run(tpcc.batch(20.0)).throughput != baseline


# -- vectorised-path parity ----------------------------------------------------


class TestLassoBatchParity:
    def test_batch_matches_scalar_per_alpha(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(40, 9))
        y = x @ rng.normal(size=9) + 0.1 * rng.normal(size=40)
        xs, ys = _standardised_problem(x, y)
        n, d = xs.shape
        gram = (xs.T @ xs) / n
        corr = (xs.T @ ys) / n
        alphas = np.geomspace(np.abs(corr).max(), 1e-3, 12)
        batch = _cd_gram_batch(gram, corr, alphas, max_iter=500, tol=1e-6)
        for i, alpha in enumerate(alphas):
            scalar = _cd_gram(
                gram, corr, float(alpha), np.zeros(d), max_iter=500, tol=1e-6
            )
            assert np.array_equal(batch[i], scalar), f"alpha[{i}] diverged"

    def test_entry_matches_public_solver(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(30, 6))
        y = x @ rng.normal(size=6)
        w = lasso_coordinate_descent(x, y, alpha=0.05)
        xs, ys = _standardised_problem(x, y)
        n, d = xs.shape
        gram = (xs.T @ xs) / n
        corr = (xs.T @ ys) / n
        batch = _cd_gram_batch(
            gram, corr, np.array([0.05]), max_iter=500, tol=1e-6
        )
        assert np.array_equal(batch[0], w)

    def test_degenerate_column_is_ignored(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(20, 4))
        x[:, 2] = 3.0  # constant: zero variance after standardisation
        y = x @ np.array([1.0, -2.0, 0.0, 0.5])
        w = lasso_coordinate_descent(x, y, alpha=0.01)
        assert w[2] == 0.0


class TestBatchedRepairParity:
    @pytest.mark.parametrize("limit,conns", [(6553.6, 40), (2048.0, 80), (512.0, 10)])
    def test_repair_matches_scalar_bitwise(self, pg_catalog, limit, conns):
        """Same knob values in → bit-identical repaired values out."""
        from repro.dbsim.config import KnobConfiguration

        rng = np.random.default_rng(3)
        vectors = rng.uniform(0.0, 1.0, size=(25, len(pg_catalog)))
        values = vectors_to_values(vectors, pg_catalog)
        fitted = fit_values_to_budget(values, pg_catalog, limit, conns)
        names = pg_catalog.names()
        for i in range(len(values)):
            config = KnobConfiguration(
                pg_catalog, dict(zip(names, values[i]))
            ).fitted_to_budget(limit, conns)
            scalar = np.array([config[n] for n in names])
            assert np.array_equal(scalar, fitted[i]), i

    def test_vector_round_trip_matches_scalar(self, pg_catalog):
        """Full batched pipeline vs config round trip.

        The batched transform evaluates ``**`` with numpy's vectorised
        pow, which may differ from the scalar ``float.__pow__`` in the
        last ulp on log-scaled knobs, so the round trip is compared to
        float precision rather than bitwise (the repair itself is bitwise,
        see above).
        """
        rng = np.random.default_rng(3)
        vectors = rng.uniform(0.0, 1.0, size=(25, len(pg_catalog)))
        limit, conns = 6553.6, 40
        values = vectors_to_values(vectors, pg_catalog)
        fitted = fit_values_to_budget(values, pg_catalog, limit, conns)
        batched = values_to_vectors(fitted, pg_catalog)
        for i in range(len(vectors)):
            config = vector_to_config(vectors[i], pg_catalog).fitted_to_budget(
                limit, conns
            )
            np.testing.assert_allclose(
                batched[i], config_to_vector(config), rtol=0.0, atol=1e-9
            )

    def test_repaired_rows_fit_budget(self, pg_catalog):
        rng = np.random.default_rng(4)
        vectors = rng.uniform(0.0, 1.0, size=(10, len(pg_catalog)))
        limit, conns = 2048.0, 80
        values = vectors_to_values(vectors, pg_catalog)
        fitted = fit_values_to_budget(values, pg_catalog, limit, conns)
        for row in values_to_vectors(fitted, pg_catalog):
            config = vector_to_config(row, pg_catalog)
            assert config.memory_footprint_mb(conns) <= limit


class TestInstantiateParity:
    @staticmethod
    def _reference(family: QueryFamily, rng: np.random.Generator):
        """The seed's scalar instantiation: replace loop + jittered()."""
        text = family.template
        params = []
        for kind in family.param_spec:
            piece = str(QueryFamily._draw_param(kind, rng))
            params.append(piece)
            text = text.replace("%s", piece, 1)
        return text, family.footprint.jittered(rng)

    @pytest.mark.parametrize(
        "template,spec",
        [
            ("SELECT c FROM t WHERE id = %s", ("int",)),
            ("SELECT %s, %s FROM t WHERE a = %s AND b < %s",
             ("int", "str", "float", "int")),
            ("VACUUM ANALYZE orders", ()),
        ],
    )
    def test_text_footprint_and_stream_match(self, template, spec):
        family = QueryFamily(
            name="fam",
            query_type=QueryType.SELECT,
            template=template,
            weight=1.0,
            footprint=QueryFootprint(sort_mb=1.5, read_kb=32.0, write_kb=8.0),
            param_spec=spec,
        )
        for seed in range(20):
            fast_rng = np.random.default_rng(seed)
            ref_rng = np.random.default_rng(seed)
            query = family.instantiate(fast_rng)
            text, footprint = self._reference(family, ref_rng)
            assert query.text == text
            assert query.footprint == footprint
            # The fast path must consume the identical RNG stream.
            assert (
                fast_rng.bit_generator.state == ref_rng.bit_generator.state
            )

    def test_real_workload_families(self, tpcc):
        for family in tpcc.families.values():
            fast_rng = np.random.default_rng(13)
            ref_rng = np.random.default_rng(13)
            query = family.instantiate(fast_rng)
            text, footprint = self._reference(family, ref_rng)
            assert query.text == text
            assert query.footprint == footprint
            assert fast_rng.bit_generator.state == ref_rng.bit_generator.state

    def test_precomputed_template_matches_text(self, tpcc):
        from repro.workloads.templating import make_template

        rng = np.random.default_rng(2)
        for family in tpcc.families.values():
            query = family.instantiate(rng)
            if query.template:
                assert query.template == make_template(query.text)


class TestTopSamplesParity:
    def test_matches_stable_sort(self, pg_catalog):
        repo = WorkloadRepository()
        samples = make_samples(pg_catalog, "tpcc", n=10, seed=5)
        # Inject duplicate objectives to exercise stable ordering.
        dup = samples[0]
        samples.append(
            TrainingSample(dup.workload_id, dup.config, dup.metrics, 50.0)
        )
        repo.add_many(samples)
        rows = repo.samples("tpcc")
        for k in (1, 3, 8, 11):
            expected = sorted(rows, key=lambda s: -s.objective)[:k]
            assert repo.top_samples("tpcc", k) == expected

    def test_unknown_workload_is_empty(self):
        assert WorkloadRepository().top_samples("nope", 3) == []


class TestTimeSeriesBulkOps:
    def test_extend_series_matches_extend(self):
        src = TimeSeries("m")
        src.extend([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        a, b = TimeSeries("m"), TimeSeries("m")
        a.extend(iter(src))
        b.extend_series(src)
        assert a.times.tolist() == b.times.tolist()
        assert a.values.tolist() == b.values.tolist()

    def test_extend_series_rejects_backwards_boundary(self):
        dst = TimeSeries("m")
        dst.append(5.0, 1.0)
        src = TimeSeries("m")
        src.append(4.0, 1.0)
        with pytest.raises(ValueError):
            dst.extend_series(src)

    def test_drop_before_trims_strict_prefix(self):
        series = TimeSeries("m")
        series.extend([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)])
        series.drop_before(2.0)
        assert series.times.tolist() == [2.0, 3.0]
        assert series.values.tolist() == [3.0, 4.0]
        series.drop_before(10.0)
        assert len(series) == 0
