"""Unit tests for knob definitions and catalogs."""

import pytest

from repro.dbsim.knobs import (
    KnobClass,
    KnobDef,
    KnobUnit,
    catalog_for,
    mysql_catalog,
    postgres_catalog,
)


class TestKnobDef:
    def test_default_must_be_in_range(self):
        with pytest.raises(ValueError):
            KnobDef("k", KnobClass.MEMORY, KnobUnit.MEGABYTES, 10, 20, 30)

    def test_clamp(self):
        knob = KnobDef("k", KnobClass.MEMORY, KnobUnit.MEGABYTES, 10, 5, 20)
        assert knob.clamp(100) == 20
        assert knob.clamp(1) == 5
        assert knob.clamp(12) == 12


class TestPostgresCatalog:
    def test_three_classes_present(self):
        cat = postgres_catalog()
        for cls in KnobClass:
            assert cat.by_class(cls), f"no knobs in class {cls}"

    def test_paper_knobs_present(self):
        cat = postgres_catalog()
        for name in (
            "shared_buffers",
            "work_mem",
            "maintenance_work_mem",
            "temp_buffers",
            "checkpoint_timeout",
            "bgwriter_delay",
            "random_page_cost",
            "effective_cache_size",
        ):
            assert name in cat

    def test_shared_buffers_restart_required(self):
        cat = postgres_catalog()
        assert cat.get("shared_buffers").restart_required
        assert not cat.get("work_mem").restart_required

    def test_knob_classes_match_paper(self):
        cat = postgres_catalog()
        assert cat.get("work_mem").knob_class is KnobClass.MEMORY
        assert cat.get("checkpoint_timeout").knob_class is KnobClass.BGWRITER
        assert cat.get("random_page_cost").knob_class is KnobClass.ASYNC_PLANNER

    def test_unknown_knob_error_names_flavor(self):
        with pytest.raises(KeyError, match="postgres"):
            postgres_catalog().get("innodb_buffer_pool_size")

    def test_defaults_match_pg96(self):
        cat = postgres_catalog()
        assert cat.get("work_mem").default == 4
        assert cat.get("shared_buffers").default == 128
        assert cat.get("checkpoint_timeout").default == 300
        assert cat.get("random_page_cost").default == 4.0


class TestMySQLCatalog:
    def test_paper_knobs_present(self):
        cat = mysql_catalog()
        for name in (
            "innodb_buffer_pool_size",
            "sort_buffer_size",
            "join_buffer_size",
            "key_buffer_size",
            "tmp_table_size",
        ):
            assert name in cat

    def test_buffer_pool_restart_required(self):
        assert mysql_catalog().get("innodb_buffer_pool_size").restart_required

    def test_three_classes_present(self):
        cat = mysql_catalog()
        for cls in KnobClass:
            assert cat.by_class(cls)


class TestCatalogBehaviour:
    def test_catalog_for(self):
        assert catalog_for("postgres").flavor == "postgres"
        assert catalog_for("mysql").flavor == "mysql"

    def test_catalog_for_unknown(self):
        with pytest.raises(ValueError):
            catalog_for("oracle")

    def test_defaults_complete(self):
        cat = postgres_catalog()
        defaults = cat.defaults()
        assert set(defaults) == set(cat.names())

    def test_memory_budget_knobs_are_mb_memory(self):
        for knob in postgres_catalog().memory_budget_knobs():
            assert knob.knob_class is KnobClass.MEMORY
            assert knob.unit is KnobUnit.MEGABYTES

    def test_duplicate_knob_rejected(self):
        from repro.dbsim.knobs import KnobCatalog

        k = KnobDef("dup", KnobClass.MEMORY, KnobUnit.MEGABYTES, 1, 0, 2)
        with pytest.raises(ValueError, match="duplicate"):
            KnobCatalog("x", [k, k])
