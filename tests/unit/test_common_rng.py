"""Unit tests for repro.common.rng."""

import numpy as np

from repro.common.rng import derive_rng, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_different_seeds_differ(self):
        a = make_rng(1)
        b = make_rng(2)
        draws_a = a.integers(0, 1_000_000, size=8)
        draws_b = b.integers(0, 1_000_000, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_deterministic_per_label(self):
        child1 = derive_rng(make_rng(9), "alpha")
        child2 = derive_rng(make_rng(9), "alpha")
        assert child1.integers(0, 10**9) == child2.integers(0, 10**9)

    def test_labels_independent(self):
        parent = make_rng(9)
        a = derive_rng(parent, "a")
        parent2 = make_rng(9)
        b = derive_rng(parent2, "b")
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_derivation_advances_parent(self):
        parent = make_rng(9)
        before = make_rng(9).integers(0, 10**9)
        derive_rng(parent, "x")
        after = parent.integers(0, 10**9)
        # The parent consumed one draw during derivation.
        assert after != before
