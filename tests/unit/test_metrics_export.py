"""Unit tests for the Prometheus text exposition in cloud.metrics_export.

Covers the satellite checklist: label escaping, empty-series families,
histogram bucket rendering, and a round-trip through a minimal
exposition parser to prove the output is machine-readable — not just
string-shaped.
"""

import pytest

from repro.cloud.metrics_export import (
    _sanitise_label,
    render_counters,
    render_registry,
)
from repro.obs.metrics import MetricsRegistry

# ---------------------------------------------------------------------------
# A minimal exposition-format parser — just enough of the v0.0.4 grammar
# to round-trip what render_registry emits back into (name, labels, value).
# ---------------------------------------------------------------------------


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_exposition(text: str):
    """Yield (name, labels, value) per sample line; skip comments."""
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        body, _, raw_value = line.rpartition(" ")
        if "{" in body:
            name, _, label_blob = body.partition("{")
            labels = []
            blob = label_blob.rstrip("}")
            while blob:
                key, _, rest = blob.partition('="')
                # Scan for the closing quote, honouring escapes.
                i = 0
                while i < len(rest):
                    if rest[i] == "\\":
                        i += 2
                        continue
                    if rest[i] == '"':
                        break
                    i += 1
                labels.append((key, _unescape(rest[:i])))
                blob = rest[i + 1 :].lstrip(",")
            label_key = tuple(labels)
        else:
            name, label_key = body, ()
        yield name, label_key, float(raw_value)


class TestLabelEscaping:
    @pytest.mark.parametrize(
        ("raw", "escaped"),
        [
            ("plain", "plain"),
            ('with"quote', 'with\\"quote'),
            ("back\\slash", "back\\\\slash"),
            ("line\nbreak", "line\\nbreak"),
            ('all\\"\nthree', 'all\\\\\\"\\nthree'),
        ],
    )
    def test_sanitise(self, raw, escaped):
        assert _sanitise_label(raw) == escaped

    def test_escaped_labels_render_and_parse_back(self):
        registry = MetricsRegistry()
        registry.inc("c_total", instance='sv"c\\one\ntwo')
        text = render_registry(registry)
        samples = list(_parse_exposition(text))
        assert samples == [
            ("c_total", (("instance", 'sv"c\\one\ntwo'),), 1.0)
        ]


class TestEmptySeries:
    def test_described_family_renders_headers_without_samples(self):
        registry = MetricsRegistry()
        registry.describe("repro_events_total", "counter", help_text="Events.")
        text = render_registry(registry)
        assert "# HELP repro_events_total Events.\n" in text
        assert "# TYPE repro_events_total counter\n" in text
        assert list(_parse_exposition(text)) == []

    def test_empty_registry_renders_to_bare_newline(self):
        assert render_registry(MetricsRegistry()) == "\n"


class TestSafetyFamilies:
    def test_describe_counter_families_renders_safety_headers(self):
        from repro.cloud.metrics_export import describe_counter_families
        from repro.core.director import SAFETY_METRIC_FAMILIES

        registry = MetricsRegistry()
        describe_counter_families(registry, SAFETY_METRIC_FAMILIES)
        text = render_registry(registry)
        for name in SAFETY_METRIC_FAMILIES:
            assert f"# TYPE {name} counter\n" in text
        # Described-but-empty families expose no samples (golden digests
        # stay stable for ungoverned runs).
        assert list(_parse_exposition(text)) == []
        # A governed run's increments then render as ordinary samples.
        registry.inc("repro_reverts_total", instance="svc-1")
        parsed = list(_parse_exposition(render_registry(registry)))
        assert ("repro_reverts_total", (("instance", "svc-1"),), 1.0) in parsed


class TestHistogramRendering:
    def test_buckets_sum_count_shape(self):
        registry = MetricsRegistry()
        registry.describe(
            "repro_cost_seconds",
            "histogram",
            buckets=(0.5, 2.0),
            help_text="Cost.",
        )
        for value in (0.25, 1.0, 10.0):
            registry.observe("repro_cost_seconds", value)
        text = render_registry(registry)
        assert "# TYPE repro_cost_seconds histogram" in text
        assert 'repro_cost_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_cost_seconds_bucket{le="2"} 2' in text
        assert 'repro_cost_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_cost_seconds_sum 11.25" in text
        assert "repro_cost_seconds_count 3" in text

    def test_bucket_counts_are_cumulative_in_the_rendered_text(self):
        registry = MetricsRegistry()
        registry.describe("h", "histogram", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5):
            registry.observe("h", value)
        parsed = {
            labels: value
            for name, labels, value in _parse_exposition(
                render_registry(registry)
            )
            if name == "h_bucket"
        }
        counts = [
            parsed[(("le", edge),)] for edge in ("1", "2", "3", "+Inf")
        ]
        assert counts == sorted(counts)
        assert counts == [1.0, 2.0, 3.0, 3.0]


class TestRoundTrip:
    def test_registry_samples_survive_the_exposition_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("repro_applies_total", instance="svc-0000", outcome="applied")
        registry.inc("repro_applies_total", 2.0, instance="svc-0001", outcome="rejected")
        registry.set_gauge("repro_throughput_tps", 812.5, instance="svc-0000")
        registry.observe("repro_apply_backoff_seconds", 1.5)
        parsed = sorted(_parse_exposition(render_registry(registry)))
        expected = sorted(
            (s.name, s.labels, s.value) for s in registry.samples()
        )
        assert parsed == expected

    def test_render_counters_parses_cleanly(self):
        text = render_counters(
            {"svc-0000": {"memory": 3, "io": 1}}, tuning_requests_total=7
        )
        parsed = dict(
            ((name, labels), value)
            for name, labels, value in _parse_exposition(text)
        )
        assert parsed[
            (
                "repro_throttles_total",
                (("instance", "svc-0000"), ("knob_class", "io")),
            )
        ] == 1.0
        assert parsed[("repro_tuning_requests_total", ())] == 7.0


class TestDeterminism:
    def test_identical_registries_render_byte_identically(self):
        def build() -> str:
            registry = MetricsRegistry()
            registry.inc("b_total", instance="z")
            registry.inc("b_total", instance="a")
            registry.observe("a_seconds", 0.75)
            registry.set_gauge("c_level", 1.0)
            return render_registry(registry)

        assert build() == build()
