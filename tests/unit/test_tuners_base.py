"""Unit tests for the tuner base utilities (vectors, boosting)."""

import numpy as np
import pytest

from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners.base import (
    TuningRequest,
    boost_throttled_knobs,
    config_to_vector,
    vector_to_config,
)


class TestVectorEncoding:
    def test_roundtrip_defaults(self, pg_catalog):
        config = KnobConfiguration(pg_catalog)
        back = vector_to_config(config_to_vector(config), pg_catalog)
        for knob in pg_catalog:
            assert back[knob.name] == pytest.approx(config[knob.name], rel=1e-9)

    def test_log_scale_knobs_flagged(self, pg_catalog):
        assert pg_catalog.get("shared_buffers").log_scale
        assert pg_catalog.get("work_mem").log_scale
        assert not pg_catalog.get("checkpoint_completion_target").log_scale
        assert not pg_catalog.get("bgwriter_lru_maxpages").log_scale  # min 0

    def test_log_scaling_separates_small_values(self, pg_catalog):
        """16 MB vs 3 GB buffers must be far apart in tuning space."""
        small = KnobConfiguration(pg_catalog, {"shared_buffers": 16})
        big = KnobConfiguration(pg_catalog, {"shared_buffers": 3000})
        idx = pg_catalog.names().index("shared_buffers")
        gap = abs(
            config_to_vector(big)[idx] - config_to_vector(small)[idx]
        )
        assert gap > 0.5

    def test_wrong_length_rejected(self, pg_catalog):
        with pytest.raises(ValueError):
            vector_to_config(np.zeros(3), pg_catalog)


class TestBoostThrottledKnobs:
    def _request(self, pg_catalog, knobs, work_mem=4.0):
        return TuningRequest(
            "svc",
            "w",
            KnobConfiguration(pg_catalog, {"work_mem": work_mem}),
            MetricsDelta({}),
            throttle_class="memory",
            throttle_knobs=knobs,
        )

    def test_doubles_implicated_knob(self, pg_catalog):
        request = self._request(pg_catalog, ("work_mem",), work_mem=10.0)
        recommended = KnobConfiguration(pg_catalog, {"work_mem": 5.0})
        boosted = boost_throttled_knobs(recommended, request)
        assert boosted["work_mem"] == 20.0

    def test_keeps_higher_recommendation(self, pg_catalog):
        request = self._request(pg_catalog, ("work_mem",), work_mem=10.0)
        recommended = KnobConfiguration(pg_catalog, {"work_mem": 500.0})
        assert boost_throttled_knobs(recommended, request)["work_mem"] == 500.0

    def test_no_knobs_no_change(self, pg_catalog):
        request = self._request(pg_catalog, ())
        recommended = KnobConfiguration(pg_catalog)
        assert boost_throttled_knobs(recommended, request) is recommended

    def test_restart_required_knobs_untouched(self, pg_catalog):
        request = self._request(pg_catalog, ("shared_buffers",))
        recommended = KnobConfiguration(pg_catalog, {"shared_buffers": 64})
        assert (
            boost_throttled_knobs(recommended, request)["shared_buffers"] == 64
        )

    def test_non_memory_knobs_untouched(self, pg_catalog):
        request = self._request(pg_catalog, ("random_page_cost",))
        recommended = KnobConfiguration(pg_catalog, {"random_page_cost": 1.0})
        assert (
            boost_throttled_knobs(recommended, request)["random_page_cost"] == 1.0
        )

    def test_clamped_at_knob_maximum(self, pg_catalog):
        request = self._request(pg_catalog, ("work_mem",), work_mem=4000.0)
        recommended = KnobConfiguration(pg_catalog, {"work_mem": 4.0})
        boosted = boost_throttled_knobs(recommended, request)
        assert boosted["work_mem"] == pg_catalog.get("work_mem").max_value
