"""Unit tests for the deterministic parallel executor layer."""

import os
import pickle

import numpy as np
import pytest

from repro.common.rng import make_rng, stream_root, substream
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.parallel import (
    FleetExecutor,
    WorkerCrashed,
    merge_member_outputs,
    merge_registries,
    partition_members,
)


class TestSubstream:
    def test_member_streams_disjoint(self):
        # Different keys must give statistically independent streams; at
        # minimum the first draws of sibling members never collide.
        draws = [
            substream(0, "member", i).integers(0, 2**63) for i in range(64)
        ]
        assert len(set(draws)) == len(draws)

    def test_keyed_stream_stable(self):
        a = substream(42, "member", 7).random(5)
        b = substream(42, "member", 7).random(5)
        assert np.array_equal(a, b)

    def test_independent_of_sibling_construction_order(self):
        forward = [substream(1, "member", i).random() for i in range(8)]
        backward = [
            substream(1, "member", i).random() for i in reversed(range(8))
        ]
        assert forward == list(reversed(backward))

    def test_string_and_int_keys_differ(self):
        assert substream(0, "member", 1).random() != substream(0, 1, 1).random()

    def test_stream_root_passthrough_and_derivation(self):
        assert stream_root(123) == 123
        root = stream_root(make_rng(9))
        assert root == stream_root(make_rng(9))
        assert root != stream_root(make_rng(10))


class TestPartitionMembers:
    def test_balanced_contiguous_cover(self):
        shards = partition_members(10, 3)
        assert shards == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_more_shards_than_members(self):
        assert partition_members(2, 8) == [[0], [1]]

    def test_empty_fleet(self):
        assert partition_members(0, 4) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_members(-1, 2)
        with pytest.raises(ValueError):
            partition_members(4, 0)

    @pytest.mark.parametrize("n,k", [(1, 1), (7, 2), (80, 4), (13, 13)])
    def test_cover_is_exact(self, n, k):
        shards = partition_members(n, k)
        flat = [i for shard in shards for i in shard]
        assert flat == list(range(n))
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1


class TestMergeMemberOutputs:
    def test_sorts_by_member_index(self):
        merged = merge_member_outputs([[(3, "d"), (1, "b")], [(0, "a"), (2, "c")]])
        assert merged == [(0, "a"), (1, "b"), (2, "c"), (3, "d")]

    def test_associative_over_shard_grouping(self):
        outs = [[(i, i * 10)] for i in range(6)]
        grouped_a = [outs[0] + outs[1], outs[2] + outs[3] + outs[4], outs[5]]
        grouped_b = [outs[5] + outs[0], outs[3], outs[1] + outs[4] + outs[2]]
        assert merge_member_outputs(grouped_a) == merge_member_outputs(grouped_b)

    def test_duplicate_member_rejected(self):
        with pytest.raises(ValueError, match="more than one shard"):
            merge_member_outputs([[(0, "a")], [(0, "b")]])


def _dump_registry(reg):
    return sorted((s.name, s.labels, s.value) for s in reg.samples())


class TestMergeRegistries:
    def _registry(self, count, histogram_value):
        reg = MetricsRegistry()
        reg.inc("requests_total", value=count)
        reg.describe("latency_seconds", "histogram", buckets=(0.1, 1.0, 10.0))
        reg.observe("latency_seconds", histogram_value)
        return reg

    def test_counters_add_and_histograms_merge(self):
        merged = merge_registries(
            [self._registry(2, 0.05), self._registry(3, 5.0)]
        )
        samples = {(s.name, s.labels): s.value for s in merged.samples()}
        assert samples[("requests_total", ())] == 5.0
        assert samples[("latency_seconds_count", ())] == 2.0

    def test_merge_associative(self):
        def regs():
            return [self._registry(i + 1, float(i)) for i in range(3)]

        a, b = regs(), regs()
        left = merge_registries([merge_registries([a[0], a[1]]), a[2]])
        right = merge_registries([b[0], merge_registries([b[1], b[2]])])
        assert _dump_registry(left) == _dump_registry(right)

    def test_self_merge_rejected(self):
        reg = self._registry(1, 1.0)
        with pytest.raises(ValueError):
            reg.merge(reg)

    def test_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        a.describe("h", "histogram", buckets=(1.0, 2.0))
        a.observe("h", 1.0)
        b = MetricsRegistry()
        b.describe("h", "histogram", buckets=(1.0, 4.0))
        b.observe("h", 1.0)
        with pytest.raises(ValueError):
            a.merge(b)


class TestAbsorb:
    def _fragment(self, clock_s=10.0):
        frag = TraceRecorder()
        frag.advance(clock_s)
        with frag.span("member.window", member=3):
            frag.event("tde.throttle", knob="work_mem")
            with frag.span("tde.inspect"):
                frag.inc("tde_rounds_total")
        return frag

    def test_absorb_equals_inline(self):
        # Recording through a fragment then absorbing must give the same
        # spans/events/seq as recording inline on the main recorder.
        inline = TraceRecorder()
        inline.advance(10.0)
        with inline.span("member.window", member=3):
            inline.event("tde.throttle", knob="work_mem")
            with inline.span("tde.inspect"):
                inline.inc("tde_rounds_total")

        main = TraceRecorder()
        main.absorb(self._fragment())

        def dump(rec):
            return (
                [
                    (s.span_id, s.parent_id, s.name, s.start_sim_s, s.end_sim_s,
                     s.seq, s.end_seq, dict(s.attrs))
                    for s in rec.spans
                ],
                [(e.seq, e.name, e.time_s, dict(e.attrs)) for e in rec.events],
                _dump_registry(rec.metrics),
            )

        assert dump(main) == dump(inline)

    def test_absorb_nests_under_open_span(self):
        main = TraceRecorder()
        with main.span("landscape.window"):
            main.absorb(self._fragment())
        window = main.spans[0]
        assert window.name == "landscape.window"
        members = [s for s in main.spans if s.name == "member.window"]
        assert members[0].parent_id == window.span_id

    def test_absorb_rejects_open_fragment(self):
        frag = TraceRecorder()
        frag.span("left.open").__enter__()
        with pytest.raises(ValueError, match="open"):
            TraceRecorder().absorb(frag)

    def test_span_ids_stay_unique_and_seq_ordered(self):
        main = TraceRecorder()
        for clock in (5.0, 6.0):
            main.absorb(self._fragment(clock))
        ids = [s.span_id for s in main.spans]
        assert len(set(ids)) == len(ids)
        seqs = [s.seq for s in sorted(main.spans, key=lambda s: s.seq)]
        assert seqs == sorted(seqs)


def _square(x):
    return x * x


def _crash(x):
    os._exit(3)


def _raise(x):
    raise RuntimeError(f"boom on {x}")


class _CrashySessionWorker:
    def __init__(self, spec, indices):
        self.indices = indices

    def step(self, command):
        if command == "die":
            os._exit(7)
        return [(i, command) for i in self.indices]


def _crashy_factory(spec, indices):
    return _CrashySessionWorker(spec, indices)


class TestFleetExecutor:
    def test_workers_validation(self):
        with pytest.raises(ValueError):
            FleetExecutor(workers=0)

    def test_backend_selection(self):
        assert FleetExecutor().backend == "sequential"
        assert FleetExecutor(workers=3).backend == "process"

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_map_preserves_order(self, workers):
        result = FleetExecutor(workers=workers).map(_square, list(range(7)))
        assert result == [x * x for x in range(7)]

    def test_map_results_isolated(self):
        shared = {"k": [1, 2]}
        a, b = FleetExecutor().map(lambda _: shared, [0, 1])
        assert a == shared and b == shared
        assert a is not shared and a is not b
        assert a["k"] is not b["k"]

    def test_map_worker_exception_is_typed(self):
        with pytest.raises(WorkerCrashed) as info:
            FleetExecutor(workers=2).map(_raise, [1, 2, 3])
        assert "boom" in info.value.reason
        assert info.value.remote_traceback is not None

    def test_map_worker_hard_crash_is_typed_not_a_hang(self):
        with pytest.raises(WorkerCrashed) as info:
            FleetExecutor(workers=2).map(_crash, [1, 2, 3])
        assert info.value.shard == 0

    def test_session_step_merges_in_member_order(self):
        executor = FleetExecutor(workers=2)
        with executor.fleet_session(_crashy_factory, None, 5) as session:
            outs = session.step("tick")
        assert outs == [(i, "tick") for i in range(5)]

    def test_session_worker_crash_is_typed_not_a_hang(self):
        executor = FleetExecutor(workers=2)
        with executor.fleet_session(_crashy_factory, None, 4) as session:
            with pytest.raises(WorkerCrashed) as info:
                session.step("die")
        assert info.value.exitcode == 7

    def test_session_rejects_bad_partition(self):
        executor = FleetExecutor()
        with pytest.raises(ValueError, match="cover"):
            executor.fleet_session(_crashy_factory, None, 4, partition=[[0, 1]])
        with pytest.raises(ValueError, match="cover"):
            executor.fleet_session(
                _crashy_factory, None, 3, partition=[[0, 1], [1, 2]]
            )

    def test_session_custom_partition_same_outputs(self):
        executor = FleetExecutor()
        with executor.fleet_session(_crashy_factory, None, 4) as canonical:
            expected = canonical.step("x")
        with executor.fleet_session(
            _crashy_factory, None, 4, partition=[[3, 0], [2], [1]]
        ) as shuffled:
            assert shuffled.step("x") == expected

    def test_closed_session_rejects_step(self):
        executor = FleetExecutor()
        session = executor.fleet_session(_crashy_factory, None, 2)
        with session:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            session.step("x")


class TestWorkerCrashed:
    def test_message_carries_shard_and_exitcode(self):
        err = WorkerCrashed(2, "worker died", exitcode=-9)
        assert "shard 2" in str(err)
        assert "exit code -9" in str(err)
        assert pickle.loads(pickle.dumps(err)).shard == 2
