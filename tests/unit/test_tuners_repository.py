"""Unit tests for the central workload repository."""

import numpy as np
import pytest

from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners import TrainingSample, WorkloadRepository


def _sample(pg_catalog, wid="w0", tps=10.0, work_mem=4.0):
    return TrainingSample(
        wid,
        KnobConfiguration(pg_catalog, {"work_mem": work_mem}),
        MetricsDelta({"throughput_tps": tps, "wal_mb": tps * 2}),
    )


class TestStorage:
    def test_add_and_fetch(self, pg_catalog):
        repo = WorkloadRepository()
        repo.add(_sample(pg_catalog))
        assert repo.workload_ids() == ["w0"]
        assert repo.total_samples() == 1

    def test_unknown_workload_empty(self):
        repo = WorkloadRepository()
        assert repo.samples("nope") == []
        assert repo.dataset("nope").size == 0

    def test_dataset_matrices(self, pg_catalog):
        repo = WorkloadRepository()
        repo.add(_sample(pg_catalog, tps=1.0, work_mem=4))
        repo.add(_sample(pg_catalog, tps=2.0, work_mem=64))
        ds = repo.dataset("w0")
        assert ds.configs.shape == (2, len(pg_catalog))
        assert ds.metrics.shape == (2, len(repo.metric_names))
        assert ds.objective.tolist() == [1.0, 2.0]

    def test_all_metric_rows(self, pg_catalog):
        repo = WorkloadRepository()
        repo.add(_sample(pg_catalog, "a"))
        repo.add(_sample(pg_catalog, "b"))
        assert repo.all_metric_rows().shape[0] == 2


class TestQuality:
    def test_varied_samples_score_higher_than_flat(self, pg_catalog):
        repo = WorkloadRepository()
        for i in range(6):
            repo.add(_sample(pg_catalog, "varied", tps=10.0 * (i + 1)))
            repo.add(_sample(pg_catalog, "flat", tps=10.0))
        assert repo.quality_score("varied") > repo.quality_score("flat")

    def test_single_sample_scores_zero(self, pg_catalog):
        repo = WorkloadRepository()
        repo.add(_sample(pg_catalog))
        assert repo.quality_score("w0") == 0.0


class TestDerivedCache:
    def test_derived_entry_computes_once_per_version(self, pg_catalog):
        repo = WorkloadRepository()
        repo.add(_sample(pg_catalog))
        cache: dict = {}
        calls = []

        def compute():
            calls.append(1)
            return {"value": len(calls)}

        first = repo.derived_entry(cache, "k", repo.total_samples(), compute)
        second = repo.derived_entry(cache, "k", repo.total_samples(), compute)
        assert first is second
        assert len(calls) == 1

    def test_derived_entry_invalidates_on_version_bump(self, pg_catalog):
        repo = WorkloadRepository()
        repo.add(_sample(pg_catalog))
        cache: dict = {}
        calls = []
        repo.derived_entry(cache, "k", repo.total_samples(), lambda: calls.append(1))
        repo.add(_sample(pg_catalog, tps=20.0))
        repo.derived_entry(cache, "k", repo.total_samples(), lambda: calls.append(1))
        assert len(calls) == 2
        assert cache["k"][0] == repo.version

    def test_derived_entry_amortises_past_exact_limit(self, pg_catalog):
        repo = WorkloadRepository()
        repo.exact_refresh_limit = 2
        for _ in range(4):
            repo.add(_sample(pg_catalog))
        cache: dict = {}
        calls = []
        repo.derived_entry(cache, "k", repo.total_samples(), lambda: calls.append(1))
        # One bump at scale > exact limit: entry is served stale.
        repo.add(_sample(pg_catalog))
        repo.derived_entry(cache, "k", repo.total_samples(), lambda: calls.append(1))
        assert len(calls) == 1
        # Past stale_refresh_every bumps a refresh must fire.
        for _ in range(repo.stale_refresh_every):
            repo.add(_sample(pg_catalog))
        repo.derived_entry(cache, "k", repo.total_samples(), lambda: calls.append(1))
        assert len(calls) == 2

    def test_fresh_enough_exact_below_limit(self, pg_catalog):
        repo = WorkloadRepository()
        repo.add(_sample(pg_catalog))
        version = repo.version
        assert repo.fresh_enough(version, scale=1)
        repo.add(_sample(pg_catalog))
        assert not repo.fresh_enough(version, scale=1)

    def test_derived_cache_shared_across_consumers(self, pg_catalog):
        repo = WorkloadRepository()
        ns_a = repo.derived_cache.setdefault(("consumer", 1), {})
        ns_b = repo.derived_cache.setdefault(("consumer", 1), {})
        assert ns_a is ns_b
        other = repo.derived_cache.setdefault(("consumer", 2), {})
        assert other is not ns_a


class TestSync:
    def test_sync_pulls_missing(self, pg_catalog):
        src = WorkloadRepository()
        dst = WorkloadRepository()
        src.add(_sample(pg_catalog, "a"))
        src.add(_sample(pg_catalog, "a", tps=2.0))
        assert dst.sync_from(src) == 2
        assert dst.total_samples() == 2

    def test_sync_is_incremental(self, pg_catalog):
        src = WorkloadRepository()
        dst = WorkloadRepository()
        src.add(_sample(pg_catalog, "a"))
        dst.sync_from(src)
        src.add(_sample(pg_catalog, "a", tps=3.0))
        assert dst.sync_from(src) == 1
        assert dst.total_samples() == 2

    def test_sync_noop_when_current(self, pg_catalog):
        src = WorkloadRepository()
        dst = WorkloadRepository()
        src.add(_sample(pg_catalog))
        dst.sync_from(src)
        assert dst.sync_from(src) == 0
