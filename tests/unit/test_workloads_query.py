"""Unit tests for the query model."""

import numpy as np
import pytest

from repro.workloads.query import Query, QueryFamily, QueryFootprint, QueryType


class TestQueryType:
    def test_writes(self):
        assert QueryType.INSERT.is_write
        assert QueryType.UPDATE.is_write
        assert QueryType.INDEX_CREATE.is_write
        assert not QueryType.SELECT.is_write
        assert not QueryType.AGGREGATE.is_write

    def test_maintenance(self):
        assert QueryType.INDEX_CREATE.is_maintenance
        assert QueryType.DELETE.is_maintenance
        assert not QueryType.INSERT.is_maintenance


class TestQueryFootprint:
    def test_defaults_valid(self):
        fp = QueryFootprint()
        assert fp.sort_mb == 0.0
        assert fp.read_kb == 4.0

    def test_negative_resource_rejected(self):
        with pytest.raises(ValueError):
            QueryFootprint(sort_mb=-1.0)

    def test_parallel_fraction_bounds(self):
        with pytest.raises(ValueError):
            QueryFootprint(parallel_fraction=1.5)

    def test_planner_sensitivity_bounds(self):
        with pytest.raises(ValueError):
            QueryFootprint(planner_sensitivity=-0.1)

    def test_jittered_within_relative_bounds(self):
        fp = QueryFootprint(sort_mb=100.0, read_kb=1000.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            j = fp.jittered(rng, relative=0.1)
            assert 90.0 <= j.sort_mb <= 110.0
            assert 900.0 <= j.read_kb <= 1100.0

    def test_jittered_keeps_zero_at_zero(self):
        fp = QueryFootprint(sort_mb=0.0)
        j = fp.jittered(np.random.default_rng(0))
        assert j.sort_mb == 0.0


class TestQueryFamily:
    def _family(self):
        return QueryFamily(
            name="f",
            query_type=QueryType.SELECT,
            template="SELECT * FROM t WHERE id = %s",
            weight=1.0,
            footprint=QueryFootprint(),
            param_spec=("int",),
        )

    def test_instantiate_substitutes_params(self):
        q = self._family().instantiate(np.random.default_rng(0))
        assert "%s" not in q.text
        assert q.family == "f"

    def test_instantiate_is_query(self):
        q = self._family().instantiate(np.random.default_rng(0))
        assert isinstance(q, Query)
        assert not q.is_write

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            QueryFamily("f", QueryType.SELECT, "q", -1.0, QueryFootprint())

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            QueryFamily("", QueryType.SELECT, "q", 1.0, QueryFootprint())

    def test_unknown_param_kind_rejected(self):
        fam = QueryFamily(
            "f", QueryType.SELECT, "q %s", 1.0, QueryFootprint(), ("datetime",)
        )
        with pytest.raises(ValueError, match="param kind"):
            fam.instantiate(np.random.default_rng(0))
