"""Unit tests for the write-back scheduler (checkpointer/bgwriter/vacuum)."""

import numpy as np
import pytest

from repro.dbsim.bgwriter import WriteBackParams, WriteBackScheduler
from repro.dbsim.config import KnobConfiguration


class TestParams:
    def test_postgres_flush_rate(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)  # 100 pages * 8KB every 200 ms
        params = WriteBackParams.from_config(cfg)
        assert params.bg_flush_mb_s == pytest.approx(100 * 8 / 1024 * 5, rel=1e-6)
        assert params.checkpoint_interval_s == 300
        assert params.forced_dirty_limit_mb is None

    def test_mysql_has_forced_dirty_limit(self, my_catalog):
        cfg = KnobConfiguration(my_catalog)
        params = WriteBackParams.from_config(cfg)
        assert params.forced_dirty_limit_mb == pytest.approx(0.75 * 128)

    def test_faster_bgwriter_with_lower_delay(self, pg_catalog):
        slow = WriteBackParams.from_config(
            KnobConfiguration(pg_catalog, {"bgwriter_delay": 1000})
        )
        fast = WriteBackParams.from_config(
            KnobConfiguration(pg_catalog, {"bgwriter_delay": 50})
        )
        assert fast.bg_flush_mb_s > slow.bg_flush_mb_s


class TestScheduler:
    def test_timed_checkpoint_fires(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"checkpoint_timeout": 60})
        sched = WriteBackScheduler(vacuum_interval_s=10_000)
        result = sched.run_window(cfg, dirty_mb_total=600.0, duration_s=200)
        assert result.checkpoints_timed >= 2

    def test_wal_full_checkpoint_requested(self, pg_catalog):
        cfg = KnobConfiguration(
            pg_catalog, {"checkpoint_timeout": 3600, "max_wal_size": 64}
        )
        sched = WriteBackScheduler(vacuum_interval_s=10_000)
        result = sched.run_window(cfg, dirty_mb_total=2000.0, duration_s=120)
        assert result.checkpoints_requested >= 1

    def test_bgwriter_reduces_checkpoint_burden(self, pg_catalog):
        """A faster background writer leaves less for the checkpointer."""
        sched_slow = WriteBackScheduler(vacuum_interval_s=10_000)
        slow = sched_slow.run_window(
            KnobConfiguration(pg_catalog, {"bgwriter_lru_maxpages": 10}),
            dirty_mb_total=1200.0,
            duration_s=400,
        )
        sched_fast = WriteBackScheduler(vacuum_interval_s=10_000)
        fast = sched_fast.run_window(
            KnobConfiguration(pg_catalog, {"bgwriter_lru_maxpages": 1000}),
            dirty_mb_total=1200.0,
            duration_s=400,
        )
        assert fast.bgwriter_write_mb > slow.bgwriter_write_mb
        assert fast.checkpoint_write_mb < slow.checkpoint_write_mb

    def test_write_volume_conserved(self, pg_catalog):
        """All dirty MB eventually leave via bgwriter or checkpointer."""
        cfg = KnobConfiguration(pg_catalog, {"checkpoint_timeout": 50})
        sched = WriteBackScheduler(vacuum_interval_s=10**9)
        total_in = 500.0
        result = sched.run_window(cfg, dirty_mb_total=total_in, duration_s=300)
        total_out = (
            result.bgwriter_write_mb
            + result.checkpoint_write_mb
            + result.backend_write_mb
            + sched.dirty_backlog_mb
            + sched._active_rate_mb_s * sched._active_remaining_s
        )
        assert total_out == pytest.approx(total_in, rel=0.01)

    def test_backend_writes_on_backlog_overflow(self, pg_catalog):
        """Dirty pages beyond the buffer pool are flushed by backends."""
        cfg = KnobConfiguration(
            pg_catalog,
            {"checkpoint_timeout": 3600, "max_wal_size": 16_384,
             "bgwriter_lru_maxpages": 0, "shared_buffers": 128},
        )
        sched = WriteBackScheduler(vacuum_interval_s=10**9)
        result = sched.run_window(cfg, dirty_mb_total=1000.0, duration_s=100)
        assert result.backend_write_mb > 800.0
        assert sched.dirty_backlog_mb <= 0.9 * 128 + 1e-6

    def test_bigger_buffer_absorbs_more_dirty(self, pg_catalog):
        cfg_big = KnobConfiguration(
            pg_catalog,
            {"checkpoint_timeout": 3600, "max_wal_size": 16_384,
             "bgwriter_lru_maxpages": 0, "shared_buffers": 4096},
        )
        sched = WriteBackScheduler(vacuum_interval_s=10**9)
        result = sched.run_window(cfg_big, dirty_mb_total=1000.0, duration_s=100)
        assert result.backend_write_mb == 0.0

    def test_vacuum_fires_on_interval(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        sched = WriteBackScheduler(vacuum_interval_s=30, vacuum_write_mb=10.0)
        result = sched.run_window(cfg, dirty_mb_total=10.0, duration_s=100)
        assert len(result.vacuum_times) == 3
        assert result.vacuum_write_mb == pytest.approx(30.0)

    def test_state_persists_across_windows(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"checkpoint_timeout": 100})
        sched = WriteBackScheduler(vacuum_interval_s=10_000)
        first = sched.run_window(cfg, dirty_mb_total=50.0, duration_s=60)
        assert first.checkpoints_timed == 0
        second = sched.run_window(
            cfg, dirty_mb_total=50.0, duration_s=60, start_time_s=60.0
        )
        assert second.checkpoints_timed == 1

    def test_reset_clears_state(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        sched = WriteBackScheduler()
        sched.run_window(cfg, dirty_mb_total=100.0, duration_s=30)
        sched.reset()
        assert sched.dirty_backlog_mb == 0.0
        assert sched.wal_since_checkpoint_mb == 0.0

    def test_wal_written_with_amplification(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        sched = WriteBackScheduler(vacuum_interval_s=10_000)
        result = sched.run_window(cfg, dirty_mb_total=100.0, duration_s=50)
        assert float(np.sum(result.wal_write_mb_s)) == pytest.approx(110.0, rel=0.01)

    def test_invalid_inputs(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        sched = WriteBackScheduler()
        with pytest.raises(ValueError):
            sched.run_window(cfg, dirty_mb_total=-1.0, duration_s=10)
        with pytest.raises(ValueError):
            sched.run_window(cfg, dirty_mb_total=1.0, duration_s=0)
        with pytest.raises(ValueError):
            WriteBackScheduler(vacuum_interval_s=0)

    def test_checkpoint_spread_controls_burst(self, pg_catalog):
        """Higher completion target spreads checkpoint writes over longer."""
        sharp_cfg = KnobConfiguration(
            pg_catalog,
            {"checkpoint_timeout": 100, "checkpoint_completion_target": 0.1,
             "bgwriter_lru_maxpages": 0},
        )
        spread_cfg = KnobConfiguration(
            pg_catalog,
            {"checkpoint_timeout": 100, "checkpoint_completion_target": 0.9,
             "bgwriter_lru_maxpages": 0},
        )
        sharp = WriteBackScheduler(vacuum_interval_s=10**9).run_window(
            sharp_cfg, 400.0, 300
        )
        spread = WriteBackScheduler(vacuum_interval_s=10**9).run_window(
            spread_cfg, 400.0, 300
        )
        assert sharp.data_write_mb_s.max() > spread.data_write_mb_s.max()
