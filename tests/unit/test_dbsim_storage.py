"""Unit tests for the disk model."""

import numpy as np
import pytest

from repro.common.hardware import HDD, SSD
from repro.dbsim.storage import DiskSimulator, DiskTraffic


def _traffic(write_mb_s, seconds=10):
    t = DiskTraffic.zeros(seconds)
    t.write_mb_s[:] = write_mb_s
    t.write_iops[:] = write_mb_s / (8.0 / 1024.0)
    return t


class TestDiskTraffic:
    def test_zeros(self):
        t = DiskTraffic.zeros(5)
        assert t.seconds == 5
        assert t.write_mb_s.sum() == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DiskTraffic(
                read_mb_s=np.zeros(3),
                write_mb_s=np.zeros(4),
                read_iops=np.zeros(3),
                write_iops=np.zeros(3),
            )


class TestDiskSimulator:
    def test_idle_latency_is_base(self):
        sim = DiskSimulator(SSD)
        result = sim.simulate(DiskTraffic.zeros(5))
        assert result.write_latency.mean() == pytest.approx(SSD.base_latency_ms)

    def test_latency_rises_with_load(self):
        sim = DiskSimulator(SSD)
        light = sim.simulate(_traffic(10.0))
        heavy = sim.simulate(_traffic(200.0))
        assert heavy.write_latency.mean() > light.write_latency.mean()

    def test_utilisation_capped(self):
        sim = DiskSimulator(SSD)
        result = sim.simulate(_traffic(10_000.0))
        assert result.mean_utilisation <= 0.97 + 1e-9
        assert np.isfinite(result.write_latency.values).all()

    def test_hdd_slower_than_ssd(self):
        t = _traffic(20.0)
        hdd = DiskSimulator(HDD).simulate(t)
        ssd = DiskSimulator(SSD).simulate(t)
        assert hdd.write_latency.mean() > ssd.write_latency.mean()

    def test_read_latency_below_write_under_load(self):
        result = DiskSimulator(SSD).simulate(_traffic(150.0))
        assert result.read_latency.mean() < result.write_latency.mean()

    def test_noise_reproducible(self):
        t = _traffic(50.0)
        a = DiskSimulator(SSD).simulate(t, rng=np.random.default_rng(1))
        b = DiskSimulator(SSD).simulate(t, rng=np.random.default_rng(1))
        assert a.write_latency.values.tolist() == b.write_latency.values.tolist()

    def test_series_timestamps_offset(self):
        result = DiskSimulator(SSD).simulate(_traffic(1.0, seconds=3), start_time_s=100.0)
        assert result.iops.times.tolist() == [100.0, 101.0, 102.0]

    def test_iops_series_reports_demand(self):
        t = _traffic(8.0, seconds=4)  # 1024 write IOPS at 8 KB pages
        result = DiskSimulator(SSD).simulate(t)
        assert result.iops.mean() == pytest.approx(1024.0)
