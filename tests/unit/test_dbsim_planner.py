"""Unit tests for the planner cost model and latent optima."""

import numpy as np
import pytest

from repro.common.hardware import vm_type
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.planner import PlannerModel, latent_optimum
from repro.workloads.query import Query, QueryFootprint, QueryType


def _query(sort_mb=0.0, planner_sensitivity=0.5, parallel_fraction=0.0,
           maintenance_mb=0.0, temp_mb=0.0):
    return Query(
        "q",
        QueryType.SELECT,
        "SELECT 1",
        QueryFootprint(
            rows_examined=1000,
            read_kb=500.0,
            sort_mb=sort_mb,
            maintenance_mb=maintenance_mb,
            temp_mb=temp_mb,
            planner_sensitivity=planner_sensitivity,
            parallel_fraction=parallel_fraction,
        ),
    )


@pytest.fixture
def planner(pg_catalog):
    return PlannerModel("postgres", "tpcc", vm_type("m4.large"))


class TestLatentOptimum:
    def test_deterministic(self, pg_catalog):
        knob = pg_catalog.get("random_page_cost")
        assert latent_optimum("postgres", "tpcc", knob) == latent_optimum(
            "postgres", "tpcc", knob
        )

    def test_workload_dependent(self, pg_catalog):
        knob = pg_catalog.get("random_page_cost")
        assert latent_optimum("postgres", "tpcc", knob) != latent_optimum(
            "postgres", "ycsb", knob
        )

    def test_within_central_range(self, pg_catalog):
        for knob in pg_catalog:
            opt = latent_optimum("postgres", "anything", knob)
            span = knob.max_value - knob.min_value
            assert knob.min_value + 0.1 * span <= opt <= knob.min_value + 0.9 * span


class TestDistanceAndPenalty:
    def test_distance_zero_at_optimum(self, planner, pg_catalog):
        values = {
            k.name: latent_optimum("postgres", "tpcc", k)
            for k in planner.cost_knobs(KnobConfiguration(pg_catalog))
        }
        cfg = KnobConfiguration(pg_catalog, values)
        assert planner.distance(cfg) == pytest.approx(0.0, abs=1e-12)

    def test_distance_bounded(self, planner, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        assert 0.0 <= planner.distance(cfg) <= 1.0

    def test_penalty_scales_with_sensitivity(self, planner, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        assert planner.penalty(cfg, 0.0) == 1.0
        assert planner.penalty(cfg, 1.0) >= planner.penalty(cfg, 0.5)

    def test_moving_toward_optimum_reduces_cost(self, planner, pg_catalog):
        """The MDP's premise: cost falls as a knob approaches its optimum."""
        knob = pg_catalog.get("random_page_cost")
        optimum = latent_optimum("postgres", "tpcc", knob)
        far_value = knob.min_value if optimum > (knob.min_value + knob.max_value) / 2 else knob.max_value
        far = KnobConfiguration(pg_catalog, {"random_page_cost": far_value})
        near = KnobConfiguration(
            pg_catalog, {"random_page_cost": (far_value + optimum) / 2}
        )
        q = _query(planner_sensitivity=1.0)
        assert (
            planner.explain(q, near).total_cost
            < planner.explain(q, far).total_cost
        )


class TestParallelism:
    def test_no_speedup_for_serial_query(self, planner, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"max_parallel_workers_per_gather": 4})
        assert planner.parallel_speedup(cfg, 0.0) == 1.0

    def test_workers_help_parallel_fraction(self, planner, pg_catalog):
        none = KnobConfiguration(pg_catalog, {"max_parallel_workers_per_gather": 0})
        one = KnobConfiguration(pg_catalog, {"max_parallel_workers_per_gather": 1})
        assert planner.parallel_speedup(one, 0.8) > planner.parallel_speedup(none, 0.8)

    def test_oversubscription_penalised(self, planner, pg_catalog):
        """m4.large has 2 vCPUs: requesting 16 workers must not beat 1."""
        one = KnobConfiguration(pg_catalog, {"max_parallel_workers_per_gather": 1})
        many = KnobConfiguration(pg_catalog, {"max_parallel_workers_per_gather": 16})
        assert planner.parallel_speedup(many, 0.8) < planner.parallel_speedup(one, 0.8)

    def test_mysql_zero_concurrency_means_unlimited(self, my_catalog):
        planner = PlannerModel("mysql", "tpcc", vm_type("m4.xlarge"))
        cfg = KnobConfiguration(my_catalog, {"innodb_thread_concurrency": 0})
        assert planner.requested_workers(cfg) == 4


class TestExplain:
    def test_disk_flags_follow_allowances(self, planner, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"work_mem": 4})
        plan = planner.explain(_query(sort_mb=100.0), cfg)
        assert plan.uses_disk_sort
        assert plan.uses_disk
        assert plan.spilled_categories() == {"sort"}

    def test_no_disk_when_fits(self, planner, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"work_mem": 512})
        plan = planner.explain(_query(sort_mb=100.0), cfg)
        assert not plan.uses_disk

    def test_all_three_flags(self, planner, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        plan = planner.explain(
            _query(sort_mb=100.0, maintenance_mb=200.0, temp_mb=100.0), cfg
        )
        assert plan.spilled_categories() == {"sort", "maintenance", "temp"}

    def test_cost_noise_reproducible(self, planner, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        q = _query()
        a = planner.explain(q, cfg, rng=np.random.default_rng(3))
        b = planner.explain(q, cfg, rng=np.random.default_rng(3))
        assert a.total_cost == b.total_cost

    def test_workers_planned_only_for_parallel(self, planner, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"max_parallel_workers_per_gather": 2})
        assert planner.explain(_query(parallel_fraction=0.5), cfg).planned_workers == 2
        assert planner.explain(_query(parallel_fraction=0.0), cfg).planned_workers == 0
