"""The divergence-mutant corpus: every seeded parity bug must be flagged.

`tests/fixtures/mutants/` holds fixture copies of real executor/reducer
code with injected bugs that break byte-identical parity across worker
counts — bugs that, before the interprocedural analyzer, only the
runtime serial-vs-parallel byte-diff in CI could catch. Each mutant file
declares the rule that must fire via a `# repro-mutant: RNNN` marker.

This suite is the analyzer's ground truth:

* **no false negatives** — `repro lint --deep` flags every mutant with
  its marked rule, in that file;
* **shallow blindness** — R001–R008 stay silent on the corpus, proving
  these bugs genuinely require whole-program analysis;
* **corpus depth** — at least two mutants per deep rule.
"""

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import Linter

REPO_ROOT = Path(__file__).resolve().parents[2]
MUTANT_DIR = REPO_ROOT / "tests" / "fixtures" / "mutants"
_MARKER = re.compile(r"#\s*repro-mutant:\s*(R\d{3})")

DEEP_RULES = ("R009", "R010", "R011", "R012")


def _mutants() -> dict[Path, str]:
    """Mutant file -> rule id that must fire on it."""
    out = {}
    for path in sorted(MUTANT_DIR.glob("m_*.py")):
        match = _MARKER.search(path.read_text())
        assert match, f"{path.name} is missing its '# repro-mutant:' marker"
        out[path] = match.group(1)
    return out


@pytest.fixture(scope="module")
def deep_findings():
    """One deep lint run over the whole corpus (index built once)."""
    linter = Linter(root=REPO_ROOT, deep=True)
    return linter.lint_paths([MUTANT_DIR])


class TestCorpusShape:
    def test_at_least_two_mutants_per_deep_rule(self):
        counts = Counter(_mutants().values())
        for rule in DEEP_RULES:
            assert counts[rule] >= 2, f"{rule} has {counts[rule]} mutant(s)"

    def test_markers_only_name_deep_rules(self):
        assert set(_mutants().values()) <= set(DEEP_RULES)


class TestNoFalseNegatives:
    def test_every_mutant_flagged_by_its_rule(self, deep_findings):
        by_file = {}
        for finding in deep_findings:
            by_file.setdefault(finding.path.name, set()).add(finding.rule)
        for path, rule in _mutants().items():
            hit = by_file.get(path.name, set())
            assert rule in hit, (
                f"{path.name}: expected {rule}, deep lint found {sorted(hit)}"
            )

    def test_findings_stay_inside_the_corpus(self, deep_findings):
        # Self-contained mutants: the bug is reported in the mutant file,
        # never displaced into the repro package the corpus imports.
        for finding in deep_findings:
            assert "mutants" in finding.path.parts, finding.render()

    def test_no_offmark_rules_fire(self, deep_findings):
        expected = _mutants()
        by_file = {p.name: r for p, r in expected.items()}
        for finding in deep_findings:
            assert finding.rule == by_file[finding.path.name], finding.render()


class TestShallowBlindness:
    def test_shallow_rules_silent_on_corpus(self):
        linter = Linter(root=REPO_ROOT)  # deep off: R001-R008 only
        assert linter.lint_paths([MUTANT_DIR]) == []
