"""Unit tests for repro.common.stats."""

import pytest

from repro.common.stats import exponential_moving_average, percentile


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_p99_of_uniform(self):
        values = list(range(101))
        assert percentile(values, 99) == pytest.approx(99.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestEMA:
    def test_alpha_one_is_identity(self):
        assert exponential_moving_average([1.0, 5.0, 2.0], 1.0) == [1.0, 5.0, 2.0]

    def test_smoothing(self):
        out = exponential_moving_average([0.0, 10.0], 0.5)
        assert out == [0.0, 5.0]

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            exponential_moving_average([1.0], 0.0)

    def test_empty_input(self):
        assert exponential_moving_average([], 0.5) == []
