"""Unit tests for reservoir sampling."""

import pytest

from repro.workloads.sampling import ReservoirSampler


class TestReservoirBasics:
    def test_fills_to_capacity(self):
        r = ReservoirSampler(5, seed=0)
        r.observe_many(range(3))
        assert sorted(r.sample) == [0, 1, 2]

    def test_capacity_bound(self):
        r = ReservoirSampler(5, seed=0)
        r.observe_many(range(100))
        assert len(r) == 5
        assert r.seen == 100

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    def test_reset(self):
        r = ReservoirSampler(3, seed=0)
        r.observe_many(range(10))
        r.reset()
        assert len(r) == 0
        assert r.seen == 0

    def test_sample_is_copy(self):
        r = ReservoirSampler(3, seed=0)
        r.observe_many(range(3))
        r.sample.append(99)
        assert 99 not in r.sample


class TestReservoirUniformity:
    def test_roughly_uniform_inclusion(self):
        """Every item should appear with probability ~k/n across trials."""
        n, k, trials = 50, 10, 400
        counts = [0] * n
        for t in range(trials):
            r = ReservoirSampler(k, seed=t)
            r.observe_many(range(n))
            for item in r.sample:
                counts[item] += 1
        expected = trials * k / n  # = 80
        for c in counts:
            assert 0.5 * expected < c < 1.6 * expected

    def test_late_items_can_enter(self):
        r = ReservoirSampler(10, seed=1)
        r.observe_many(range(1000))
        assert any(item >= 500 for item in r.sample)
