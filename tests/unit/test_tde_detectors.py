"""Unit tests for the three TDE detectors."""

import pytest

from repro.core.tde import (
    BgwriterThrottleDetector,
    MemoryThrottleDetector,
    PlannerThrottleDetector,
    checkpoint_latency_ratio,
)
from repro.dbsim import KnobClass, SimulatedDatabase
from repro.tuners import TrainingSample, WorkloadRepository
from repro.workloads import AdulteratedTPCCWorkload, TPCCWorkload, YCSBWorkload


class TestMemoryDetector:
    def test_spilling_workload_raises_memory_throttle(self):
        db = SimulatedDatabase("postgres", "m4.large", 21.0, seed=1)
        detector = MemoryThrottleDetector("svc", seed=2)
        workload = AdulteratedTPCCWorkload(0.8, seed=3)
        result = db.run(workload.batch(30.0))
        report = detector.inspect(db, result)
        working_area = [
            t for t in report.throttles if not t.requires_restart
        ]
        assert working_area
        assert working_area[0].knob_class is KnobClass.MEMORY
        assert "work_mem" in working_area[0].knobs

    def test_fitting_workload_no_working_area_throttle(self):
        db = SimulatedDatabase("postgres", "m4.xlarge", 2.0, seed=1)
        db.config = db.config.with_values({"shared_buffers": 1024})
        detector = MemoryThrottleDetector("svc", seed=2)
        result = db.run(YCSBWorkload(rps=100.0, data_size_gb=2.0, seed=3).batch(30.0))
        report = detector.inspect(db, result)
        assert report.throttles == []

    def test_buffer_gauging_raises_restart_throttle(self):
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=1)
        detector = MemoryThrottleDetector("svc", seed=2)
        result = db.run(
            YCSBWorkload(rps=5000.0, data_size_gb=26.0, seed=3).batch(30.0)
        )
        report = detector.inspect(db, result)
        restart = [t for t in report.throttles if t.requires_restart]
        assert restart
        assert restart[0].knobs == ("shared_buffers",)

    def test_buffer_gauging_suppressed_for_write_heavy(self):
        """Bulk-ingest windows do not implicate the buffer pool."""
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=1)
        detector = MemoryThrottleDetector("svc", seed=2)
        result = db.run(TPCCWorkload(seed=3).batch(30.0))
        report = detector.inspect(db, result)
        assert not [t for t in report.throttles if t.requires_restart]

    def test_escalation_when_knobs_at_cap(self):
        """Undersized VM + maxed knobs + even classes ⇒ plan upgrade."""
        db = SimulatedDatabase("postgres", "t2.small", 21.0, seed=1)
        # Push the working-area knobs to everything the VM budget allows
        # (the repair scales them to exactly fill the remaining budget).
        db.config = db.config.with_values(
            {"work_mem": 4096, "maintenance_work_mem": 8192, "temp_buffers": 2048}
        ).fitted_to_budget(db.vm.db_memory_limit_mb, db.active_connections)
        detector = MemoryThrottleDetector("svc", seed=2)
        workload = AdulteratedTPCCWorkload(0.8, seed=3)
        escalated = False
        for _ in range(12):
            result = db.run(workload.batch(20.0))
            report = detector.inspect(db, result)
            if report.escalations:
                escalated = True
                break
        assert escalated

    def test_no_escalation_when_knobs_small(self):
        db = SimulatedDatabase("postgres", "m4.xlarge", 21.0, seed=1)
        detector = MemoryThrottleDetector("svc", seed=2)
        workload = AdulteratedTPCCWorkload(0.8, seed=3)
        for _ in range(12):
            result = db.run(workload.batch(20.0))
            report = detector.inspect(db, result)
            assert not report.escalations


class TestCheckpointRatio:
    def test_pressure_formula(self):
        # (checkpoint write MB / WAL MB) × latency — see the detector's
        # deviation note.
        assert checkpoint_latency_ratio(60.0, 120.0, 2.0) == pytest.approx(1.0)

    def test_zero_latency_gives_zero(self):
        assert checkpoint_latency_ratio(50.0, 60.0, 0.0) == 0.0

    def test_empty_checkpoints_are_harmless(self):
        # An idle timed checkpoint that wrote nothing scores zero.
        assert checkpoint_latency_ratio(0.0, 5.0, 20.0) == 0.0

    def test_tiny_wal_floored(self):
        # A near-idle window cannot divide by ~zero WAL.
        assert checkpoint_latency_ratio(2.0, 0.0, 2.0) == pytest.approx(4.0)

    def test_load_invariance(self):
        """Same write-back quality at 4x the load scores the same."""
        low = checkpoint_latency_ratio(20.0, 100.0, 1.5)
        high = checkpoint_latency_ratio(80.0, 400.0, 1.5)
        assert high == pytest.approx(low)


class TestBgwriterDetector:
    def _repo_with_good_baseline(self, pg_catalog):
        """Repository whose best tpcc sample checkpoints calmly."""
        from repro.dbsim.config import KnobConfiguration
        from repro.dbsim.metrics import MetricsDelta

        repo = WorkloadRepository()
        good = MetricsDelta(
            {
                "throughput_tps": 3000.0,
                "checkpoints_timed": 1.0,
                "checkpoints_requested": 0.0,
                "buffers_checkpoint_mb": 80.0,
                "disk_write_latency_ms": 6.5,
                "wal_mb": 800.0,
            }
        )
        repo.add(TrainingSample("tpcc", KnobConfiguration(pg_catalog), good))
        return repo

    def test_no_baseline_no_throttle(self, pg_db, tpcc):
        detector = BgwriterThrottleDetector("svc", WorkloadRepository())
        result = pg_db.run(tpcc.batch(30.0))
        assert detector.inspect(result) == []

    def test_bad_checkpointing_throttles(self, pg_catalog):
        repo = self._repo_with_good_baseline(pg_catalog)
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=4)
        # Force frantic checkpointing on the live system.
        db.config = db.config.with_values(
            {"checkpoint_timeout": 30, "max_wal_size": 64}
        )
        detector = BgwriterThrottleDetector("svc", repo, window_s=60.0)
        result = db.run(TPCCWorkload(seed=5).batch(60.0))
        throttles = detector.inspect(result)
        assert throttles
        assert throttles[0].knob_class is KnobClass.BGWRITER
        assert "checkpoint_timeout" in throttles[0].knobs

    def test_calm_checkpointing_quiet(self, pg_catalog):
        repo = self._repo_with_good_baseline(pg_catalog)
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=4)
        db.config = db.config.with_values(
            {"checkpoint_timeout": 3600, "max_wal_size": 16_384,
             "shared_buffers": 4096, "bgwriter_lru_maxpages": 1000,
             "bgwriter_delay": 50}
        )
        detector = BgwriterThrottleDetector("svc", repo, window_s=60.0)
        result = db.run(TPCCWorkload(rps=300.0, seed=5).batch(60.0))
        assert detector.inspect(result) == []


class TestPlannerDetector:
    def test_probe_finds_profit_away_from_optimum(self):
        db = SimulatedDatabase("postgres", "m4.large", 20.0, seed=6)
        detector = PlannerThrottleDetector.for_database("svc", db, seed=7)
        workload = TPCCWorkload(seed=8)
        result = db.run(workload.batch(30.0))
        throttled = []
        for _ in range(8):
            throttled.extend(detector.inspect(db, result))
        assert throttled
        assert throttled[0].knob_class is KnobClass.ASYNC_PLANNER

    def test_no_queries_no_probe(self):
        db = SimulatedDatabase("postgres", "m4.large", 20.0, seed=6)
        detector = PlannerThrottleDetector.for_database("svc", db, seed=7)
        assert detector.probe(db, []) == []

    def test_episode_shape(self):
        db = SimulatedDatabase("postgres", "m4.large", 20.0, seed=6)
        detector = PlannerThrottleDetector.for_database("svc", db, seed=7)
        queries = TPCCWorkload(seed=8).batch(10.0).sampled_queries[:16]
        episode = detector.run_episode(db, queries, steps=60)
        # Knobs park once converged, so probing may stop early; the
        # reward curve is always padded to the full episode length.
        assert 0 < episode.steps <= 60
        assert len(episode.reward_curve) == 60
        assert 0.0 <= episode.accuracy <= 1.0

    def test_learning_improves_accuracy(self):
        """Fig. 6: later episodes reward more often than the first."""
        db = SimulatedDatabase("postgres", "m4.large", 20.0, seed=6)
        detector = PlannerThrottleDetector.for_database("svc", db, seed=7)
        queries = TPCCWorkload(seed=8).batch(10.0).sampled_queries[:16]
        first = detector.run_episode(db, queries, steps=150)
        for _ in range(2):
            detector.run_episode(db, queries, steps=150)
        last = detector.run_episode(db, queries, steps=150)
        assert last.accuracy >= first.accuracy

    def test_empty_episode_rejected(self):
        db = SimulatedDatabase("postgres", "m4.large", 20.0, seed=6)
        detector = PlannerThrottleDetector.for_database("svc", db, seed=7)
        with pytest.raises(ValueError):
            detector.run_episode(db, [], steps=10)
