"""Unit tests for the director's throttle-directed knob floors."""

from repro.core.director import ConfigDirector, LeastLoadedBalancer, TunerInstance
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners import Recommendation, TuningRequest
from repro.tuners.base import Tuner


class _RegressingTuner(Tuner):
    """Always recommends tiny working areas (an indifferent surrogate)."""

    name = "regressor"

    def __init__(self, catalog):
        self.catalog = catalog

    def observe(self, sample):
        pass

    def recommend(self, request):
        config = request.config.with_values(
            {"work_mem": 1, "maintenance_work_mem": 8}
        )
        return Recommendation(request.instance_id, config, self.name)

    def recommendation_cost_s(self):
        return 1.0


def _request(pg_catalog, knobs=(), work_mem=4.0, cls="memory"):
    return TuningRequest(
        "svc-1",
        "w",
        KnobConfiguration(pg_catalog, {"work_mem": work_mem}),
        MetricsDelta({}),
        throttle_class=cls if knobs else None,
        throttle_knobs=knobs,
    )


def _director(pg_catalog):
    return ConfigDirector(
        LeastLoadedBalancer([TunerInstance("t0", _RegressingTuner(pg_catalog))])
    )


class TestKnobFloors:
    def test_throttle_raises_floor_over_regression(self, pg_catalog):
        director = _director(pg_catalog)
        split = director.handle_tuning_request(
            _request(pg_catalog, ("work_mem",), work_mem=16.0)
        )
        # The tuner said 1 MB; the floor (2 x current) wins.
        assert split.reloadable["work_mem"] == 32.0

    def test_floor_persists_across_requests(self, pg_catalog):
        director = _director(pg_catalog)
        director.handle_tuning_request(
            _request(pg_catalog, ("work_mem",), work_mem=16.0)
        )
        # Next request throttles on a different knob; work_mem keeps its floor.
        split = director.handle_tuning_request(
            _request(pg_catalog, ("maintenance_work_mem",), work_mem=32.0)
        )
        assert split.reloadable["work_mem"] >= 32.0
        assert split.reloadable["maintenance_work_mem"] >= 128.0

    def test_floors_grow_monotonically(self, pg_catalog):
        director = _director(pg_catalog)
        for work_mem in (4.0, 8.0, 16.0):
            split = director.handle_tuning_request(
                _request(pg_catalog, ("work_mem",), work_mem=work_mem)
            )
        assert split.reloadable["work_mem"] == 32.0

    def test_non_memory_throttles_do_not_floor(self, pg_catalog):
        director = _director(pg_catalog)
        split = director.handle_tuning_request(
            _request(
                pg_catalog, ("random_page_cost",), cls="async_planner"
            )
        )
        assert split.reloadable["work_mem"] == 1.0  # tuner's value, unfloored

    def test_requests_without_throttles_do_not_floor(self, pg_catalog):
        director = _director(pg_catalog)
        split = director.handle_tuning_request(_request(pg_catalog))
        assert split.reloadable["work_mem"] == 1.0


class TestFloorClassFilter:
    def test_mixed_class_throttle_floors_only_memory_knobs(self, pg_catalog):
        """A memory throttle whose knob list unions a planner knob must
        not ratchet the planner knob."""
        director = _director(pg_catalog)
        split = director.handle_tuning_request(
            _request(pg_catalog, ("work_mem", "random_page_cost"), work_mem=16.0)
        )
        assert split.reloadable["work_mem"] == 32.0
        floors = director._knob_floors["svc-1"]
        assert "random_page_cost" not in floors
