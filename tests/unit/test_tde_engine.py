"""Unit tests for the composed Throttling Detection Engine."""

import pytest

from repro.core.tde import ThrottlingDetectionEngine
from repro.dbsim import KnobClass, SimulatedDatabase
from repro.tuners import WorkloadRepository
from repro.workloads import AdulteratedTPCCWorkload, TPCCWorkload


@pytest.fixture
def tde_db():
    return SimulatedDatabase("postgres", "m4.large", 21.0, seed=11)


class TestComposition:
    def test_inspect_aggregates_detectors(self, tde_db):
        tde = ThrottlingDetectionEngine("svc", tde_db, WorkloadRepository(), seed=1)
        workload = AdulteratedTPCCWorkload(0.8, seed=2)
        report = tde.inspect(tde_db.run(workload.batch(30.0)))
        assert KnobClass.MEMORY in report.classes()

    def test_log_accumulates(self, tde_db):
        tde = ThrottlingDetectionEngine("svc", tde_db, WorkloadRepository(), seed=1)
        workload = AdulteratedTPCCWorkload(0.8, seed=2)
        for _ in range(3):
            tde.inspect(tde_db.run(workload.batch(20.0)))
        assert len(tde.log) >= 3
        counts = tde.log.count_by_class()
        assert counts[KnobClass.MEMORY] >= 3

    def test_enabled_classes_restrict(self, tde_db):
        tde = ThrottlingDetectionEngine(
            "svc",
            tde_db,
            WorkloadRepository(),
            enabled_classes={KnobClass.BGWRITER},
            seed=1,
        )
        workload = AdulteratedTPCCWorkload(0.8, seed=2)
        report = tde.inspect(tde_db.run(workload.batch(30.0)))
        assert KnobClass.MEMORY not in report.classes()
        assert KnobClass.ASYNC_PLANNER not in report.classes()

    def test_planner_trigger_interval(self, tde_db):
        """The planner probe only runs every N-th window (§3.3's 2–4 min)."""
        tde = ThrottlingDetectionEngine(
            "svc",
            tde_db,
            WorkloadRepository(),
            enabled_classes={KnobClass.ASYNC_PLANNER},
            planner_trigger_every=3,
            seed=1,
        )
        workload = TPCCWorkload(seed=2)
        probes_before = len(tde.planner_detector.automata["random_page_cost"].history)
        for _ in range(6):
            tde.inspect(tde_db.run(workload.batch(20.0)))
        probes_after = len(tde.planner_detector.automata["random_page_cost"].history)
        assert probes_after - probes_before == 2

    def test_invalid_trigger_interval(self, tde_db):
        with pytest.raises(ValueError):
            ThrottlingDetectionEngine(
                "svc", tde_db, planner_trigger_every=0
            )


class TestNeedsTuning:
    def test_restart_only_throttles_do_not_request(self, tde_db):
        """Buffer-gauging throttles wait for downtime (§3.1)."""
        from repro.workloads import YCSBWorkload

        tde = ThrottlingDetectionEngine(
            "svc",
            tde_db,
            WorkloadRepository(),
            enabled_classes={KnobClass.MEMORY},
            seed=1,
        )
        workload = YCSBWorkload(rps=5000.0, data_size_gb=21.0, seed=2)
        report = tde.inspect(tde_db.run(workload.batch(30.0)))
        assert report.throttles  # buffer gauging fires
        assert all(t.requires_restart for t in report.throttles)
        assert not report.needs_tuning
        assert report.restart_required_throttles == report.throttles

    def test_working_area_throttles_request(self, tde_db):
        tde = ThrottlingDetectionEngine(
            "svc",
            tde_db,
            WorkloadRepository(),
            enabled_classes={KnobClass.MEMORY},
            seed=1,
        )
        workload = AdulteratedTPCCWorkload(0.8, seed=2)
        report = tde.inspect(tde_db.run(workload.batch(30.0)))
        assert report.needs_tuning
