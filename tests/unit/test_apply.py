"""Unit tests for the apply pipeline: adapters, DFA, orchestrator,
reconciler, restart strategies, non-tunable policy."""

import pytest

from repro.cloud import Provisioner
from repro.core.apply import (
    DataFederationAgent,
    FullRestartStrategy,
    NonTunableKnobPolicy,
    PeriodicReloadDriver,
    Reconciler,
    ReloadSignalStrategy,
    ServiceOrchestrator,
    SocketActivationStrategy,
    adapter_for,
)
from repro.core.director import ConfigRepository
from repro.dbsim import KnobConfiguration, ReplicatedService, SimulatedDatabase
from repro.workloads import TPCCWorkload


def _bad_config(config):
    return config.with_values({"shared_buffers": 60_000, "work_mem": 4_000})


class TestAdapters:
    def test_adapter_for(self):
        assert adapter_for("postgres").flavor == "postgres"
        assert adapter_for("mysql").flavor == "mysql"
        with pytest.raises(ValueError):
            adapter_for("oracle")

    def test_apply_success(self, pg_db):
        adapter = adapter_for("postgres")
        result = adapter.apply(pg_db, pg_db.config.with_values({"work_mem": 32}))
        assert result.ok and not result.crashed
        assert pg_db.config["work_mem"] == 32

    def test_apply_crash_reported_not_raised(self, pg_db):
        adapter = adapter_for("postgres")
        result = adapter.apply(pg_db, _bad_config(pg_db.config), mode="restart")
        assert result.crashed and not result.ok
        assert "MB" in result.error

    def test_wrong_flavor_rejected(self, my_db):
        with pytest.raises(ValueError):
            adapter_for("postgres").apply(my_db, my_db.config)

    def test_read_config(self, pg_db):
        assert adapter_for("postgres").read_config(pg_db) == pg_db.config


class TestDFA:
    def test_slave_first_apply_success(self):
        service = ReplicatedService("postgres", "m4.large", 20.0, replicas=2, seed=1)
        report = DataFederationAgent().apply(
            service, service.config.with_values({"work_mem": 64})
        )
        assert report.applied
        assert report.nodes_updated == 3
        assert service.configs_consistent()
        assert service.master.config["work_mem"] == 64

    def test_slave_crash_rejects_and_protects_master(self):
        """§4: crash on the slave ⇒ recommendation rejected, master safe."""
        service = ReplicatedService("postgres", "m4.large", 20.0, replicas=1, seed=1)
        report = DataFederationAgent().apply(
            service, _bad_config(service.config), mode="restart"
        )
        assert not report.applied
        assert report.rejected_at == "slave0"
        assert report.healed_slaves == [0]
        assert not service.master.crashed
        assert service.master.config["shared_buffers"] == 128

    def test_no_slaves_applies_to_master_directly(self):
        service = ReplicatedService("postgres", "m4.large", 20.0, replicas=0, seed=1)
        report = DataFederationAgent().apply(
            service, service.config.with_values({"work_mem": 99})
        )
        assert report.applied
        assert report.nodes_updated == 1

    def test_reload_skips_restart_knobs_reported(self):
        service = ReplicatedService("postgres", "m4.large", 20.0, replicas=1, seed=1)
        report = DataFederationAgent().apply(
            service, service.config.with_values({"shared_buffers": 4096})
        )
        assert report.applied
        assert "shared_buffers" in report.skipped_restart_required


class TestOrchestrator:
    def _registered(self):
        orch = ServiceOrchestrator(downtime_period_s=100.0)
        deployment = Provisioner(seed=1).provision(plan="m4.large")
        orch.register(deployment)
        return orch, deployment

    def test_register_persists_current_config(self):
        orch, d = self._registered()
        assert orch.persisted_config(d.instance_id) == d.service.master.config

    def test_credentials_served(self):
        orch, d = self._registered()
        assert orch.credentials(d.instance_id) == d.credentials

    def test_unknown_instance(self):
        orch = ServiceOrchestrator()
        with pytest.raises(KeyError):
            orch.deployment("nope")

    def test_redeploy_applies_persisted_config(self):
        orch, d = self._registered()
        new = d.service.master.config.with_values({"shared_buffers": 2048})
        orch.persist_config(d.instance_id, new)
        orch.redeploy(d.instance_id)
        assert all(n.config["shared_buffers"] == 2048 for n in d.service.nodes)

    def test_downtime_scheduling(self):
        orch, d = self._registered()
        assert not orch.downtime_due(d.instance_id, 50.0)
        assert orch.downtime_due(d.instance_id, 100.0)
        orch.record_downtime(d.instance_id, 100.0)
        assert not orch.downtime_due(d.instance_id, 150.0)
        assert orch.last_downtime_s(d.instance_id) == 100.0


class TestReconciler:
    def _setup(self):
        orch = ServiceOrchestrator()
        deployment = Provisioner(seed=2).provision(plan="m4.large", replicas=1)
        orch.register(deployment)
        return orch, deployment

    def test_no_drift_no_action(self):
        orch, d = self._setup()
        rec = Reconciler(orch, watcher_timeout_s=60.0)
        action = rec.tick(d.instance_id, d.service, now_s=0.0)
        assert not action.drift_detected

    def test_drift_within_timeout_not_reconciled(self):
        orch, d = self._setup()
        rec = Reconciler(orch, watcher_timeout_s=60.0)
        d.service.master.config = d.service.master.config.with_values({"work_mem": 77})
        action = rec.tick(d.instance_id, d.service, now_s=0.0)
        assert action.drift_detected and not action.reconciled

    def test_drift_past_timeout_rolls_back(self):
        """§4: stale drift ⇒ persisted config applied to all nodes."""
        orch, d = self._setup()
        rec = Reconciler(orch, watcher_timeout_s=60.0)
        d.service.master.config = d.service.master.config.with_values({"work_mem": 77})
        rec.tick(d.instance_id, d.service, now_s=0.0)
        action = rec.tick(d.instance_id, d.service, now_s=61.0)
        assert action.reconciled
        assert d.service.master.config["work_mem"] == 4
        assert d.service.configs_consistent()

    def test_drift_clears_if_resolved(self):
        orch, d = self._setup()
        rec = Reconciler(orch, watcher_timeout_s=60.0)
        original = d.service.master.config
        d.service.master.config = original.with_values({"work_mem": 77})
        rec.tick(d.instance_id, d.service, now_s=0.0)
        d.service.master.config = original
        action = rec.tick(d.instance_id, d.service, now_s=30.0)
        assert not action.drift_detected
        # New drift restarts the clock.
        d.service.master.config = original.with_values({"work_mem": 88})
        action = rec.tick(d.instance_id, d.service, now_s=40.0)
        assert action.drift_age_s == 0.0

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            Reconciler(ServiceOrchestrator(), watcher_timeout_s=0.0)


class TestRestartStrategies:
    def test_reload_strategy_keeps_iops_steady(self):
        """Fig. 7: reload every 20 s ≈ no reloads at all."""
        db_plain = SimulatedDatabase("mysql", "m4.large", 26.0, seed=3)
        db_reload = SimulatedDatabase("mysql", "m4.large", 26.0, seed=3)
        workload_a = TPCCWorkload(rps=400.0, seed=4)
        workload_b = TPCCWorkload(rps=400.0, seed=4)
        plain = PeriodicReloadDriver(db_plain, workload_a, None, 20.0).run(200.0)
        reloaded = PeriodicReloadDriver(
            db_reload, workload_b, ReloadSignalStrategy(), 20.0
        ).run(200.0)
        assert reloaded.reloads_fired == 9
        assert reloaded.mean_tps == pytest.approx(plain.mean_tps, rel=0.03)

    def test_socket_activation_degrades(self):
        db_reload = SimulatedDatabase("mysql", "m4.large", 26.0, seed=3)
        db_socket = SimulatedDatabase("mysql", "m4.large", 26.0, seed=3)
        reload_run = PeriodicReloadDriver(
            db_reload, TPCCWorkload(rps=400.0, seed=4), ReloadSignalStrategy(), 20.0
        ).run(200.0)
        socket_run = PeriodicReloadDriver(
            db_socket, TPCCWorkload(rps=400.0, seed=4), SocketActivationStrategy(), 20.0
        ).run(200.0)
        assert socket_run.mean_tps < reload_run.mean_tps * 0.9

    def test_full_restart_worst(self):
        db_socket = SimulatedDatabase("mysql", "m4.large", 26.0, seed=3)
        db_restart = SimulatedDatabase("mysql", "m4.large", 26.0, seed=3)
        socket_run = PeriodicReloadDriver(
            db_socket, TPCCWorkload(rps=400.0, seed=4), SocketActivationStrategy(), 20.0
        ).run(200.0)
        restart_run = PeriodicReloadDriver(
            db_restart, TPCCWorkload(rps=400.0, seed=4), FullRestartStrategy(), 20.0
        ).run(200.0)
        assert restart_run.mean_tps < socket_run.mean_tps

    def test_invalid_period(self, pg_db, tpcc):
        with pytest.raises(ValueError):
            PeriodicReloadDriver(pg_db, tpcc, None, 0.0)


class TestNonTunablePolicy:
    def _policy_with_history(self, pg_catalog, values, times=None):
        repo = ConfigRepository()
        times = times or list(range(len(values)))
        for value, t in zip(values, times):
            repo.store(
                "svc",
                KnobConfiguration(pg_catalog, {"shared_buffers": value}),
                "tuner",
                float(t),
            )
        return NonTunableKnobPolicy(repo)

    def test_working_set_fits_sized_to_it(self, pg_catalog):
        policy = NonTunableKnobPolicy(ConfigRepository())
        decision = policy.decide(
            "svc",
            KnobConfiguration(pg_catalog),
            working_set_mb=2000.0,
            memory_limit_mb=8000.0,
            entropy_hits=0,
            last_downtime_s=0.0,
        )
        assert decision.rule == "working_set"
        assert decision.new_value_mb == 2000.0

    def test_reduce_on_p99_with_entropy_hit(self, pg_catalog):
        policy = self._policy_with_history(pg_catalog, [500, 600, 700])
        current = KnobConfiguration(pg_catalog, {"shared_buffers": 4096})
        decision = policy.decide(
            "svc", current, 20_000.0, 8000.0, entropy_hits=1, last_downtime_s=0.0
        )
        assert decision.rule == "reduce_p99_entropy_hit"
        assert decision.new_value_mb < 4096

    def test_no_reduction_without_entropy_hit(self, pg_catalog):
        policy = self._policy_with_history(pg_catalog, [500, 600, 700])
        current = KnobConfiguration(pg_catalog, {"shared_buffers": 4096})
        decision = policy.decide(
            "svc", current, 20_000.0, 8000.0, entropy_hits=0, last_downtime_s=0.0
        )
        assert decision.rule == "increase_toward_average"
        assert decision.new_value_mb >= 4096 or decision.new_value_mb == pytest.approx(
            0.7 * 8000.0
        )

    def test_no_history_keeps_current(self, pg_catalog):
        policy = NonTunableKnobPolicy(ConfigRepository())
        current = KnobConfiguration(pg_catalog, {"shared_buffers": 1024})
        decision = policy.decide(
            "svc", current, 20_000.0, 8000.0, entropy_hits=3, last_downtime_s=0.0
        )
        assert decision.rule == "no_history"
        assert decision.new_value_mb == 1024

    def test_buffer_share_validation(self):
        with pytest.raises(ValueError):
            NonTunableKnobPolicy(ConfigRepository(), buffer_share=0.0)
