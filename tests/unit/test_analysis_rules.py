"""Good/bad fixtures for every `repro lint` rule, plus engine plumbing."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Linter, all_rules, get_rule, render
from repro.analysis.findings import Severity
from repro.analysis.imports import ImportMap


def lint_source(
    tmp_path: Path, source: str, relpath: str = "repro/dbsim/mod.py", select=None
):
    """Write *source* at *relpath* under a scratch root and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return Linter(root=tmp_path, select=select).lint_paths([target])


def rules_hit(findings) -> set[str]:
    return {f.rule for f in findings}


class TestRegistry:
    def test_all_builtin_rules_registered(self):
        ids = [cls.id for cls in all_rules()]
        assert ids == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
            "R009", "R010", "R011", "R012",
        ]

    def test_deep_rules_marked(self):
        deep = {cls.id for cls in all_rules() if cls.requires_project}
        assert deep == {"R009", "R010", "R011", "R012"}

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError, match="R999"):
            get_rule("R999")


class TestR001NoGlobalRng:
    def test_bad_stdlib_global_stream(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            x = random.random()
            """,
        )
        assert rules_hit(findings) == {"R001"}
        assert findings[0].line == 3

    def test_bad_numpy_global_stream(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            np.random.seed(3)
            y = np.random.uniform(0, 1)
            """,
        )
        assert [f.rule for f in findings] == ["R001", "R001"]

    def test_bad_library_default_rng_outside_rng_module(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(7)
            """,
        )
        assert rules_hit(findings) == {"R001"}
        assert "make_rng" in findings[0].message

    def test_good_threaded_generator_draws(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def run(rng):
                return rng.uniform(0, 1) + rng.normal()
            """,
        )
        assert findings == []

    def test_good_default_rng_allowed_in_rng_module(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            def make_rng(seed):
                return np.random.default_rng(seed)
            """,
            relpath="repro/common/rng.py",
        )
        assert findings == []

    def test_good_seeded_default_rng_outside_library(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(5)
            """,
            relpath="tests/unit/test_something.py",
        )
        assert findings == []

    def test_aliased_import_still_caught(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from numpy import random as npr
            npr.shuffle([1, 2, 3])
            """,
        )
        assert rules_hit(findings) == {"R001"}

    def test_non_module_attribute_chains_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Holder:
                def draw(self):
                    return self.random.random()
            """,
        )
        assert findings == []


class TestR002NoWallclockInSim:
    def test_bad_time_time_in_dbsim(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            def stamp():
                return time.time()
            """,
        )
        assert rules_hit(findings) == {"R002"}

    def test_bad_datetime_now_in_core(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from datetime import datetime
            def stamp():
                return datetime.now()
            """,
            relpath="repro/core/tde/mod.py",
        )
        assert rules_hit(findings) == {"R002"}

    def test_good_outside_simulation_paths(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            def stamp():
                return time.time()
            """,
            relpath="repro/cloud/mod.py",
        )
        assert findings == []

    def test_good_benchmark_files_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            def stamp():
                return time.time()
            """,
            relpath="repro/dbsim/bench_disk.py",
        )
        assert findings == []

    def test_good_simulated_clock(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def stamp(db):
                return db.clock_s
            """,
        )
        assert findings == []


class TestR003RngMustThread:
    def test_bad_unseeded_default_rng(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            relpath="scripts/tool.py",  # outside library: only R003 fires
        )
        assert rules_hit(findings) == {"R003"}

    def test_bad_unseeded_stdlib_random(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            rng = random.Random()
            """,
            relpath="scripts/tool.py",
        )
        assert rules_hit(findings) == {"R003"}

    def test_bad_unseeded_make_rng(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.common.rng import make_rng
            rng = make_rng()
            """,
            relpath="scripts/tool.py",
        )
        assert rules_hit(findings) == {"R003"}

    def test_good_seeded_construction(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            from repro.common.rng import make_rng
            a = random.Random(5)
            b = make_rng(0)
            c = make_rng(seed=3)
            """,
            relpath="scripts/tool.py",
        )
        assert findings == []

    def test_good_explicit_none_is_a_stated_choice(self, tmp_path):
        # ``make_rng(None)`` documents "OS entropy, on purpose".
        findings = lint_source(
            tmp_path,
            """
            from repro.common.rng import make_rng
            rng = make_rng(None)
            """,
            relpath="scripts/tool.py",
        )
        assert findings == []


class TestR004CacheVersionBump:
    def test_bad_public_mutator_without_bump(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Store:
                def __init__(self):
                    self._version = 0
                    self._rows = []

                def add(self, row):
                    self._rows.append(row)
            """,
        )
        assert rules_hit(findings) == {"R004"}
        assert "Store.add" in findings[0].message

    def test_bad_augmented_assignment_without_bump(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Store:
                def __init__(self):
                    self._version = 0
                    self._total = 0

                def bump_total(self):
                    self._total += 1
            """,
        )
        assert rules_hit(findings) == {"R004"}

    def test_good_direct_bump(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Store:
                def __init__(self):
                    self._version = 0
                    self._rows = []

                def add(self, row):
                    self._rows.append(row)
                    self._version += 1
            """,
        )
        assert findings == []

    def test_good_bump_via_called_method(self, tmp_path):
        # The WorkloadRepository shape: add() bumps, add_many() delegates,
        # private _append() carries no obligation of its own.
        findings = lint_source(
            tmp_path,
            """
            class Store:
                def __init__(self):
                    self._version = 0
                    self._rows = []

                def _append(self, row):
                    self._rows.append(row)

                def add(self, row):
                    self._append(row)
                    self._version += 1

                def add_many(self, rows):
                    for row in rows:
                        self.add(row)
            """,
        )
        assert findings == []

    def test_good_cache_attributes_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Store:
                def __init__(self):
                    self._version = 0
                    self._rows = []
                    self._dataset_cache = {}

                def dataset(self, key):
                    self._dataset_cache[key] = object()
            """,
        )
        assert findings == []

    def test_good_unversioned_classes_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Plain:
                def __init__(self):
                    self._rows = []

                def add(self, row):
                    self._rows.append(row)
            """,
        )
        assert findings == []


class TestR005KnobRegistryConsistency:
    def test_bad_out_of_range_value(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            CONFIG = {"work_mem": 99999}
            """,
        )
        assert rules_hit(findings) == {"R005"}
        assert "outside the registry range" in findings[0].message

    def test_bad_typo_in_knob_dict(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            CONFIG = {"work_mem": 64, "shared_bufers": 1024}
            """,
        )
        assert rules_hit(findings) == {"R005"}
        assert "shared_buffers" in findings[0].message

    def test_bad_typo_in_subscript(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def read(config):
                return config["bgwriter_delai"]
            """,
        )
        assert rules_hit(findings) == {"R005"}

    def test_bad_shadow_knobdef_bounds(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.dbsim.knobs import KnobClass, KnobDef, KnobUnit
            K = KnobDef("work_mem", KnobClass.MEMORY, KnobUnit.MEGABYTES,
                        4, 2, 9999)
            """,
        )
        assert rules_hit(findings) == {"R005"}
        assert len(findings) == 2  # min_value and max_value both disagree

    def test_good_in_range_values_and_real_names(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            CONFIG = {"work_mem": 64, "shared_buffers": 4096}
            def read(config):
                return config["checkpoint_timeout"]
            """,
        )
        assert findings == []

    def test_good_non_knob_dicts_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            HEADERS = {"content_type": "json", "retries": 99999}
            """,
        )
        assert findings == []

    def test_good_tests_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            CLAMP_ME = {"work_mem": 10**9}
            """,
            relpath="tests/unit/test_clamp.py",
        )
        assert findings == []


class TestR006BoundedControlPlane:
    def test_bad_bare_except_in_core(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def apply(adapter, node, config):
                try:
                    return adapter.apply(node, config)
                except:
                    return None
            """,
            relpath="repro/core/apply/mod.py",
        )
        assert rules_hit(findings) == {"R006"}
        assert "bare `except:`" in findings[0].message

    def test_bad_broad_except_exception_in_cloud(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def poll(agent):
                try:
                    return agent.read()
                except Exception:
                    return None
            """,
            relpath="repro/cloud/mod.py",
        )
        assert rules_hit(findings) == {"R006"}

    def test_bad_broad_except_in_tuple(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def poll(agent):
                try:
                    return agent.read()
                except (KeyError, BaseException):
                    return None
            """,
            relpath="repro/core/director/mod.py",
        )
        assert rules_hit(findings) == {"R006"}
        assert "BaseException" in findings[0].message

    def test_bad_unbounded_while_true_retry(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def retry(op):
                while True:
                    op()
            """,
            relpath="repro/core/apply/mod.py",
        )
        assert rules_hit(findings) == {"R006"}
        assert "attempt" in findings[0].message

    def test_bad_break_in_nested_loop_does_not_escape(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def retry(op, items):
                while True:
                    for item in items:
                        if op(item):
                            break
            """,
            relpath="repro/core/apply/mod.py",
        )
        assert rules_hit(findings) == {"R006"}

    def test_good_typed_except_and_bounded_retry(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def retry(op, max_attempts):
                for _ in range(max_attempts):
                    try:
                        return op()
                    except KeyError:
                        continue
                raise TimeoutError("out of attempts")
            """,
            relpath="repro/core/apply/mod.py",
        )
        assert findings == []

    def test_good_while_true_with_break(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def drain(queue):
                while True:
                    if not queue:
                        break
                    queue.pop()
            """,
            relpath="repro/core/director/mod.py",
        )
        assert findings == []

    def test_good_while_true_with_return_inside_try(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def wait(op):
                while True:
                    try:
                        return op()
                    except KeyError:
                        pass
            """,
            relpath="repro/core/apply/mod.py",
        )
        assert findings == []

    def test_good_bounded_condition_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def wait(elapsed, total):
                while elapsed < total:
                    elapsed += 1.0
            """,
            relpath="repro/core/apply/mod.py",
        )
        assert findings == []

    def test_good_outside_control_plane(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def retry(op):
                while True:
                    try:
                        op()
                    except Exception:
                        pass
            """,
            relpath="repro/dbsim/mod.py",
        )
        assert findings == []

    def test_good_tests_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def retry(op):
                try:
                    op()
                except Exception:
                    pass
            """,
            relpath="tests/unit/test_core_mod.py",
        )
        assert findings == []

    def test_noqa_suppresses_r006(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def poll(agent):
                try:
                    return agent.read()
                except Exception:  # repro: noqa[R006] plugin boundary
                    return None
            """,
            relpath="repro/core/tde/mod.py",
        )
        assert findings == []


class TestR007RecorderMustThread:
    def test_bad_unthreaded_construction_in_scope(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.apply.reconciler import Reconciler

            def build(orchestrator, recorder):
                return Reconciler(orchestrator)
            """,
            relpath="repro/core/mod.py",
            select=["R007"],
        )
        assert rules_hit(findings) == {"R007"}
        assert "Reconciler" in findings[0].message

    def test_bad_method_of_recorder_carrying_class(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.apply.orchestrator import ServiceOrchestrator

            class Facade:
                def __init__(self, recorder=None):
                    self.recorder = recorder

                def wire(self):
                    return ServiceOrchestrator()
            """,
            relpath="repro/core/mod.py",
            select=["R007"],
        )
        assert rules_hit(findings) == {"R007"}

    def test_good_keyword_threading(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.apply.reconciler import Reconciler

            def build(orchestrator, recorder):
                return Reconciler(orchestrator, recorder=recorder)
            """,
            relpath="repro/core/mod.py",
            select=["R007"],
        )
        assert findings == []

    def test_good_no_recorder_in_scope(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.apply.reconciler import Reconciler

            def build(orchestrator):
                return Reconciler(orchestrator)
            """,
            relpath="repro/core/mod.py",
            select=["R007"],
        )
        assert findings == []

    def test_good_outside_core_not_checked(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.apply.reconciler import Reconciler

            def build(orchestrator, recorder):
                return Reconciler(orchestrator)
            """,
            relpath="repro/experiments/mod.py",
            select=["R007"],
        )
        assert findings == []

    def test_good_kwargs_passthrough(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.apply.reconciler import Reconciler

            def build(orchestrator, recorder, **kwargs):
                return Reconciler(orchestrator, **kwargs)
            """,
            relpath="repro/core/mod.py",
            select=["R007"],
        )
        assert findings == []


class TestR008NoSnapshotInLoop:
    def test_bad_repository_pickled_in_window_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import pickle

            def broadcast(repository, windows, conns):
                for _ in range(windows):
                    payload = pickle.dumps(repository)
                    for conn in conns:
                        conn.send_bytes(payload)
            """,
            select=["R008"],
        )
        assert rules_hit(findings) == {"R008"}
        assert len(findings) == 1  # nested loops don't double-report
        assert "repository" in findings[0].message
        assert findings[0].line == 6

    def test_bad_attribute_access_in_while_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import pickle

            def pump(self):
                while True:
                    blob = pickle.dumps(("state", self.repository))
                    yield blob
            """,
            select=["R008"],
        )
        assert rules_hit(findings) == {"R008"}

    def test_good_snapshot_outside_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import pickle

            def setup(repository, conns):
                snapshot = pickle.dumps(repository)
                for conn in conns:
                    conn.send_bytes(snapshot)
            """,
            select=["R008"],
        )
        assert findings == []

    def test_good_delta_pickle_in_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import pickle

            def broadcast(deltas, conns):
                for delta in deltas:
                    payload = pickle.dumps(delta)
                    for conn in conns:
                        conn.send_bytes(payload)
            """,
            select=["R008"],
        )
        assert findings == []


class TestSuppressions:
    def test_targeted_noqa_suppresses_one_rule(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            t = time.time()  # repro: noqa[R002] harness timing hook
            """,
        )
        assert findings == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            t = time.time()  # repro: noqa[R001]
            """,
        )
        assert rules_hit(findings) == {"R002"}

    def test_blanket_noqa_suppresses_everything(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time, random
            t = time.time() + random.random()  # repro: noqa
            """,
        )
        assert findings == []

    def test_multi_rule_noqa(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time, random
            t = time.time() + random.random()  # repro: noqa[R001, R002]
            """,
        )
        assert findings == []


class TestEngineAndReporters:
    def test_select_runs_only_requested_rules(self, tmp_path):
        source = """
        import time, random
        t = time.time()
        x = random.random()
        """
        only_r002 = lint_source(tmp_path, source, select=["R002"])
        assert rules_hit(only_r002) == {"R002"}

    def test_syntax_error_becomes_r000_finding(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert rules_hit(findings) == {"R000"}
        assert findings[0].severity is Severity.ERROR

    def test_findings_sorted_and_relative(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            a = random.random()
            b = random.random()
            """,
        )
        assert [f.line for f in findings] == [3, 4]
        assert str(findings[0].path) == "repro/dbsim/mod.py"

    def test_text_reporter_format(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            a = random.random()
            """,
        )
        text = render(findings, "text")
        assert "repro/dbsim/mod.py:3:" in text
        assert "R001 [error]" in text
        assert text.endswith("repro lint: 1 finding")
        assert render([], "text") == "repro lint: no findings"

    def test_json_reporter_roundtrips(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            a = random.random()
            """,
        )
        payload = json.loads(render(findings, "json"))
        assert payload["count"] == 1
        entry = payload["findings"][0]
        assert entry["rule"] == "R001"
        assert entry["severity"] == "error"
        assert entry["path"] == "repro/dbsim/mod.py"
        assert entry["line"] == 3

    def test_pycache_and_egg_info_skipped(self, tmp_path):
        bad = "import random\nx = random.random()\n"
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text(bad)
        (tmp_path / "pkg.egg-info").mkdir()
        (tmp_path / "pkg.egg-info" / "junk.py").write_text(bad)
        assert Linter(root=tmp_path).lint_paths([tmp_path]) == []


class TestImportMap:
    def _qualify(self, source: str, expr: str):
        import ast

        tree = ast.parse(textwrap.dedent(source) + f"\n_probe = {expr}\n")
        imports = ImportMap(tree)
        probe = tree.body[-1]
        return imports.qualify(probe.value)

    def test_plain_and_aliased_imports(self):
        assert self._qualify("import random", "random.random") == "random.random"
        assert (
            self._qualify("import numpy as np", "np.random.seed")
            == "numpy.random.seed"
        )

    def test_from_imports(self):
        assert (
            self._qualify("from numpy.random import default_rng", "default_rng")
            == "numpy.random.default_rng"
        )
        assert (
            self._qualify("from datetime import datetime", "datetime.now")
            == "datetime.datetime.now"
        )

    def test_unimported_roots_resolve_to_none(self):
        assert self._qualify("x = 1", "x.random.random") is None


def deep_lint_source(tmp_path, source, relpath="app/mod.py", select=None):
    """Write *source* under a scratch root and deep-lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return Linter(root=tmp_path, select=select, deep=True).lint_paths([target])


class TestR009ShardStateMutation:
    def test_bad_worker_mutates_spec_attribute(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.parallel.executor import FleetExecutor

            class Worker:
                def __init__(self, spec, indices):
                    self.spec = spec
                    self.indices = list(indices)

                def step(self, window):
                    out = []
                    for i in self.indices:
                        self.spec.repository.add((i, window))
                        out.append((i, window))
                    return out

            def factory(spec, indices):
                return Worker(spec, indices)

            def run(spec, windows, workers):
                executor = FleetExecutor(workers=workers)
                with executor.fleet_session(factory, spec, 4) as session:
                    return [session.step(w) for w in windows]
            """,
        )
        assert rules_hit(findings) == {"R009"}
        assert "coordinator-owned" in findings[0].message

    def test_bad_global_rebind_in_map_helper(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.parallel.executor import FleetExecutor

            COUNT = 0

            def _bump():
                global COUNT
                COUNT += 1

            def work(item):
                _bump()
                return item * 2

            def run(items, workers):
                return FleetExecutor(workers=workers).map(work, items)
            """,
        )
        assert rules_hit(findings) == {"R009"}
        assert "COUNT" in findings[0].message

    def test_good_snapshot_then_mutate_copy(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            import pickle

            from repro.parallel.executor import FleetExecutor

            class Worker:
                def __init__(self, spec, indices):
                    self.spec = spec
                    self.repository = pickle.loads(pickle.dumps(spec.repository))
                    self.indices = list(indices)

                def step(self, window):
                    out = []
                    for i in self.indices:
                        self.repository.add((i, window))
                        out.append((i, window))
                    return out

            def factory(spec, indices):
                return Worker(spec, indices)

            def run(spec, windows, workers):
                executor = FleetExecutor(workers=workers)
                with executor.fleet_session(factory, spec, 4) as session:
                    return [session.step(w) for w in windows]
            """,
        )
        assert findings == []

    def test_good_mutation_outside_shard_path(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            def coordinator_update(spec, sample):
                spec.repository.add(sample)
            """,
        )
        assert findings == []

    def test_noqa_suppresses_r009(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.parallel.executor import FleetExecutor

            def work(item):
                item.cache.update({"k": 1})  # repro: noqa[R009] memo only
                return item.value

            def run(items, workers):
                return FleetExecutor(workers=workers).map(work, items)
            """,
        )
        assert findings == []


class TestR010UnorderedReduce:
    def test_bad_dict_values_into_merge(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.obs.metrics import MetricsRegistry

            def fold(by_shard):
                out = MetricsRegistry()
                for registry in by_shard.values():
                    out.merge(registry)
                return out
            """,
        )
        assert rules_hit(findings) == {"R010"}
        assert "sorted" in findings[0].message

    def test_bad_set_into_absorb(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.obs.trace import TraceRecorder

            def stitch(fragments):
                root = TraceRecorder()
                for fragment in set(fragments):
                    root.absorb(fragment)
                return root
            """,
        )
        assert rules_hit(findings) == {"R010"}

    def test_good_sorted_iteration(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.obs.metrics import MetricsRegistry

            def fold(by_shard):
                out = MetricsRegistry()
                for key in sorted(by_shard):
                    out.merge(by_shard[key])
                return out
            """,
        )
        assert findings == []

    def test_good_list_iteration(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.obs.trace import TraceRecorder

            def stitch(fragments):
                root = TraceRecorder()
                for fragment in fragments:
                    root.absorb(fragment)
                return root
            """,
        )
        assert findings == []


class TestR011FloatAccumulationOrder:
    def test_bad_sum_over_as_completed(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from concurrent.futures import as_completed

            def total(futures):
                return sum(f.result() for f in as_completed(futures))
            """,
        )
        assert rules_hit(findings) == {"R011"}
        assert "associative" in findings[0].message

    def test_bad_augmented_add_over_wait(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from multiprocessing.connection import wait

            def drain(pending):
                acc = 0.0
                for conn in wait(pending):
                    acc += conn.recv()
                return acc
            """,
        )
        assert rules_hit(findings) == {"R011"}

    def test_good_sum_over_ordered_results(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            def total(results):
                return sum(value for _, value in sorted(results))
            """,
        )
        assert findings == []

    def test_good_fsum_over_completion_order(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            import math
            from concurrent.futures import as_completed

            def total(futures):
                return math.fsum(f.result() for f in as_completed(futures))
            """,
        )
        assert findings == []


class TestR012RngCrossesShard:
    def test_bad_generator_in_session_spec(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.common.rng import make_rng
            from repro.parallel.executor import FleetExecutor

            def factory(spec, indices):
                return object()

            def run(windows, workers):
                spec = {"rng": make_rng(7)}
                executor = FleetExecutor(workers=workers)
                with executor.fleet_session(factory, spec, 4) as session:
                    return [session.step(w) for w in windows]
            """,
        )
        assert rules_hit(findings) == {"R012"}
        assert "stream_root" in findings[0].message

    def test_bad_derived_generators_in_map_items(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.common.rng import derive_rng, make_rng
            from repro.parallel.executor import FleetExecutor

            def work(item):
                index, rng = item
                return (index, float(rng.normal()))

            def run(n, workers):
                parent = make_rng(1)
                items = [(i, derive_rng(parent, str(i))) for i in range(n)]
                return FleetExecutor(workers=workers).map(work, items)
            """,
        )
        assert rules_hit(findings) == {"R012"}

    def test_good_stream_root_crosses_as_int(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.common.rng import stream_root
            from repro.parallel.executor import FleetExecutor

            def factory(spec, indices):
                return object()

            def run(seed, windows, workers):
                spec = {"root": stream_root(seed)}
                executor = FleetExecutor(workers=workers)
                with executor.fleet_session(factory, spec, 4) as session:
                    return [session.step(w) for w in windows]
            """,
        )
        assert findings == []

    def test_good_substream_inside_worker(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.common.rng import substream
            from repro.parallel.executor import FleetExecutor

            def work(item):
                index, root = item
                rng = substream(root, "member", index)
                return (index, float(rng.normal()))

            def run(n, root, workers):
                items = [(i, root) for i in range(n)]
                return FleetExecutor(workers=workers).map(work, items)
            """,
        )
        assert findings == []


class TestDeepEngine:
    def test_shallow_run_skips_deep_rules(self, tmp_path):
        source = """
            from concurrent.futures import as_completed

            def total(futures):
                return sum(f.result() for f in as_completed(futures))
            """
        assert lint_source(tmp_path, source, relpath="app/mod.py") == []
        assert rules_hit(deep_lint_source(tmp_path, source)) == {"R011"}

    def test_selecting_deep_rule_implies_deep_mode(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from concurrent.futures import as_completed

            def total(futures):
                return sum(f.result() for f in as_completed(futures))
            """,
            relpath="app/mod.py",
            select=["R011"],
        )
        assert rules_hit(findings) == {"R011"}

    def test_finding_lands_at_caller_when_sink_in_helper(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from repro.obs.metrics import MetricsRegistry

            def fold(registries):
                out = MetricsRegistry()
                for registry in registries:
                    out.merge(registry)
                return out

            def collect(by_shard):
                return fold(by_shard.values())
            """,
        )
        assert rules_hit(findings) == {"R010"}
        (finding,) = findings
        assert finding.line == 11  # the collect() call site, not fold()


class TestLintJsonSchema:
    """Pin the `repro lint --format json` output schema."""

    def test_schema_snapshot(self, tmp_path):
        findings = deep_lint_source(
            tmp_path,
            """
            from concurrent.futures import as_completed

            def total(futures):
                return sum(f.result() for f in as_completed(futures))
            """,
        )
        payload = json.loads(render(findings, "json"))
        assert set(payload) == {"findings", "count"}
        assert payload["count"] == 1
        (entry,) = payload["findings"]
        assert set(entry) == {
            "rule", "severity", "path", "line", "col", "message",
        }
        assert entry["rule"] == "R011"
        assert entry["severity"] == "error"
        assert entry["path"] == "app/mod.py"
        assert isinstance(entry["line"], int)
        assert isinstance(entry["col"], int)
        assert isinstance(entry["message"], str)

    def test_empty_schema(self):
        payload = json.loads(render([], "json"))
        assert payload == {"findings": [], "count": 0}
