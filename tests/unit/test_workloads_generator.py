"""Unit tests for the workload generator base and batches."""

import pytest

from repro.workloads.generator import MixWorkload, WorkloadBatch
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType


def _families():
    return [
        QueryFamily(
            "read", QueryType.SELECT, "SELECT %s", 3.0, QueryFootprint(), ("int",)
        ),
        QueryFamily(
            "write",
            QueryType.INSERT,
            "INSERT %s",
            1.0,
            QueryFootprint(write_kb=4.0),
            ("int",),
        ),
    ]


def _workload(rps=100.0, seed=0):
    return MixWorkload("mix", _families(), rps=rps, data_size_gb=1.0, seed=seed)


class TestBatchGeneration:
    def test_total_near_poisson_mean(self):
        batch = _workload(rps=100.0, seed=1).batch(60.0)
        assert 5000 < batch.total_queries < 7000

    def test_weights_respected(self):
        batch = _workload(rps=500.0, seed=2).batch(60.0)
        ratio = batch.counts["read"] / max(batch.counts["write"], 1)
        assert 2.3 < ratio < 3.9

    def test_zero_rps_empty_batch(self):
        batch = _workload(rps=0.0).batch(10.0)
        assert batch.total_queries == 0
        assert batch.sampled_queries == []

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            _workload().batch(0.0)

    def test_sample_size_respected(self):
        wl = MixWorkload(
            "mix", _families(), rps=1000.0, data_size_gb=1.0, seed=0, sample_size=50
        )
        batch = wl.batch(60.0)
        assert len(batch.sampled_queries) == 50

    def test_deterministic_given_seed(self):
        b1 = _workload(seed=5).batch(30.0)
        b2 = _workload(seed=5).batch(30.0)
        assert b1.counts == b2.counts


class TestWorkloadBatch:
    def test_write_fraction(self):
        fams = {f.name: f for f in _families()}
        batch = WorkloadBatch("w", 10.0, 10.0, {"read": 75, "write": 25}, fams)
        assert batch.write_fraction == pytest.approx(0.25)

    def test_write_fraction_empty(self):
        fams = {f.name: f for f in _families()}
        batch = WorkloadBatch("w", 10.0, 0.0, {"read": 0, "write": 0}, fams)
        assert batch.write_fraction == 0.0

    def test_count_by_type(self):
        fams = {f.name: f for f in _families()}
        batch = WorkloadBatch("w", 10.0, 10.0, {"read": 7, "write": 3}, fams)
        by_type = batch.count_by_type()
        assert by_type[QueryType.SELECT] == 7
        assert by_type[QueryType.INSERT] == 3

    def test_scaled(self):
        fams = {f.name: f for f in _families()}
        batch = WorkloadBatch("w", 10.0, 10.0, {"read": 100, "write": 10}, fams)
        half = batch.scaled(0.5)
        assert half.counts == {"read": 50, "write": 5}
        assert half.requested_rps == 5.0

    def test_scaled_negative_rejected(self):
        fams = {f.name: f for f in _families()}
        batch = WorkloadBatch("w", 10.0, 10.0, {"read": 1, "write": 1}, fams)
        with pytest.raises(ValueError):
            batch.scaled(-1.0)


class TestValidation:
    def test_no_families_rejected(self):
        with pytest.raises(ValueError, match="no query families"):
            MixWorkload("m", [], rps=1.0, data_size_gb=1.0)

    def test_negative_rps_rejected(self):
        with pytest.raises(ValueError):
            MixWorkload("m", _families(), rps=-1.0, data_size_gb=1.0)

    def test_zero_data_size_rejected(self):
        with pytest.raises(ValueError):
            MixWorkload("m", _families(), rps=1.0, data_size_gb=0.0)
