"""Unit tests for the hybrid tuner and JSON persistence."""

import pytest

from repro.core.director import ConfigRepository
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners import (
    HybridTuner,
    TrainingSample,
    TuningRequest,
    WorkloadRepository,
    load_config_history,
    load_repository,
    save_config_history,
    save_repository,
)


def _request(pg_catalog, wid="w"):
    return TuningRequest(
        "svc", wid, KnobConfiguration(pg_catalog), MetricsDelta({})
    )


class TestHybridTuner:
    def test_routes_bo_first_then_rl(self, pg_catalog, trained_repo):
        tuner = HybridTuner(pg_catalog, trained_repo, bo_every=3, seed=0)
        members = []
        for _ in range(6):
            rec = tuner.recommend(_request(pg_catalog, wid="tpcc"))
            members.append(tuner.last_member)
            assert rec.source.startswith("hybrid/")
        assert members == ["ottertune", "cdbtune", "cdbtune"] * 2

    def test_workloads_counted_independently(self, pg_catalog, trained_repo):
        tuner = HybridTuner(pg_catalog, trained_repo, bo_every=2, seed=0)
        tuner.recommend(_request(pg_catalog, wid="a"))
        assert tuner.last_member == "ottertune"
        tuner.recommend(_request(pg_catalog, wid="b"))
        assert tuner.last_member == "ottertune"

    def test_observe_feeds_both_members(self, pg_catalog):
        tuner = HybridTuner(pg_catalog, WorkloadRepository(), seed=0)
        sample = TrainingSample(
            "w", KnobConfiguration(pg_catalog), MetricsDelta({})
        )
        tuner.observe(sample)
        assert tuner.repository.total_samples() == 1
        assert "w" in tuner.rl._initial_tps

    def test_amortised_cost_between_members(self, pg_catalog, trained_repo):
        tuner = HybridTuner(pg_catalog, trained_repo, bo_every=4, seed=0)
        cost = tuner.recommendation_cost_s()
        assert tuner.rl.recommendation_cost_s() < cost
        assert cost < tuner.bo.recommendation_cost_s()

    def test_bo_every_validation(self, pg_catalog):
        with pytest.raises(ValueError):
            HybridTuner(pg_catalog, bo_every=0)


class TestRepositoryPersistence:
    def test_roundtrip(self, pg_catalog, trained_repo, tmp_path):
        path = tmp_path / "repo.json"
        count = save_repository(trained_repo, path)
        assert count == trained_repo.total_samples()
        loaded = load_repository(path)
        assert loaded.total_samples() == trained_repo.total_samples()
        assert loaded.workload_ids() == trained_repo.workload_ids()
        original = trained_repo.dataset("tpcc")
        restored = loaded.dataset("tpcc")
        assert restored.objective.tolist() == original.objective.tolist()
        assert restored.configs.tolist() == original.configs.tolist()

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "samples": []}')
        with pytest.raises(ValueError, match="version"):
            load_repository(path)


class TestConfigHistoryPersistence:
    def test_roundtrip(self, pg_catalog, tmp_path):
        configs = ConfigRepository()
        for i, value in enumerate((100, 200, 300)):
            configs.store(
                "svc-1",
                KnobConfiguration(pg_catalog, {"shared_buffers": value}),
                "ottertune",
                float(i),
            )
        path = tmp_path / "configs.json"
        assert save_config_history(configs, ["svc-1"], path) == 3
        loaded = load_config_history(path)
        history = loaded.history("svc-1")
        assert [v.config["shared_buffers"] for v in history] == [100, 200, 300]
        assert history[-1].source == "ottertune"
