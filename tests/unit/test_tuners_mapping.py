"""Unit tests for OtterTune-style workload mapping."""

import numpy as np

from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners import TrainingSample, WorkloadMapper, WorkloadRepository


def _populate(repo, pg_catalog, wid, tps_base, n=8, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        work_mem = float(rng.uniform(4, 512))
        metrics = MetricsDelta(
            {
                "throughput_tps": tps_base + work_mem * 0.1,
                "wal_mb": tps_base * 3.0,
                "blks_read": tps_base * 10.0,
            }
        )
        repo.add(
            TrainingSample(
                wid, KnobConfiguration(pg_catalog, {"work_mem": work_mem}), metrics
            )
        )


class TestMapping:
    def test_maps_to_similar_workload(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", tps_base=100.0, seed=1)
        _populate(repo, pg_catalog, "twin", tps_base=105.0, seed=2)
        _populate(repo, pg_catalog, "stranger", tps_base=9000.0, seed=3)
        mapping = WorkloadMapper(repo).map_workload("target")
        assert mapping.mapped
        assert mapping.best_workload_id == "twin"
        assert mapping.scores["twin"] < mapping.scores["stranger"]

    def test_excludes_target_by_default(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0)
        _populate(repo, pg_catalog, "other", 5000.0)
        mapping = WorkloadMapper(repo).map_workload("target")
        assert mapping.best_workload_id == "other"

    def test_can_include_target(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0)
        mapping = WorkloadMapper(repo).map_workload("target", exclude_target=False)
        assert mapping.best_workload_id == "target"

    def test_unknown_target_unmapped(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "other", 100.0)
        mapping = WorkloadMapper(repo).map_workload("missing")
        assert not mapping.mapped

    def test_empty_repo_unmapped(self):
        mapping = WorkloadMapper(WorkloadRepository()).map_workload("x")
        assert mapping.best_workload_id is None

    def test_nbins_validation(self):
        import pytest

        with pytest.raises(ValueError):
            WorkloadMapper(WorkloadRepository(), n_bins=1)


class TestMappingCache:
    """Cluster-assignment results are version-keyed on the repository."""

    def test_repeat_mapping_served_from_cache(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0, seed=1)
        _populate(repo, pg_catalog, "twin", 105.0, seed=2)
        mapper = WorkloadMapper(repo)
        first = mapper.map_workload("target")
        second = mapper.map_workload("target")
        assert first is second  # identical object: no recompute happened

    def test_new_sample_invalidates_mapping(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0, seed=1)
        _populate(repo, pg_catalog, "twin", 105.0, seed=2)
        mapper = WorkloadMapper(repo)
        first = mapper.map_workload("target")
        _populate(repo, pg_catalog, "target", 100.0, n=1, seed=9)
        second = mapper.map_workload("target")
        assert first is not second
        assert second.mapped

    def test_mappers_share_cache_through_repository(self, pg_catalog):
        """Every TDE's mapper over one store reuses the same results."""
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0, seed=1)
        _populate(repo, pg_catalog, "twin", 105.0, seed=2)
        first = WorkloadMapper(repo).map_workload("target")
        second = WorkloadMapper(repo).map_workload("target")
        assert first is second

    def test_distinct_nbins_do_not_share_entries(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0, seed=1)
        _populate(repo, pg_catalog, "twin", 105.0, seed=2)
        coarse = WorkloadMapper(repo, n_bins=4).map_workload("target")
        fine = WorkloadMapper(repo, n_bins=10).map_workload("target")
        assert coarse is not fine
        assert coarse.best_workload_id == fine.best_workload_id == "twin"

    def test_exclude_flag_keyed_separately(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0, seed=1)
        _populate(repo, pg_catalog, "twin", 105.0, seed=2)
        mapper = WorkloadMapper(repo)
        excluded = mapper.map_workload("target", exclude_target=True)
        included = mapper.map_workload("target", exclude_target=False)
        assert excluded.best_workload_id == "twin"
        assert included.best_workload_id == "target"
