"""Unit tests for OtterTune-style workload mapping."""

import numpy as np

from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners import TrainingSample, WorkloadMapper, WorkloadRepository


def _populate(repo, pg_catalog, wid, tps_base, n=8, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        work_mem = float(rng.uniform(4, 512))
        metrics = MetricsDelta(
            {
                "throughput_tps": tps_base + work_mem * 0.1,
                "wal_mb": tps_base * 3.0,
                "blks_read": tps_base * 10.0,
            }
        )
        repo.add(
            TrainingSample(
                wid, KnobConfiguration(pg_catalog, {"work_mem": work_mem}), metrics
            )
        )


class TestMapping:
    def test_maps_to_similar_workload(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", tps_base=100.0, seed=1)
        _populate(repo, pg_catalog, "twin", tps_base=105.0, seed=2)
        _populate(repo, pg_catalog, "stranger", tps_base=9000.0, seed=3)
        mapping = WorkloadMapper(repo).map_workload("target")
        assert mapping.mapped
        assert mapping.best_workload_id == "twin"
        assert mapping.scores["twin"] < mapping.scores["stranger"]

    def test_excludes_target_by_default(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0)
        _populate(repo, pg_catalog, "other", 5000.0)
        mapping = WorkloadMapper(repo).map_workload("target")
        assert mapping.best_workload_id == "other"

    def test_can_include_target(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "target", 100.0)
        mapping = WorkloadMapper(repo).map_workload("target", exclude_target=False)
        assert mapping.best_workload_id == "target"

    def test_unknown_target_unmapped(self, pg_catalog):
        repo = WorkloadRepository()
        _populate(repo, pg_catalog, "other", 100.0)
        mapping = WorkloadMapper(repo).map_workload("missing")
        assert not mapping.mapped

    def test_empty_repo_unmapped(self):
        mapping = WorkloadMapper(WorkloadRepository()).map_workload("x")
        assert mapping.best_workload_id is None

    def test_nbins_validation(self):
        import pytest

        with pytest.raises(ValueError):
            WorkloadMapper(WorkloadRepository(), n_bins=1)
