"""Unit tests for the BO-style tuner."""

import numpy as np
import pytest

from repro.dbsim import SimulatedDatabase
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners import (
    OtterTuneTuner,
    TrainingSample,
    TuningRequest,
    WorkloadRepository,
)


def _request(pg_catalog, wid="tpcc"):
    return TuningRequest(
        "svc-1",
        wid,
        KnobConfiguration(pg_catalog),
        MetricsDelta({"throughput_tps": 100.0}),
    )


class TestColdStart:
    def test_cold_start_returns_nudged_config(self, pg_catalog):
        tuner = OtterTuneTuner(pg_catalog, WorkloadRepository(), seed=0)
        rec = tuner.recommend(_request(pg_catalog))
        assert rec.source == "ottertune"
        assert rec.config.catalog.flavor == "postgres"

    def test_cold_start_respects_budget(self, pg_catalog):
        tuner = OtterTuneTuner(
            pg_catalog, WorkloadRepository(), memory_limit_mb=2000.0, seed=0
        )
        rec = tuner.recommend(_request(pg_catalog))
        rec.config.check_memory_budget(2000.0 * 1.01, 20)


class TestTrainedRecommendation:
    def test_improves_over_default(self, pg_catalog, trained_repo):
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=21)
        tuner = OtterTuneTuner(
            pg_catalog,
            trained_repo,
            memory_limit_mb=db.vm.db_memory_limit_mb,
            seed=5,
        )
        rec = tuner.recommend(_request(pg_catalog))
        from repro.workloads import TPCCWorkload

        default_r = db.run(TPCCWorkload(seed=22).batch(20.0))
        # Apply via restart: clean shutdown checkpoints the backlog, then
        # measure the second window (first one pays the restart downtime).
        db.apply_config(rec.config, mode="restart")
        db.run(TPCCWorkload(seed=22).batch(20.0))
        tuned_r = db.run(TPCCWorkload(seed=22).batch(20.0))
        assert tuned_r.throughput > default_r.throughput * 2

    def test_recommendation_within_budget(self, pg_catalog, trained_repo):
        tuner = OtterTuneTuner(
            pg_catalog, trained_repo, memory_limit_mb=6553.0, seed=5
        )
        rec = tuner.recommend(_request(pg_catalog))
        rec.config.check_memory_budget(6553.0 * 1.01, 20)

    def test_ranked_knobs_present(self, pg_catalog, trained_repo):
        tuner = OtterTuneTuner(pg_catalog, trained_repo, seed=5)
        rec = tuner.recommend(_request(pg_catalog))
        assert len(rec.ranked_knobs) == len(pg_catalog)

    def test_mapping_recorded(self, pg_catalog, trained_repo):
        from tests.conftest import make_samples

        trained_repo.add_many(
            make_samples(pg_catalog, "tpcc", n=6, seed=9)
        )
        for s in make_samples(pg_catalog, "tpcc", n=6, seed=10):
            trained_repo.add(
                TrainingSample("tpcc_live", s.config, s.metrics)
            )
        tuner = OtterTuneTuner(pg_catalog, trained_repo, seed=5)
        tuner.recommend(_request(pg_catalog, wid="tpcc_live"))
        assert tuner.last_mapping_id == "tpcc"


class TestCostModel:
    def test_cost_grows_with_samples(self, pg_catalog):
        repo = WorkloadRepository()
        tuner = OtterTuneTuner(pg_catalog, repo, seed=0)
        empty_cost = tuner.recommendation_cost_s()
        from tests.conftest import make_samples

        repo.add_many(make_samples(pg_catalog, "tpcc", n=10, seed=1))
        assert tuner.recommendation_cost_s() > empty_cost

    def test_paper_scale_costs_hundreds_of_seconds(self, pg_catalog):
        """§1/§5: at ~2000 samples a recommendation costs ~200 s."""
        tuner = OtterTuneTuner(pg_catalog, WorkloadRepository(), seed=0)
        tuner._last_train_size = 2000
        cost = tuner.recommendation_cost_s()
        assert 150.0 < cost < 260.0


class TestObserve:
    def test_observe_stores_in_repository(self, pg_catalog):
        repo = WorkloadRepository()
        tuner = OtterTuneTuner(pg_catalog, repo, seed=0)
        tuner.observe(
            TrainingSample(
                "w", KnobConfiguration(pg_catalog), MetricsDelta({})
            )
        )
        assert repo.total_samples() == 1
