"""Unit tests for SimulatedDatabase (run, apply, explain, crash model)."""

import pytest

from repro.dbsim import (
    DatabaseCrashed,
    KnobConfiguration,
    SimulatedDatabase,
)
from repro.dbsim.engine import RESTART_DOWNTIME_S


class TestRun:
    def test_run_produces_metrics(self, pg_db, tpcc):
        result = pg_db.run(tpcc.batch(30.0))
        assert result.throughput > 0
        assert result.metrics["xact_commit"] > 0
        assert result.metrics["throughput_tps"] == result.throughput

    def test_clock_advances(self, pg_db, tpcc):
        pg_db.run(tpcc.batch(30.0))
        assert pg_db.clock_s == 30.0
        pg_db.run(tpcc.batch(45.0))
        assert pg_db.clock_s == 75.0

    def test_series_follow_clock(self, pg_db, tpcc):
        pg_db.run(tpcc.batch(10.0))
        second = pg_db.run(tpcc.batch(10.0))
        assert second.data_disk.iops.times[0] == 10.0

    def test_deterministic_given_seeds(self, tpcc):
        from repro.workloads import TPCCWorkload

        a = SimulatedDatabase("postgres", "m4.large", 26.0, seed=9)
        b = SimulatedDatabase("postgres", "m4.large", 26.0, seed=9)
        wa, wb = TPCCWorkload(seed=4), TPCCWorkload(seed=4)
        ra, rb = a.run(wa.batch(20.0)), b.run(wb.batch(20.0))
        assert ra.throughput == rb.throughput
        assert ra.metrics.as_vector().tolist() == rb.metrics.as_vector().tolist()

    def test_bigger_buffer_more_throughput(self, tpcc):
        """The main tuning lever must move the objective."""
        from repro.workloads import TPCCWorkload

        small = SimulatedDatabase("postgres", "m4.large", 26.0, seed=1)
        big = SimulatedDatabase("postgres", "m4.large", 26.0, seed=1)
        big.config = big.config.with_values({"shared_buffers": 4096})
        r_small = small.run(TPCCWorkload(seed=2).batch(30.0))
        r_big = big.run(TPCCWorkload(seed=2).batch(30.0))
        assert r_big.throughput > r_small.throughput * 1.5

    def test_overload_caps_throughput(self):
        from repro.workloads import TPCHWorkload

        db = SimulatedDatabase("postgres", "m4.large", 24.0, seed=1)
        result = db.run(TPCHWorkload(rps=50.0, seed=2).batch(30.0))
        assert result.throughput < result.summary.offered_tps
        assert result.summary.cpu_utilisation == 1.0


class TestApplyConfig:
    def test_reload_applies_tunables(self, pg_db):
        new = pg_db.config.with_values({"work_mem": 64})
        outcome = pg_db.apply_config(new, mode="reload")
        assert not outcome.restarted
        assert pg_db.config["work_mem"] == 64

    def test_reload_skips_restart_required(self, pg_db):
        new = pg_db.config.with_values({"shared_buffers": 4096, "work_mem": 64})
        outcome = pg_db.apply_config(new, mode="reload")
        assert "shared_buffers" in outcome.skipped_restart_required
        assert pg_db.config["shared_buffers"] == 128
        assert pg_db.config["work_mem"] == 64

    def test_restart_applies_everything(self, pg_db):
        new = pg_db.config.with_values({"shared_buffers": 2048})
        outcome = pg_db.apply_config(new, mode="restart")
        assert outcome.restarted
        assert pg_db.config["shared_buffers"] == 2048

    def test_restart_with_bad_config_crashes(self, pg_db):
        bad = pg_db.config.with_values(
            {"shared_buffers": 60_000, "work_mem": 4_000}
        )
        with pytest.raises(DatabaseCrashed):
            pg_db.apply_config(bad, mode="restart")
        assert pg_db.crashed

    def test_crashed_instance_rejects_everything(self, pg_db, tpcc):
        bad = pg_db.config.with_values({"shared_buffers": 60_000, "work_mem": 4000})
        with pytest.raises(DatabaseCrashed):
            pg_db.apply_config(bad, mode="restart")
        with pytest.raises(DatabaseCrashed):
            pg_db.run(tpcc.batch(10.0))
        with pytest.raises(DatabaseCrashed):
            pg_db.apply_config(pg_db.config, mode="reload")

    def test_heal_restores_service(self, pg_db, tpcc):
        bad = pg_db.config.with_values({"shared_buffers": 60_000, "work_mem": 4000})
        with pytest.raises(DatabaseCrashed):
            pg_db.apply_config(bad, mode="restart")
        pg_db.heal()
        result = pg_db.run(tpcc.batch(30.0))
        assert result.throughput > 0

    def test_wrong_flavor_config_rejected(self, pg_db, my_catalog):
        with pytest.raises(ValueError, match="flavor"):
            pg_db.apply_config(KnobConfiguration(my_catalog))

    def test_unknown_mode_rejected(self, pg_db):
        with pytest.raises(ValueError, match="mode"):
            pg_db.apply_config(pg_db.config, mode="magic")


class TestDisruption:
    @staticmethod
    def _underloaded():
        """A DB with headroom so disruption accounting shows cleanly."""
        from repro.workloads import TPCCWorkload

        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=3)
        return db, TPCCWorkload(rps=400.0, seed=5)

    def test_restart_costs_throughput(self):
        quiet_db, quiet_w = self._underloaded()
        restarted_db, restarted_w = self._underloaded()
        restarted_db.apply_config(restarted_db.config, mode="restart")
        r_quiet = quiet_db.run(quiet_w.batch(60.0))
        r_restart = restarted_db.run(restarted_w.batch(60.0))
        expected = r_quiet.throughput * (1 - RESTART_DOWNTIME_S / 60.0)
        assert r_restart.throughput == pytest.approx(expected, rel=0.08)

    def test_socket_jitter_smaller_than_restart(self):
        socketed_db, socketed_w = self._underloaded()
        restarted_db, restarted_w = self._underloaded()
        socketed_db.apply_config(socketed_db.config, mode="socket")
        restarted_db.apply_config(restarted_db.config, mode="restart")
        r_socket = socketed_db.run(socketed_w.batch(60.0))
        r_restart = restarted_db.run(restarted_w.batch(60.0))
        assert r_socket.throughput > r_restart.throughput

    def test_reload_has_no_stall(self):
        quiet_db, quiet_w = self._underloaded()
        reloaded_db, reloaded_w = self._underloaded()
        reloaded_db.apply_config(reloaded_db.config, mode="reload")
        r_quiet = quiet_db.run(quiet_w.batch(60.0))
        r_reload = reloaded_db.run(reloaded_w.batch(60.0))
        assert r_reload.throughput == pytest.approx(r_quiet.throughput, rel=0.02)


class TestExplain:
    def test_explain_uses_live_config(self, pg_db):
        from repro.workloads.query import Query, QueryFootprint, QueryType

        q = Query("q", QueryType.AGGREGATE, "SELECT agg", QueryFootprint(sort_mb=100.0))
        assert pg_db.explain(q).uses_disk_sort
        pg_db.config = pg_db.config.with_values({"work_mem": 512})
        assert not pg_db.explain(q).uses_disk_sort

    def test_explain_with_hypothetical_config(self, pg_db):
        from repro.workloads.query import Query, QueryFootprint, QueryType

        q = Query("q", QueryType.AGGREGATE, "SELECT agg", QueryFootprint(sort_mb=100.0))
        candidate = pg_db.config.with_values({"work_mem": 512})
        assert pg_db.explain(q).uses_disk_sort  # live config unchanged
        assert not pg_db.explain(q, candidate).uses_disk_sort
        assert pg_db.config["work_mem"] == 4  # what-if did not apply
