"""Unit tests for KnobConfiguration (validation, budget, repair)."""

import pytest

from repro.dbsim.config import (
    KnobConfiguration,
    MemoryBudgetError,
    effective_sessions,
)


class TestConstruction:
    def test_defaults(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        assert cfg["work_mem"] == 4

    def test_override(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"work_mem": 64})
        assert cfg["work_mem"] == 64

    def test_out_of_range_rejected(self, pg_catalog):
        with pytest.raises(ValueError, match="work_mem"):
            KnobConfiguration(pg_catalog, {"work_mem": 10**9})

    def test_unknown_knob_rejected(self, pg_catalog):
        with pytest.raises(KeyError):
            KnobConfiguration(pg_catalog, {"nope": 1})

    def test_equality_and_hash(self, pg_catalog):
        a = KnobConfiguration(pg_catalog, {"work_mem": 8})
        b = KnobConfiguration(pg_catalog, {"work_mem": 8})
        c = KnobConfiguration(pg_catalog, {"work_mem": 9})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestDerivation:
    def test_with_values_does_not_mutate(self, pg_catalog):
        a = KnobConfiguration(pg_catalog)
        b = a.with_values({"work_mem": 128})
        assert a["work_mem"] == 4
        assert b["work_mem"] == 128

    def test_clamped(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog).clamped({"work_mem": 10**9})
        assert cfg["work_mem"] == pg_catalog.get("work_mem").max_value

    def test_diff(self, pg_catalog):
        a = KnobConfiguration(pg_catalog)
        b = a.with_values({"work_mem": 99, "temp_buffers": 77})
        diff = a.diff(b)
        assert diff == {"work_mem": (4.0, 99.0), "temp_buffers": (8.0, 77.0)}


class TestMemoryBudget:
    def test_effective_sessions_discount(self):
        assert effective_sessions(20) == 5.0
        assert effective_sessions(1) == 1.0

    def test_footprint_components(self, pg_catalog):
        cfg = KnobConfiguration(
            pg_catalog, {"shared_buffers": 1000, "work_mem": 100}
        )
        fp1 = cfg.memory_footprint_mb(1)
        fp20 = cfg.memory_footprint_mb(20)
        assert fp20 > fp1
        assert fp1 >= 1000 + 100

    def test_budget_check_passes(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        cfg.check_memory_budget(4096.0, active_connections=10)

    def test_budget_check_raises(self, pg_catalog):
        cfg = KnobConfiguration(
            pg_catalog, {"shared_buffers": 60_000, "work_mem": 4_000}
        )
        with pytest.raises(MemoryBudgetError, match="buffer"):
            cfg.check_memory_budget(8192.0, active_connections=20)

    def test_invalid_connections(self, pg_catalog):
        with pytest.raises(ValueError):
            KnobConfiguration(pg_catalog).memory_footprint_mb(0)


class TestFittedToBudget:
    def test_already_fitting_returned_unchanged(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog)
        assert cfg.fitted_to_budget(8192.0, 10) is cfg

    def test_buffer_capped_to_share(self, pg_catalog):
        cfg = KnobConfiguration(pg_catalog, {"shared_buffers": 60_000})
        fitted = cfg.fitted_to_budget(8000.0, 10, buffer_share=0.7)
        assert fitted["shared_buffers"] <= 0.7 * 0.95 * 8000.0 + 1e-6

    def test_working_areas_scaled(self, pg_catalog):
        cfg = KnobConfiguration(
            pg_catalog,
            {"work_mem": 4000, "maintenance_work_mem": 4000, "temp_buffers": 2000},
        )
        fitted = cfg.fitted_to_budget(8000.0, 20)
        fitted.check_memory_budget(8000.0 * 1.001, 20)
        # Relative proportions preserved under uniform scaling.
        assert fitted["work_mem"] == pytest.approx(
            fitted["maintenance_work_mem"], rel=0.01
        )

    def test_result_always_within_knob_ranges(self, pg_catalog):
        cfg = KnobConfiguration(
            pg_catalog, {"work_mem": 4000, "shared_buffers": 60_000}
        )
        fitted = cfg.fitted_to_budget(300.0, 50)
        for knob in pg_catalog:
            assert knob.min_value <= fitted[knob.name] <= knob.max_value

    def test_mysql_flavor(self, my_catalog):
        cfg = KnobConfiguration(
            my_catalog, {"innodb_buffer_pool_size": 60_000, "sort_buffer_size": 900}
        )
        fitted = cfg.fitted_to_budget(4000.0, 20)
        assert fitted["innodb_buffer_pool_size"] < 60_000
        assert fitted["sort_buffer_size"] < 900


class TestClassValues:
    def test_values_for_class(self, pg_catalog):
        from repro.dbsim.knobs import KnobClass

        cfg = KnobConfiguration(pg_catalog)
        bg = cfg.values_for_class(KnobClass.BGWRITER)
        assert "checkpoint_timeout" in bg
        assert "work_mem" not in bg

    def test_buffer_pool_mb_per_flavor(self, pg_catalog, my_catalog):
        assert KnobConfiguration(pg_catalog).buffer_pool_mb() == 128
        assert KnobConfiguration(my_catalog).buffer_pool_mb() == 128
