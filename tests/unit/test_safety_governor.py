"""Unit tests for safe online tuning: the SafetyGovernor (bounding,
watch/revert, quarantine), the DFA canary phase, the reconciler's
quarantine swap, the adversarial fault kind, and the governed facade."""

import numpy as np
import pytest

from repro.cloud import Provisioner
from repro.cloud.monitoring import MonitoringAgent
from repro.core.apply import (
    CanaryContext,
    DataFederationAgent,
    Reconciler,
    ServiceOrchestrator,
    adapter_for,
)
from repro.core.director import (
    REVERT_SOURCE,
    SAFETY_METRIC_FAMILIES,
    ConfigRepository,
    GovernorPolicy,
    SafetyGovernor,
)
from repro.dbsim import KnobConfiguration, ReplicatedService
from repro.dbsim.engine import DatabaseCrashed
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultyTuner,
)
from repro.tuners.base import config_to_vector
from repro.workloads import TPCCWorkload


def _governor(policy=None):
    return SafetyGovernor(ConfigRepository(), policy=policy)


def _service(replicas=2, seed=1):
    return ReplicatedService("postgres", "m4.large", 20.0, replicas=replicas, seed=seed)


def _batch(rps=400.0, duration_s=20.0):
    return TPCCWorkload(rps=rps, seed=4).batch(duration_s)


class TestGovernorPolicy:
    def test_defaults_valid(self):
        policy = GovernorPolicy()
        assert policy.step_budget == 0.2
        assert policy.watch_windows == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"step_budget": 0.0},
            {"step_budget": 1.5},
            {"canary_threshold": 0.0},
            {"revert_threshold": 1.2},
            {"watch_windows": 0},
            {"quarantine_s": 0.0},
            {"anchor_decay": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GovernorPolicy(**kwargs)


class TestBound:
    def test_identical_candidate_untouched(self, pg_catalog):
        governor = _governor()
        config = KnobConfiguration(pg_catalog)
        move = governor.bound("svc", config, config, 0.0)
        assert not move.clamped
        assert move.distance == 0.0
        assert move.stages == 0
        assert move.config == config
        assert governor.clamps == 0

    def test_small_move_passes_through(self, pg_catalog):
        governor = _governor()
        incumbent = KnobConfiguration(pg_catalog)
        candidate = incumbent.with_values({"work_mem": 8})
        move = governor.bound("svc", incumbent, candidate, 0.0)
        assert not move.clamped
        assert move.stages == 1
        assert move.config == candidate

    def test_oversized_move_clamped_to_budget(self, pg_catalog):
        policy = GovernorPolicy(step_budget=0.2)
        governor = _governor(policy)
        incumbent = KnobConfiguration(pg_catalog)
        updates = {
            knob.name: knob.max_value
            for knob in pg_catalog
            if not knob.restart_required
        }
        candidate = incumbent.with_values(updates)
        move = governor.bound("svc", incumbent, candidate, 0.0)
        assert move.clamped
        assert move.distance > policy.step_budget
        delta = config_to_vector(move.config) - config_to_vector(incumbent)
        bounded_distance = float(np.max(np.abs(delta)))
        assert bounded_distance <= policy.step_budget + 1e-6
        assert move.stages == int(np.ceil(move.distance / policy.step_budget))
        assert governor.clamps == 1

    def test_clamp_keeps_unchanged_knobs_byte_identical(self, pg_catalog):
        governor = _governor(GovernorPolicy(step_budget=0.05))
        incumbent = KnobConfiguration(pg_catalog)
        moved = next(k.name for k in pg_catalog if not k.restart_required)
        candidate = incumbent.with_values({moved: incumbent[moved] * 4 + 64})
        move = governor.bound("svc", incumbent, candidate, 0.0)
        for name, value in incumbent.as_dict().items():
            if name != moved:
                assert move.config[name] == value

    def test_bounded_values_stay_in_knob_ranges(self, pg_catalog):
        governor = _governor(GovernorPolicy(step_budget=0.3))
        incumbent = KnobConfiguration(pg_catalog)
        candidate = incumbent.with_values(
            {
                knob.name: knob.max_value
                for knob in pg_catalog
                if not knob.restart_required
            }
        )
        move = governor.bound("svc", incumbent, candidate, 0.0)
        by_name = {knob.name: knob for knob in pg_catalog}
        for name, value in move.config.as_dict().items():
            assert by_name[name].min_value <= value <= by_name[name].max_value


class TestWatchAndRevert:
    def _promoted(self, pg_catalog, policy=None):
        governor = _governor(policy)
        good = KnobConfiguration(pg_catalog)
        # Two healthy windows set the anchor to (100 tps, good config).
        assert governor.observe_window("svc", good, 100.0, 0.0) is None
        bad = good.with_values({"work_mem": 1})
        governor.note_promotion("svc", bad, 300.0)
        return governor, good, bad

    def test_regression_under_watch_reverts(self, pg_catalog):
        governor, good, bad = self._promoted(pg_catalog)
        decision = governor.observe_window("svc", bad, 50.0, 600.0)
        assert decision is not None
        assert decision.config == good
        assert governor.reverts == 1
        assert not governor.watching("svc")
        incident = decision.incident
        assert incident.reverted_config == bad
        assert incident.restored_config == good
        assert incident.observed_tps == 50.0
        latest = governor.configs.latest("svc")
        assert latest is not None
        assert latest.source == REVERT_SOURCE
        assert latest.config == good

    def test_healthy_watch_accepts_after_watch_windows(self, pg_catalog):
        governor, good, bad = self._promoted(
            pg_catalog, GovernorPolicy(watch_windows=2)
        )
        assert governor.observe_window("svc", bad, 99.0, 600.0) is None
        assert governor.watching("svc")
        assert governor.observe_window("svc", bad, 99.0, 900.0) is None
        assert not governor.watching("svc")
        assert governor.reverts == 0

    def test_no_revert_without_watch(self, pg_catalog):
        governor = _governor()
        config = KnobConfiguration(pg_catalog)
        governor.observe_window("svc", config, 100.0, 0.0)
        # Not watching: even a 90 % drop is just drift, not a revert.
        assert governor.observe_window("svc", config, 10.0, 300.0) is None
        assert governor.reverts == 0

    def test_revert_failed_rearms_watch(self, pg_catalog):
        governor, good, bad = self._promoted(pg_catalog)
        decision = governor.observe_window("svc", bad, 50.0, 600.0)
        assert decision is not None and not governor.watching("svc")
        governor.revert_failed("svc")
        assert governor.watching("svc")
        # The next regressed window orders the revert again.
        assert governor.observe_window("svc", bad, 40.0, 900.0) is not None
        assert governor.reverts == 2

    def test_anchor_decays_toward_drifted_workload(self, pg_catalog):
        policy = GovernorPolicy(anchor_decay=0.9)
        governor = _governor(policy)
        config = KnobConfiguration(pg_catalog)
        governor.observe_window("svc", config, 100.0, 0.0)
        state = governor._state("svc")
        # Lower-throughput windows decay the anchor instead of pinning it.
        governor.observe_window("svc", config, 80.0, 300.0)
        assert state.anchor_tps == pytest.approx(90.0)
        governor.observe_window("svc", config, 85.0, 600.0)
        assert state.anchor_tps == pytest.approx(85.0)
        assert state.anchor_config == config


class TestQuarantine:
    def _reverted(self, pg_catalog, policy=None):
        governor = _governor(policy)
        good = KnobConfiguration(pg_catalog)
        governor.observe_window("svc", good, 100.0, 0.0)
        bad = good.with_values({"work_mem": 1})
        governor.note_promotion("svc", bad, 300.0)
        governor.observe_window("svc", bad, 50.0, 600.0)
        return governor, good, bad

    def test_reverted_config_quarantined(self, pg_catalog):
        governor, good, bad = self._reverted(pg_catalog)
        assert governor.quarantined_replacement("svc", bad, 700.0) == good

    def test_quarantine_expires(self, pg_catalog):
        governor, good, bad = self._reverted(
            pg_catalog, GovernorPolicy(quarantine_s=100.0)
        )
        assert governor.quarantined_replacement("svc", bad, 650.0) == good
        assert governor.quarantined_replacement("svc", bad, 701.0) is None

    def test_other_configs_and_instances_clean(self, pg_catalog):
        governor, good, bad = self._reverted(pg_catalog)
        assert governor.quarantined_replacement("svc", good, 700.0) is None
        assert governor.quarantined_replacement("other", bad, 700.0) is None


class TestDFACanary:
    def test_canary_pass_promotes_everywhere(self):
        service = _service()
        batch = _batch()
        report = DataFederationAgent().apply(
            service,
            service.config.with_values({"work_mem": 64}),
            instance_id="svc",
            canary=CanaryContext(batch=batch),
        )
        assert report.applied
        assert report.canary_evaluated and not report.canary_rejected
        assert report.canary_baseline_tps > 0
        assert report.canary_tps > 0
        assert report.nodes_updated == 3
        assert service.configs_consistent()
        assert service.master.config["work_mem"] == 64

    def test_canary_rejects_real_regression(self):
        # At a saturating load, starving every reloadable knob measurably
        # regresses replay throughput; a tight threshold catches it.
        service = _service()
        batch = _batch(rps=3000.0)
        starved = service.config.with_values(
            {
                knob.name: knob.min_value
                for knob in service.config.catalog
                if not knob.restart_required
            }
        )
        previous = service.master.config
        report = DataFederationAgent().apply(
            service,
            starved,
            instance_id="svc",
            canary=CanaryContext(batch=batch, threshold=0.99),
        )
        assert not report.applied
        assert report.canary_rejected
        assert report.rejected_at == "canary"
        assert report.canary_tps < 0.99 * report.canary_baseline_tps
        # Never mutates the master; the canary slave is restored.
        assert service.master.config == previous
        assert service.slaves[0].config == previous

    def test_canary_reads_throughput_via_monitoring_seam(self):
        service = _service()
        monitor = MonitoringAgent("svc/canary")
        report = DataFederationAgent().apply(
            service,
            service.config.with_values({"work_mem": 64}),
            instance_id="svc",
            canary=CanaryContext(batch=_batch(), monitor=monitor),
        )
        assert report.applied
        # Both replays ingested: incumbent first, candidate second.
        assert len(monitor.throughput) == 2
        assert monitor.throughput.values[0] == report.canary_baseline_tps
        assert monitor.throughput.values[1] == report.canary_tps

    def test_candidate_replay_crash_rejects_and_restores(self, monkeypatch):
        service = _service()
        previous = service.master.config
        node = service.slaves[0]
        real_run = node.run
        calls = {"n": 0}

        def crashing_second_run(batch):
            calls["n"] += 1
            if calls["n"] == 2:
                node.crashed = True
                raise DatabaseCrashed("canary replay crash")
            return real_run(batch)

        monkeypatch.setattr(node, "run", crashing_second_run)
        report = DataFederationAgent().apply(
            service,
            service.config.with_values({"work_mem": 64}),
            instance_id="svc",
            canary=CanaryContext(batch=_batch()),
        )
        assert not report.applied
        assert report.rejected_at == "canary"
        assert report.healed_slaves == [0]
        assert not node.crashed
        assert node.config == previous
        assert service.master.config == previous

    def test_no_slaves_skips_canary(self):
        service = _service(replicas=0)
        report = DataFederationAgent().apply(
            service,
            service.config.with_values({"work_mem": 64}),
            instance_id="svc",
            canary=CanaryContext(batch=_batch()),
        )
        assert report.applied
        assert not report.canary_evaluated


class TestReconcilerQuarantineSwap:
    def _deployment(self):
        provisioner = Provisioner(seed=3)
        deployment = provisioner.provision(replicas=2)
        orchestrator = ServiceOrchestrator()
        orchestrator.register(deployment)
        return orchestrator, deployment

    def test_reverted_config_never_reapplied(self, pg_catalog):
        """Regression: persisted intent holding a just-reverted config must
        converge to the incident's restored config, not back to the bad one."""
        orchestrator, deployment = self._deployment()
        service = deployment.service
        instance_id = deployment.instance_id
        good = service.master.config

        governor = _governor()
        governor.observe_window(instance_id, good, 100.0, 0.0)
        bad = good.with_values({"work_mem": 1})
        governor.note_promotion(instance_id, bad, 300.0)
        # The promotion was persisted before the regression was observed.
        orchestrator.persist_config(instance_id, bad)
        decision = governor.observe_window(instance_id, bad, 50.0, 600.0)
        assert decision is not None
        # The revert landed on the live fleet...
        report = DataFederationAgent().apply(
            service, decision.config, instance_id=instance_id
        )
        assert report.applied

        # ...but persistence still says "bad". An incident-log-aware
        # reconciler swaps the persisted intent instead of restoring it.
        reconciler = Reconciler(
            orchestrator, watcher_timeout_s=60.0, incident_log=governor
        )
        reconciler.tick(instance_id, service, 700.0)
        assert orchestrator.persisted_config(instance_id) == good
        action = reconciler.tick(instance_id, service, 900.0)
        assert not action.drift_detected
        assert service.master.config == good

    def test_without_incident_log_bad_config_comes_back(self, pg_catalog):
        """The counterfactual: an unaware reconciler re-applies the bad
        config from persistence — exactly the loop the seam closes."""
        orchestrator, deployment = self._deployment()
        service = deployment.service
        instance_id = deployment.instance_id
        good = service.master.config
        bad = good.with_values({"work_mem": 1})
        orchestrator.persist_config(instance_id, bad)

        reconciler = Reconciler(orchestrator, watcher_timeout_s=60.0)
        reconciler.tick(instance_id, service, 700.0)
        action = reconciler.tick(instance_id, service, 900.0)
        assert action.reconciled
        assert service.master.config == bad


class TestBadRecommendationFault:
    def _shimmed(self, catalog, magnitude=1.0, seed=0, enabled=True):
        from tests.unit.test_robustness import _StubTuner, _request

        plan = FaultPlan(
            (FaultEvent(FaultKind.BAD_RECOMMENDATION, "t0", 0.0, 100.0, magnitude),)
        )
        injector = FaultInjector(plan, enabled=enabled)
        tuner = FaultyTuner(_StubTuner(catalog), injector, "t0", seed=seed)
        return tuner, _request(catalog)

    def test_perturbs_reloadable_knobs_only(self, pg_catalog):
        tuner, request = self._shimmed(pg_catalog)
        honest = self._shimmed(pg_catalog, enabled=False)[0].recommend(request)
        rec = tuner.recommend(request)
        assert rec.config != honest.config
        for knob in pg_catalog:
            if knob.restart_required:
                assert rec.config[knob.name] == honest.config[knob.name]

    def test_memory_knobs_starved_at_full_magnitude(self, pg_catalog):
        from repro.dbsim.knobs import KnobClass

        tuner, request = self._shimmed(pg_catalog, magnitude=1.0)
        rec = tuner.recommend(request)
        for knob in pg_catalog:
            if knob.restart_required:
                continue
            if knob.knob_class is KnobClass.MEMORY:
                assert rec.config[knob.name] == pytest.approx(
                    knob.min_value, abs=1.0
                )

    def test_deterministic_across_identically_seeded_shims(self, pg_catalog):
        tuner_a, request = self._shimmed(pg_catalog, seed=5)
        tuner_b, _ = self._shimmed(pg_catalog, seed=5)
        assert tuner_a.recommend(request).config == tuner_b.recommend(request).config

    def test_disabled_injector_is_passthrough(self, pg_catalog):
        tuner, request = self._shimmed(pg_catalog, enabled=False)
        honest = self._shimmed(pg_catalog, enabled=False)[0]
        assert tuner.recommend(request).config == honest.recommend(request).config
        assert tuner._adversarial_rng is None


class TestGovernedFacade:
    def _svc(self, governor=None):
        from repro import AutoDBaaS
        from repro.dbsim import postgres_catalog
        from repro.tuners import OtterTuneTuner, WorkloadRepository

        repo = WorkloadRepository()
        tuner = OtterTuneTuner(
            postgres_catalog(), repo, memory_limit_mb=6553.6, seed=1
        )
        return AutoDBaaS([tuner], repo, window_s=60.0, governor=governor)

    def test_default_has_no_governor(self):
        svc = self._svc()
        assert svc.governor is None

    def test_governed_attach_builds_canary_monitor(self):
        governed = self._svc(GovernorPolicy())
        deployment = Provisioner(seed=2).provision()
        governed.attach(deployment, TPCCWorkload(seed=3))
        assert governed.instances[deployment.instance_id].canary_monitor is not None
        ungoverned = self._svc()
        other = Provisioner(seed=2).provision()
        ungoverned.attach(other, TPCCWorkload(seed=3))
        assert ungoverned.instances[other.instance_id].canary_monitor is None

    def test_governed_run_is_deterministic(self):
        def run():
            svc = self._svc(GovernorPolicy())
            deployment = Provisioner(seed=2).provision(
                plan="m4.large", data_size_gb=21.0
            )
            svc.attach(deployment, TPCCWorkload(seed=3), policy="tde")
            tps = []
            for _ in range(6):
                tps.extend(
                    outcome.result.throughput
                    for outcome in svc.step()
                    if outcome.result is not None
                )
            governor = svc.governor
            counters = (
                governor.clamps,
                governor.canary_rejections,
                governor.reverts,
            )
            return tps, counters

        assert run() == run()


class TestSafetyMetricFamilies:
    def test_family_names_and_kind(self):
        assert set(SAFETY_METRIC_FAMILIES) == {
            "repro_safety_violations_total",
            "repro_canary_rejections_total",
            "repro_reverts_total",
        }
        for help_text in SAFETY_METRIC_FAMILIES.values():
            assert help_text
