"""Delta-only wire discipline of the sharded fig09 protocol.

The repository snapshot crosses to each shard exactly once, at session
setup. These tests pin the steady-state invariant at the payload level:
pickle whatever actually crosses the pipe after window 0 and prove it
contains no repository snapshot (nor any heavyweight object at all), is
an order of magnitude smaller than re-broadcasting the snapshot, and
decodes back to value-identical objects.
"""

import pickle

from repro.cloud.fleet import FleetSpec
from repro.common.rng import stream_root
from repro.dbsim.knobs import postgres_catalog
from repro.dbsim.metrics import METRIC_NAMES
from repro.experiments.common import offline_train
from repro.experiments.fig09_requests_per_minute import (
    Fig09ShardWorker,
    MemberTuningOut,
    MemberWindowOut,
    WindowCommand,
    _config_values,
    _decode_config,
    _decode_metrics,
    _decode_sample,
    _encode_sample,
    _ShardSpec,
)
from repro.parallel.shm import MemberBank
from repro.parallel.stats import SessionStats, StepStats, render_session_stats
from repro.tuners.base import TrainingSample
from repro.workloads.production import ProductionWorkload

#: Class names that must never appear in a steady-state pipe payload.
_HEAVY_MARKERS = (
    b"WorkloadRepository",
    b"TrainingSample",
    b"KnobConfiguration",
    b"KnobCatalog",
    b"MetricsDelta",
    b"TimeSeries",
)


def _make_worker(size: int = 2):
    catalog = postgres_catalog()
    repository = offline_train(
        catalog,
        [
            ProductionWorkload(
                mean_rps=10_000.0, data_size_gb=30.0, seed=90,
                name="production-offline",
            )
        ],
        n_configs=14,
        seed=91,
    )
    bank = MemberBank.create(size, len(catalog), len(METRIC_NAMES), shared=False)
    spec = _ShardSpec(
        fleet=FleetSpec(size=size, root=stream_root(0), sample_size=64),
        repository=repository,
        tde_seed=0,
        window_s=300.0,
        bank=bank.handle(),
    )
    return Fig09ShardWorker(spec, tuple(range(size))), bank, catalog, repository


class TestDeltaOnlyBroadcast:
    def test_steady_state_payload_has_no_repository_snapshot(self):
        worker, bank, catalog, repository = _make_worker()
        outs0 = worker.step(WindowCommand(window_s=300.0))
        assert all(isinstance(out, MemberWindowOut) for _, out in outs0)

        # The coordinator's steady-state broadcast: one fitted config and
        # one fresh sample, both wire-encoded.
        first = outs0[0][1]
        sample = TrainingSample(
            first.workload_name, first.config, first.metrics, 0.0
        )
        command = WindowCommand(
            window_s=300.0,
            apply={0: _config_values(first.config)},
            new_samples=(_encode_sample(sample),),
        )
        payload = pickle.dumps(("step", command))
        for marker in _HEAVY_MARKERS:
            assert marker not in payload, marker

        snapshot = pickle.dumps(repository)
        assert len(payload) * 10 <= len(snapshot), (
            f"steady-state payload {len(payload)}B is not >=10x smaller "
            f"than the {len(snapshot)}B snapshot broadcast it replaced"
        )

        outs1 = worker.step(command)
        reply = pickle.dumps(outs1)
        for marker in _HEAVY_MARKERS:
            assert marker not in reply, marker
        assert all(isinstance(out, MemberTuningOut) for _, out in outs1)

    def test_bank_rows_decode_to_live_member_state(self):
        worker, bank, catalog, _ = _make_worker()
        worker.step(WindowCommand(window_s=300.0))
        worker.step(WindowCommand(window_s=300.0))
        for i in (0, 1):
            master = worker.members[i].deployment.service.master
            decoded = _decode_config(catalog, bank.config_row(i))
            assert decoded == master.config
            metrics = _decode_metrics(bank.metrics_row(i))
            assert set(metrics.values) == set(METRIC_NAMES)

    def test_sample_codec_round_trips_exactly(self):
        worker, _, catalog, _ = _make_worker()
        outs0 = worker.step(WindowCommand(window_s=300.0))
        first = outs0[0][1]
        sample = TrainingSample(
            first.workload_name, first.config, first.metrics, 42.0
        )
        decoded = _decode_sample(catalog, _encode_sample(sample))
        assert decoded.workload_id == sample.workload_id
        assert decoded.config == sample.config
        assert decoded.metrics.values == sample.metrics.values
        assert decoded.timestamp_s == sample.timestamp_s
        # Value-exact means repr-exact: downstream maths sees the same bits.
        assert repr(decoded.metrics) == repr(sample.metrics)


class TestMemberBank:
    def test_shared_block_round_trips_through_handle(self):
        bank = MemberBank.create(3, 4, 5, shared=True)
        try:
            handle = pickle.loads(pickle.dumps(bank.handle()))
            attached = handle.attach()
            try:
                attached.write(1, [1.0, 2.0, 3.0, 4.0], [0.5] * 5)
                assert bank.config_row(1) == [1.0, 2.0, 3.0, 4.0]
                assert bank.metrics_row(1) == [0.5] * 5
                assert bank.config_row(0) == [0.0] * 4
            finally:
                attached.close()
        finally:
            bank.close()

    def test_plain_bank_handle_is_direct(self):
        bank = MemberBank.create(2, 3, 3, shared=False)
        assert bank.handle().attach() is bank
        bank.close()  # no-op for plain arrays

    def test_dimensions_validated(self):
        try:
            MemberBank(0, 1, 1)
        except ValueError as exc:
            assert "positive" in str(exc)
        else:  # pragma: no cover - failure branch
            raise AssertionError("zero-member bank accepted")


class TestSessionStatsRendering:
    def test_render_reports_bytes_and_phases(self):
        stats = SessionStats(
            backend="process",
            shards=4,
            snapshot_bytes=50_000,
            final_snapshot_bytes=80_000,
        )
        stats.record(
            StepStats(
                command_bytes=40_000, bytes_sent=160_000, bytes_received=9_000,
                serialize_s=0.01, send_s=0.002, step_s=0.5, recv_s=0.51,
                merge_s=0.001,
            )
        )
        stats.record(
            StepStats(
                command_bytes=1_000, bytes_sent=4_000, bytes_received=2_000,
                serialize_s=0.001, send_s=0.001, step_s=0.4, recv_s=0.41,
                merge_s=0.001,
            )
        )
        text = render_session_stats(stats)
        assert "backend=process shards=4 windows=2" in text
        assert "setup snapshot: 50000 bytes/worker" in text
        assert "steady-state command: mean 1000 bytes/window" in text
        assert "80.0x smaller" in text
        assert "member step" in text and "reduce" in text
        assert stats.mean_command_bytes() == 1000.0
        assert stats.total("bytes_sent") == 164_000
