"""Unit tests for the RL-style tuner."""

import numpy as np
import pytest

from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners import CDBTuneTuner, TrainingSample, TuningRequest
from repro.tuners.cdbtune import cdbtune_reward


class TestReward:
    def test_positive_when_beating_initial(self):
        assert cdbtune_reward(120.0, 100.0, 110.0) > 0

    def test_negative_when_below_initial(self):
        assert cdbtune_reward(80.0, 100.0, 90.0) < 0

    def test_zero_at_initial(self):
        assert cdbtune_reward(100.0, 100.0, 100.0) == pytest.approx(0.0)

    def test_scales_with_improvement(self):
        small = cdbtune_reward(105.0, 100.0, 100.0)
        big = cdbtune_reward(150.0, 100.0, 100.0)
        assert big > small > 0

    def test_handles_zero_baselines(self):
        assert np.isfinite(cdbtune_reward(10.0, 0.0, 0.0))


def _sample(pg_catalog, tps, wid="w"):
    return TrainingSample(
        wid, KnobConfiguration(pg_catalog), MetricsDelta({"throughput_tps": tps})
    )


def _request(pg_catalog, tps=100.0, wid="w"):
    return TuningRequest(
        "svc",
        wid,
        KnobConfiguration(pg_catalog),
        MetricsDelta({"throughput_tps": tps}),
    )


class TestRecommend:
    def test_action_maps_to_valid_config(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, seed=0)
        rec = tuner.recommend(_request(pg_catalog))
        for knob in pg_catalog:
            assert knob.min_value <= rec.config[knob.name] <= knob.max_value

    def test_budget_repair_applied(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, memory_limit_mb=2000.0, seed=0)
        rec = tuner.recommend(_request(pg_catalog))
        rec.config.check_memory_budget(2000.0 * 1.01, 20)

    def test_exploration_decays(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, seed=0)
        before = tuner.exploration_sigma
        tuner.recommend(_request(pg_catalog))
        assert tuner.exploration_sigma < before

    def test_recommendation_cost_constant(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, seed=0)
        assert tuner.recommendation_cost_s() == 1.0

    def test_ranked_knobs_cover_catalog(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, seed=0)
        rec = tuner.recommend(_request(pg_catalog))
        assert sorted(rec.ranked_knobs) == sorted(pg_catalog.names())


class TestLearningLoop:
    def test_observe_then_recommend_builds_transitions(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, seed=0)
        tuner.observe(_sample(pg_catalog, 100.0))
        tuner.recommend(_request(pg_catalog, 100.0))
        tuner.observe(_sample(pg_catalog, 120.0))
        assert len(tuner.episode_rewards) == 1
        assert tuner.episode_rewards[0] > 0

    def test_reward_sign_tracks_throughput(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, seed=0)
        tuner.observe(_sample(pg_catalog, 100.0))
        tuner.recommend(_request(pg_catalog, 100.0))
        tuner.observe(_sample(pg_catalog, 50.0))
        assert tuner.episode_rewards[-1] < 0

    def test_workloads_tracked_independently(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, seed=0)
        tuner.observe(_sample(pg_catalog, 100.0, wid="a"))
        tuner.observe(_sample(pg_catalog, 10.0, wid="b"))
        tuner.recommend(_request(pg_catalog, 100.0, wid="a"))
        tuner.recommend(_request(pg_catalog, 10.0, wid="b"))
        tuner.observe(_sample(pg_catalog, 120.0, wid="a"))
        tuner.observe(_sample(pg_catalog, 12.0, wid="b"))
        assert len(tuner.episode_rewards) == 2
        assert all(r > 0 for r in tuner.episode_rewards)

    def test_no_transition_without_pending_action(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, seed=0)
        tuner.observe(_sample(pg_catalog, 100.0))
        tuner.observe(_sample(pg_catalog, 110.0))
        assert tuner.episode_rewards == []

    def test_training_step_changes_actor(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, batch_size=4, seed=0)
        state_probe = np.zeros((1, len(tuner.metric_names)))
        before = tuner.actor(state_probe).copy()
        tps = 100.0
        for i in range(12):
            tuner.observe(_sample(pg_catalog, tps))
            tuner.recommend(_request(pg_catalog, tps))
            tps *= 1.05
        after = tuner.actor(state_probe)
        assert not np.allclose(before, after)
