"""Unit tests for the config director layer."""

import pytest

from repro.core.director import (
    ConfigDirector,
    ConfigRepository,
    LeastLoadedBalancer,
    TunerInstance,
)
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.metrics import MetricsDelta
from repro.tuners import Recommendation, TuningRequest
from repro.tuners.base import Tuner


class _StubTuner(Tuner):
    """Deterministic tuner with configurable cost for balancer tests."""

    def __init__(self, catalog, cost_s=10.0, name="stub"):
        self.catalog = catalog
        self.cost_s = cost_s
        self.name = name
        self.observed = []

    def observe(self, sample):
        self.observed.append(sample)

    def recommend(self, request):
        config = request.config.with_values({"work_mem": 64})
        return Recommendation(request.instance_id, config, self.name)

    def recommendation_cost_s(self):
        return self.cost_s


def _request(pg_catalog, t=0.0, config=None):
    return TuningRequest(
        "svc-1",
        "w",
        config if config is not None else KnobConfiguration(pg_catalog),
        MetricsDelta({}),
        timestamp_s=t,
    )


class TestBalancer:
    def test_requires_instances(self):
        with pytest.raises(ValueError):
            LeastLoadedBalancer([])

    def test_duplicate_ids_rejected(self, pg_catalog):
        t = _StubTuner(pg_catalog)
        with pytest.raises(ValueError):
            LeastLoadedBalancer(
                [TunerInstance("a", t), TunerInstance("a", t)]
            )

    def test_assign_picks_least_loaded(self, pg_catalog):
        cheap = TunerInstance("cheap", _StubTuner(pg_catalog, cost_s=1.0))
        pricey = TunerInstance("pricey", _StubTuner(pg_catalog, cost_s=100.0))
        balancer = LeastLoadedBalancer([cheap, pricey])
        picks = [balancer.assign().instance_id for _ in range(5)]
        # After pricey serves once (100 s queued) everything goes to cheap.
        assert picks.count("cheap") >= 4

    def test_drain_releases_work(self, pg_catalog):
        inst = TunerInstance("a", _StubTuner(pg_catalog, cost_s=30.0))
        balancer = LeastLoadedBalancer([inst])
        balancer.assign()
        balancer.drain(10.0)
        assert inst.outstanding_s == 20.0
        balancer.drain(100.0)
        assert inst.outstanding_s == 0.0

    def test_saturated(self, pg_catalog):
        inst = TunerInstance("a", _StubTuner(pg_catalog, cost_s=500.0))
        balancer = LeastLoadedBalancer([inst])
        assert not balancer.saturated(100.0)
        balancer.assign()
        assert balancer.saturated(100.0)

    def test_drain_negative_rejected(self, pg_catalog):
        balancer = LeastLoadedBalancer([TunerInstance("a", _StubTuner(pg_catalog))])
        with pytest.raises(ValueError):
            balancer.drain(-1.0)


class TestConfigRepository:
    def test_versions_increment(self, pg_catalog):
        repo = ConfigRepository()
        cfg = KnobConfiguration(pg_catalog)
        v1 = repo.store("svc", cfg, "t", 0.0)
        v2 = repo.store("svc", cfg.with_values({"work_mem": 9}), "t", 1.0)
        assert (v1.version, v2.version) == (1, 2)
        assert repo.latest("svc").version == 2
        assert len(repo.history("svc")) == 2

    def test_latest_none_when_empty(self):
        assert ConfigRepository().latest("svc") is None

    def test_knob_percentile(self, pg_catalog):
        repo = ConfigRepository()
        for i, value in enumerate([100, 200, 300, 400]):
            repo.store(
                "svc",
                KnobConfiguration(pg_catalog, {"shared_buffers": value}),
                "t",
                float(i),
            )
        assert repo.knob_percentile("svc", "shared_buffers", 50) == 250.0

    def test_knob_percentile_since_filter(self, pg_catalog):
        repo = ConfigRepository()
        repo.store("svc", KnobConfiguration(pg_catalog, {"shared_buffers": 100}), "t", 0.0)
        repo.store("svc", KnobConfiguration(pg_catalog, {"shared_buffers": 900}), "t", 10.0)
        assert repo.knob_percentile("svc", "shared_buffers", 99, since_s=5.0) == 900.0

    def test_knob_percentile_none_without_history(self, pg_catalog):
        assert ConfigRepository().knob_percentile("svc", "work_mem", 99) is None


class TestConfigDirector:
    def _director(self, pg_catalog, cost_s=10.0):
        balancer = LeastLoadedBalancer(
            [TunerInstance("t0", _StubTuner(pg_catalog, cost_s))]
        )
        return ConfigDirector(balancer)

    def test_handle_stores_and_splits(self, pg_catalog):
        director = self._director(pg_catalog)
        split = director.handle_tuning_request(_request(pg_catalog, t=5.0))
        assert split.reloadable["work_mem"] == 64
        assert not split.has_deferred
        assert director.configs.latest("svc-1") is not None
        assert director.total_requests == 1

    def test_restart_knobs_deferred(self, pg_catalog):
        class RestartTuner(_StubTuner):
            def recommend(self, request):
                config = request.config.with_values(
                    {"shared_buffers": 4096, "work_mem": 64}
                )
                return Recommendation(request.instance_id, config, self.name)

        balancer = LeastLoadedBalancer(
            [TunerInstance("t0", RestartTuner(pg_catalog))]
        )
        director = ConfigDirector(balancer)
        split = director.handle_tuning_request(_request(pg_catalog))
        assert split.deferred_knobs == {"shared_buffers": 4096.0}
        assert split.reloadable["shared_buffers"] == 128  # unchanged now
        assert split.reloadable["work_mem"] == 64  # applied now
        assert director.pending_downtime_changes("svc-1") == {
            "shared_buffers": 4096.0
        }

    def test_consume_downtime_changes_pops(self, pg_catalog):
        class RestartTuner(_StubTuner):
            def recommend(self, request):
                config = request.config.with_values({"shared_buffers": 4096})
                return Recommendation(request.instance_id, config, self.name)

        director = ConfigDirector(
            LeastLoadedBalancer([TunerInstance("t0", RestartTuner(pg_catalog))])
        )
        director.handle_tuning_request(_request(pg_catalog))
        assert director.consume_downtime_changes("svc-1")
        assert director.consume_downtime_changes("svc-1") == {}

    def test_requests_per_minute(self, pg_catalog):
        director = self._director(pg_catalog)
        for t in (0.0, 30.0, 90.0, 119.0):
            director.handle_tuning_request(_request(pg_catalog, t=t))
        assert director.requests_per_minute(0.0, 120.0) == pytest.approx(2.0)

    def test_requests_per_minute_invalid_window(self, pg_catalog):
        with pytest.raises(ValueError):
            self._director(pg_catalog).requests_per_minute(10.0, 10.0)
