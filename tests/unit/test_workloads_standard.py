"""Unit tests for the standard workload generators (paper characteristics)."""

import pytest

from repro.workloads import (
    AdulteratedTPCCWorkload,
    ProductionWorkload,
    TPCCWorkload,
    TPCHWorkload,
    TwitterWorkload,
    WikipediaWorkload,
    YCSBWorkload,
)
from repro.workloads.production import diurnal_profile


class TestTPCC:
    def test_standard_mix_weights(self, tpcc):
        weights = {name: f.weight for name, f in tpcc.families.items()}
        assert weights["new_order"] == 45.0
        assert weights["payment"] == 43.0

    def test_write_heavy(self, tpcc):
        batch = tpcc.batch(30.0)
        assert batch.write_fraction > 0.8

    def test_fig2_tiny_working_memory(self, tpcc):
        """Fig. 2: TPC-C uses ~0.5 MB of working memory — all sorts small."""
        max_sort = max(f.footprint.sort_mb for f in tpcc.families.values())
        assert max_sort <= 0.5

    def test_paper_defaults(self):
        w = TPCCWorkload()
        assert w.rps == 3300.0
        assert w.data_size_gb == 26.0


class TestYCSB:
    def test_no_working_memory(self, ycsb):
        """Fig. 2: YCSB queries do not use working memory."""
        assert all(f.footprint.sort_mb == 0.0 for f in ycsb.families.values())

    def test_mix_ratio(self):
        w = YCSBWorkload(read_fraction=0.5, seed=0)
        batch = w.batch(10.0)
        ratio = batch.counts["read"] / max(batch.counts["update"], 1)
        assert 0.8 < ratio < 1.25

    def test_read_fraction_validation(self):
        with pytest.raises(ValueError):
            YCSBWorkload(read_fraction=1.5)

    def test_paper_defaults(self):
        w = YCSBWorkload()
        assert w.rps == 5000.0
        assert w.data_size_gb == 20.0


class TestWikipedia:
    def test_read_heavy(self):
        batch = WikipediaWorkload(seed=0).batch(30.0)
        assert batch.write_fraction < 0.15

    def test_no_working_memory(self):
        w = WikipediaWorkload()
        assert all(f.footprint.sort_mb == 0.0 for f in w.families.values())

    def test_paper_defaults(self):
        w = WikipediaWorkload()
        assert w.rps == 1000.0
        assert w.data_size_gb == 12.0


class TestTwitter:
    def test_read_heavy_high_rate(self):
        w = TwitterWorkload()
        assert w.rps == 10_000.0
        batch = w.batch(10.0)
        assert batch.write_fraction < 0.2

    def test_has_small_sorts(self):
        w = TwitterWorkload()
        sorts = [f.footprint.sort_mb for f in w.families.values()]
        assert 0.0 < max(sorts) < 2.0


class TestTPCH:
    def test_huge_working_memory(self):
        """Fig. 2: CH-bench needs hundreds of MB of working memory."""
        w = TPCHWorkload()
        assert max(f.footprint.sort_mb for f in w.families.values()) >= 300.0

    def test_low_rate_analytic(self):
        assert TPCHWorkload().rps <= 10.0

    def test_parallelisable(self):
        w = TPCHWorkload()
        assert all(
            f.footprint.parallel_fraction >= 0.5 for f in w.families.values()
        )


class TestAdulterated:
    def test_zero_probability_is_plain_tpcc(self):
        w = AdulteratedTPCCWorkload(0.0, seed=0)
        assert not any("adult" in name for name in w.families)

    def test_full_probability_only_adulteration(self):
        w = AdulteratedTPCCWorkload(1.0, seed=0)
        assert all(name.startswith("adult_") for name in w.families)

    def test_adulteration_share_matches_p(self):
        w = AdulteratedTPCCWorkload(0.8, seed=1)
        batch = w.batch(30.0)
        adult = sum(c for n, c in batch.counts.items() if n.startswith("adult_"))
        share = adult / batch.total_queries
        assert 0.75 < share < 0.85

    def test_covers_all_memory_categories(self):
        """§3.1: adulteration triggers work_mem, maintenance, temp knobs."""
        w = AdulteratedTPCCWorkload(0.5, seed=0)
        fams = [f.footprint for f in w.families.values()]
        assert any(f.sort_mb > 100 for f in fams)
        assert any(f.maintenance_mb > 100 for f in fams)
        assert any(f.temp_mb > 100 for f in fams)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            AdulteratedTPCCWorkload(1.2)

    def test_fig2_aggregate_needs_350mb(self):
        w = AdulteratedTPCCWorkload(0.8, seed=0)
        agg = w.families["adult_complex_aggregate"].footprint
        assert agg.sort_mb == pytest.approx(350.0)


class TestProduction:
    def test_mix_matches_published_counts(self):
        w = ProductionWorkload(seed=0)
        batch = w.batch(60.0, start_time_s=12 * 3600)
        # INSERT dominates ~1000:1 over everything else combined.
        inserts = batch.counts["telemetry_insert"]
        others = batch.total_queries - inserts
        assert inserts > 200 * max(others, 1)

    def test_diurnal_profile_shape(self):
        assert diurnal_profile(3.0) < diurnal_profile(9.0) < diurnal_profile(12.0)
        assert diurnal_profile(12.0) > diurnal_profile(20.0)

    def test_surge_in_morning_window(self):
        """Fig. 8 / §5: usage surges 8–11 AM."""
        assert diurnal_profile(11.0) / diurnal_profile(7.0) > 2.0

    def test_profile_wraps_at_24h(self):
        assert diurnal_profile(25.0) == diurnal_profile(1.0)

    def test_rate_at_daily_noise_is_stable_within_day(self):
        w = ProductionWorkload(seed=1)
        r1 = w.rate_at(12 * 3600.0)
        r2 = w.rate_at(12 * 3600.0 + 30.0)
        assert r1 == pytest.approx(r2)

    def test_mean_rps_default_matches_42M_per_day(self):
        w = ProductionWorkload()
        assert w.rps == pytest.approx(42_130_000 / 86_400, rel=1e-6)
