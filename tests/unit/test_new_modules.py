"""Unit tests for CH-bench, workload-change detection and metrics export."""

import pytest

from repro.cloud import MonitoringAgent, render_agent_metrics, render_counters
from repro.core.tde import WorkloadChangeDetector, hellinger_distance
from repro.workloads import CHBenchWorkload, TPCCWorkload, YCSBWorkload


class TestCHBench:
    def test_mixes_both_sides(self):
        workload = CHBenchWorkload(seed=1)
        names = set(workload.families)
        assert "new_order" in names
        assert "ch_pricing_summary" in names

    def test_analytic_fraction_respected(self):
        workload = CHBenchWorkload(rps=10_000.0, analytic_fraction=0.01, seed=1)
        batch = workload.batch(60.0)
        analytic = sum(
            count for name, count in batch.counts.items() if name.startswith("ch_")
        )
        share = analytic / batch.total_queries
        assert 0.005 < share < 0.02

    def test_needs_working_memory(self):
        """Fig. 2: CH-bench is the heavy working-memory workload."""
        workload = CHBenchWorkload(seed=1)
        assert max(f.footprint.sort_mb for f in workload.families.values()) >= 300.0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            CHBenchWorkload(analytic_fraction=0.0)


class TestHellinger:
    def test_identical_distributions(self):
        p = {"a": 0.5, "b": 0.5}
        assert hellinger_distance(p, dict(p)) == pytest.approx(0.0)

    def test_disjoint_supports(self):
        assert hellinger_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)

    def test_symmetry(self):
        p = {"a": 0.7, "b": 0.3}
        q = {"a": 0.2, "b": 0.5, "c": 0.3}
        assert hellinger_distance(p, q) == pytest.approx(hellinger_distance(q, p))

    def test_empty_distributions(self):
        assert hellinger_distance({}, {}) == 0.0


class TestWorkloadChangeDetector:
    def test_same_workload_no_change(self):
        detector = WorkloadChangeDetector(threshold=0.5)
        workload = TPCCWorkload(seed=1)
        for _ in range(4):
            batch = workload.batch(30.0)
            change = detector.observe_window(batch.sampled_queries)
        assert change is None
        assert detector.changes == []

    def test_workload_switch_detected(self):
        detector = WorkloadChangeDetector(threshold=0.5)
        tpcc = TPCCWorkload(seed=1)
        ycsb = YCSBWorkload(seed=2)
        detector.observe_window(tpcc.batch(30.0).sampled_queries)
        detector.observe_window(tpcc.batch(30.0).sampled_queries)
        change = detector.observe_window(ycsb.batch(30.0).sampled_queries)
        assert change is not None
        assert change.distance > 0.9
        assert change.appeared  # ycsb templates arrived
        assert change.disappeared  # tpcc templates vanished

    def test_first_window_never_a_change(self):
        detector = WorkloadChangeDetector()
        assert detector.observe_window(
            TPCCWorkload(seed=1).batch(10.0).sampled_queries
        ) is None

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            WorkloadChangeDetector(threshold=0.0)


class TestMetricsExport:
    def _agent_with_data(self, pg_db, tpcc):
        agent = MonitoringAgent("svc-01")
        agent.ingest(pg_db.run(tpcc.batch(10.0)))
        return agent

    def test_agent_metrics_rendered(self, pg_db, tpcc):
        text = render_agent_metrics(self._agent_with_data(pg_db, tpcc))
        assert 'repro_throughput_tps{instance="svc-01"}' in text
        assert "# TYPE repro_disk_iops gauge" in text

    def test_empty_agent_renders_headers_only(self):
        text = render_agent_metrics(MonitoringAgent("empty"))
        assert "repro_throughput_tps{" not in text
        assert "# HELP" in text

    def test_counters_rendered(self):
        text = render_counters(
            {"svc-01": {"memory": 3, "background_writer": 1}}, 12
        )
        assert (
            'repro_throttles_total{instance="svc-01",knob_class="memory"} 3'
            in text
        )
        assert "repro_tuning_requests_total 12" in text

    def test_label_escaping(self):
        text = render_counters({'svc"x': {"memory": 1}}, 0)
        assert 'instance="svc\\"x"' in text


class TestIdleWindowBaseline:
    def test_idle_window_does_not_reset_baseline(self):
        """An empty window must neither hide nor fake a pattern change."""
        detector = WorkloadChangeDetector(threshold=0.5)
        tpcc = TPCCWorkload(seed=1)
        detector.observe_window(tpcc.batch(30.0).sampled_queries)
        assert detector.observe_window([]) is None
        # The baseline is still TPCC: a same-workload window is quiet...
        assert detector.observe_window(tpcc.batch(30.0).sampled_queries) is None
        # ...and a genuine switch is still caught.
        change = detector.observe_window(
            YCSBWorkload(seed=2).batch(30.0).sampled_queries
        )
        assert change is not None
