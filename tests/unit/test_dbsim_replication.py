"""Unit tests for master/slave replicated services."""

import pytest

from repro.dbsim import DatabaseCrashed, ReplicatedService


@pytest.fixture
def service():
    return ReplicatedService("postgres", "m4.large", 20.0, replicas=2, seed=5)


class TestTopology:
    def test_nodes_order_slaves_first(self, service):
        nodes = service.nodes
        assert nodes[-1] is service.master
        assert len(nodes) == 3

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            ReplicatedService(replicas=-1)

    def test_nodes_have_independent_seeds(self, service, tpcc):
        r1 = service.slaves[0].run(tpcc.batch(10.0))
        r2 = service.slaves[1].run(tpcc.batch(10.0))
        # same model, different noise
        assert r1.data_disk.write_latency.values.tolist() != (
            r2.data_disk.write_latency.values.tolist()
        )


class TestConsistency:
    def test_initially_consistent(self, service):
        assert service.configs_consistent()

    def test_drift_detected(self, service):
        service.master.config = service.master.config.with_values({"work_mem": 99})
        assert not service.configs_consistent()

    def test_any_crashed(self, service):
        assert not service.any_crashed()
        bad = service.slaves[0].config.with_values(
            {"shared_buffers": 60_000, "work_mem": 4000}
        )
        with pytest.raises(DatabaseCrashed):
            service.slaves[0].apply_config(bad, mode="restart")
        assert service.any_crashed()

    def test_run_executes_on_master(self, service, tpcc):
        result = service.run(tpcc.batch(10.0))
        assert service.master.clock_s == 10.0
        assert service.slaves[0].clock_s == 0.0
        assert result.throughput > 0
