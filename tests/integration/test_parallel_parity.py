"""Serial/parallel parity: experiment outputs must be byte-identical.

The differential harness behind the parallel engine: every experiment
that grew a ``workers`` knob is run once on the in-process sequential
backend and once per process-backend worker count, and the *rendered
artifacts* — result dataclasses, report text, trace JSONL/Chrome
exports, Prometheus metrics text — are compared for equality, for more
than one seed. The golden-trace digests pin the same bytes across
commits; this suite pins them across backends within one commit.
"""

from pathlib import Path

import pytest

from repro.experiments import chaos_recovery, trace_run
from repro.experiments import fig09_requests_per_minute as fig09

GOLDEN_DIR = Path(__file__).parent.parent / "golden"

SEEDS = (0, 7)


def _fig09_bytes(seed: int, workers: int) -> bytes:
    run = fig09.run(
        fleet_size=4, hours=1.0, warmup_hours=0.25, seed=seed, workers=workers
    )
    return repr(run).encode()


class TestFig09Parity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_match_serial(self, seed, workers):
        assert _fig09_bytes(seed, workers) == _fig09_bytes(seed, 1)


class TestChaosParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_report_bytes_match_serial(self, seed):
        serial = chaos_recovery.run(seed=seed, quick=True, workers=1).render()
        twin = chaos_recovery.run(seed=seed, quick=True, workers=2).render()
        assert twin == serial


class TestTraceParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fleet_trace_artifacts_match_serial(self, workers):
        serial = trace_run.run(
            "fleet", seed=7, fleet_size=3, hours=1.0, warmup_hours=0.25
        )
        parallel = trace_run.run(
            "fleet",
            seed=7,
            fleet_size=3,
            hours=1.0,
            warmup_hours=0.25,
            workers=workers,
        )
        assert parallel.jsonl == serial.jsonl
        assert parallel.chrome_json == serial.chrome_json
        assert parallel.metrics_text == serial.metrics_text
        assert parallel.summary() == serial.summary()

    def test_chaos_trace_digest_matches_pinned_golden(self):
        # The golden digest was pinned by a serial run; the parallel
        # backend must land on the identical bytes.
        artifacts = trace_run.run("chaos", seed=0, workers=2)
        pinned = (GOLDEN_DIR / "trace_chaos.sha256").read_text().strip()
        assert artifacts.digest == pinned

    def test_fleet_trace_digest_matches_pinned_golden(self):
        artifacts = trace_run.run(
            "fleet", seed=0, fleet_size=3, hours=1.0, warmup_hours=0.5,
            workers=4,
        )
        pinned = (GOLDEN_DIR / "trace_fleet.sha256").read_text().strip()
        assert artifacts.digest == pinned
