"""Integration tests: tuners driving real simulated databases."""

import numpy as np

from repro.dbsim import SimulatedDatabase, postgres_catalog
from repro.tuners import (
    CDBTuneTuner,
    OtterTuneTuner,
    TrainingSample,
    TuningRequest,
    WorkloadRepository,
)
from repro.workloads import TPCCWorkload
from tests.conftest import make_samples


class TestOtterTuneLoop:
    def test_iterative_tuning_converges_upward(self, pg_catalog):
        """Closed loop: recommend → apply (restart) → observe → repeat."""
        repo = WorkloadRepository()
        repo.add_many(make_samples(pg_catalog, "tpcc", n=10, seed=1))
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=2)
        tuner = OtterTuneTuner(
            pg_catalog, repo, memory_limit_mb=db.vm.db_memory_limit_mb, seed=3
        )
        workload = TPCCWorkload(seed=4)
        first = db.run(workload.batch(20.0)).throughput
        last = first
        for _ in range(4):
            result = db.run(workload.batch(20.0))
            request = TuningRequest("svc", "tpcc", db.config, result.metrics)
            tuner.observe(
                TrainingSample("tpcc", db.config, result.metrics, db.clock_s)
            )
            rec = tuner.recommend(request)
            db.apply_config(rec.config, mode="restart")
            # Absorb the restart downtime and the cold-cache warm-up.
            db.run(workload.batch(20.0))
            db.run(workload.batch(20.0))
            last = db.run(workload.batch(20.0)).throughput
        assert last > first * 3

    def test_low_quality_samples_corrupt_workload_mapping(self, pg_catalog):
        """§2.1 / Fig. 12's causal chain: a live DB whose samples are
        flat idle-window junk maps onto *other production systems'* junk
        instead of the clean offline workloads, so the surrogate trains on
        noise and its objective view goes flat. The TDE-gated variant
        (throttle-time samples only) maps to the offline benchmark."""
        from repro.dbsim.config import KnobConfiguration
        from repro.dbsim.metrics import MetricsDelta
        from repro.tuners import vector_to_config

        rng = np.random.default_rng(5)

        def junk_sample(wid: str) -> TrainingSample:
            config = vector_to_config(
                rng.uniform(0, 1, len(pg_catalog)), pg_catalog
            ).fitted_to_budget(6553.6, 20)
            return TrainingSample(
                wid,
                config,
                MetricsDelta(
                    {
                        "throughput_tps": float(rng.uniform(1, 3)),
                        "xact_commit": float(rng.uniform(20, 60)),
                        "avg_latency_ms": float(rng.uniform(0.5, 1.5)),
                    }
                ),
            )

        def build_repo(target_junk: bool) -> WorkloadRepository:
            repo = WorkloadRepository()
            repo.add_many(make_samples(pg_catalog, "tpcc", n=12, seed=1))
            for wid in ("live1", "live2"):
                for _ in range(20):
                    repo.add(junk_sample(wid))
            if target_junk:
                for _ in range(10):
                    repo.add(junk_sample("live40"))
            else:
                repo.add_many(
                    [
                        TrainingSample("live40", s.config, s.metrics)
                        for s in make_samples(pg_catalog, "tpcc", n=6, seed=2)
                    ]
                )
            return repo

        request = TuningRequest(
            "svc", "live40", KnobConfiguration(pg_catalog), MetricsDelta({})
        )

        clean_tuner = OtterTuneTuner(
            pg_catalog, build_repo(target_junk=False),
            memory_limit_mb=6553.6, seed=3,
        )
        clean_tuner.recommend(request)
        assert clean_tuner.last_mapping_id == "tpcc"

        corrupt_tuner = OtterTuneTuner(
            pg_catalog, build_repo(target_junk=True),
            memory_limit_mb=6553.6, seed=3,
        )
        corrupt_tuner.recommend(request)
        assert corrupt_tuner.last_mapping_id in ("live1", "live2")

        # The corrupted pipeline trains on raw objectives with (almost) no
        # signal, while the gated one trains on genuinely varied ones.
        corrupt_sources = [
            corrupt_tuner.last_mapping_id, "live40"
        ]
        corrupt_raw = np.concatenate(
            [
                corrupt_tuner.repository.dataset(wid).objective
                for wid in corrupt_sources
            ]
        )
        clean_raw = np.concatenate(
            [
                clean_tuner.repository.dataset(wid).objective
                for wid in (clean_tuner.last_mapping_id, "live40")
            ]
        )
        assert corrupt_raw.max() - corrupt_raw.min() < 10.0
        assert clean_raw.max() - clean_raw.min() > 50.0


class TestCDBTuneLoop:
    def test_try_and_error_keeps_exploring(self, pg_catalog):
        """RL tuner explores many distinct configurations (§2.1)."""
        tuner = CDBTuneTuner(pg_catalog, memory_limit_mb=6553.6, seed=1)
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=2)
        workload = TPCCWorkload(seed=3)
        seen = set()
        for _ in range(15):
            result = db.run(workload.batch(15.0))
            tuner.observe(TrainingSample("tpcc", db.config, result.metrics))
            rec = tuner.recommend(
                TuningRequest("svc", "tpcc", db.config, result.metrics)
            )
            seen.add(round(rec.config["work_mem"], 2))
            db.apply_config(rec.config, mode="restart")
        assert len(seen) >= 10

    def test_rewards_reflect_environment(self, pg_catalog):
        tuner = CDBTuneTuner(pg_catalog, memory_limit_mb=6553.6, seed=1)
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=2)
        workload = TPCCWorkload(seed=3)
        for _ in range(10):
            result = db.run(workload.batch(15.0))
            tuner.observe(TrainingSample("tpcc", db.config, result.metrics))
            rec = tuner.recommend(
                TuningRequest("svc", "tpcc", db.config, result.metrics)
            )
            db.apply_config(rec.config, mode="restart")
        assert len(tuner.episode_rewards) == 9
        assert any(r != 0 for r in tuner.episode_rewards)
