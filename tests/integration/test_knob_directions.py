"""Substrate validation: each knob moves the engine the right way.

These tests pin the *directionality* of every knob family the paper's
detectors reason about — if a knob stops having its physical effect, the
throttle detectors and tuners above it are silently meaningless.
"""

import pytest

from repro.dbsim import SimulatedDatabase
from repro.workloads import (
    AdulteratedTPCCWorkload,
    TPCCWorkload,
    TPCHWorkload,
    YCSBWorkload,
)


def _run(flavor, overrides, workload_factory, vm="m4.large", data_gb=26.0,
         windows=2, window_s=60.0, seed=7):
    db = SimulatedDatabase(flavor, vm, data_gb, seed=seed)
    if overrides:
        db.apply_config(db.config.with_values(overrides), mode="restart")
        db._pending_stall_s = 0.0
        db._cold_windows = 0
    workload = workload_factory(seed + 1)
    results = [
        db.run(workload.batch(window_s, start_time_s=db.clock_s))
        for _ in range(windows)
    ]
    return results[-1]


def _checkpoint_sums(flavor, overrides, workload_factory, windows=4, seed=7,
                     vm="m4.large", data_gb=26.0, window_s=60.0):
    """(timed, requested) checkpoint totals across all windows."""
    db = SimulatedDatabase(flavor, vm, data_gb, seed=seed)
    if overrides:
        db.apply_config(db.config.with_values(overrides), mode="restart")
        db._pending_stall_s = 0.0
        db._cold_windows = 0
    workload = workload_factory(seed + 1)
    timed = requested = 0
    for _ in range(windows):
        result = db.run(workload.batch(window_s, start_time_s=db.clock_s))
        timed += result.writeback.checkpoints_timed
        requested += result.writeback.checkpoints_requested
    return timed, requested


class TestPostgresMemoryKnobs:
    def test_shared_buffers_raises_hit_ratio(self):
        factory = lambda s: YCSBWorkload(rps=2000.0, data_size_gb=26.0, seed=s)
        small = _run("postgres", {}, factory)
        big = _run("postgres", {"shared_buffers": 4096}, factory)
        assert big.hit_ratio > small.hit_ratio * 3

    def test_work_mem_stops_sort_spills(self):
        factory = lambda s: TPCHWorkload(rps=2.0, data_size_gb=24.0, seed=s)
        small = _run("postgres", {}, factory, data_gb=24.0)
        big = _run("postgres", {"work_mem": 512}, factory, data_gb=24.0)
        assert "sort" in small.spill.spilled_categories
        assert "sort" not in big.spill.spilled_categories

    def test_maintenance_work_mem_stops_maintenance_spills(self):
        factory = lambda s: AdulteratedTPCCWorkload(0.5, data_size_gb=21.0, seed=s)
        small = _run("postgres", {}, factory, data_gb=21.0)
        big = _run("postgres", {"maintenance_work_mem": 512}, factory, data_gb=21.0)
        assert "maintenance" in small.spill.spilled_categories
        assert "maintenance" not in big.spill.spilled_categories

    def test_temp_buffers_stop_temp_spills(self):
        factory = lambda s: AdulteratedTPCCWorkload(0.5, data_size_gb=21.0, seed=s)
        small = _run("postgres", {}, factory, data_gb=21.0)
        big = _run("postgres", {"temp_buffers": 1024}, factory, data_gb=21.0)
        assert "temp" in small.spill.spilled_categories
        assert "temp" not in big.spill.spilled_categories


class TestPostgresBgwriterKnobs:
    def test_longer_checkpoint_timeout_fewer_timed_checkpoints(self):
        factory = lambda s: TPCCWorkload(rps=800.0, seed=s)
        frequent = _run(
            "postgres",
            {"checkpoint_timeout": 60, "max_wal_size": 16_384},
            factory, windows=5,
        )
        rare = _run(
            "postgres",
            {"checkpoint_timeout": 3600, "max_wal_size": 16_384},
            factory, windows=5,
        )
        assert frequent.writeback.checkpoints_timed > 0
        assert rare.writeback.checkpoints_timed == 0

    def test_bigger_max_wal_size_fewer_requested_checkpoints(self):
        factory = lambda s: TPCCWorkload(rps=3300.0, seed=s)
        _, small_requested = _checkpoint_sums(
            "postgres",
            {"max_wal_size": 64, "checkpoint_timeout": 300},
            factory,
        )
        _, big_requested = _checkpoint_sums(
            "postgres",
            {"max_wal_size": 16_384, "checkpoint_timeout": 300},
            factory,
        )
        assert small_requested > big_requested

    def test_aggressive_bgwriter_shrinks_checkpoint_bursts(self):
        factory = lambda s: TPCCWorkload(rps=1500.0, seed=s)
        lazy = _run(
            "postgres",
            {"bgwriter_lru_maxpages": 10, "bgwriter_delay": 5000,
             "shared_buffers": 4096, "checkpoint_timeout": 120},
            factory, windows=4,
        )
        eager = _run(
            "postgres",
            {"bgwriter_lru_maxpages": 1000, "bgwriter_delay": 20,
             "shared_buffers": 4096, "checkpoint_timeout": 120},
            factory, windows=4,
        )
        assert eager.writeback.bgwriter_write_mb > lazy.writeback.bgwriter_write_mb
        assert eager.writeback.checkpoint_write_mb < lazy.writeback.checkpoint_write_mb


class TestPostgresPlannerKnobs:
    def test_planner_knobs_move_throughput(self):
        """Moving the planner knobs toward the latent optimum speeds up."""
        from repro.dbsim.knobs import KnobClass, postgres_catalog
        from repro.dbsim.planner import latent_optimum

        catalog = postgres_catalog()
        optimum = {
            k.name: latent_optimum("postgres", "tpch", k)
            for k in catalog.by_class(KnobClass.ASYNC_PLANNER)
        }
        factory = lambda s: TPCHWorkload(rps=4.0, data_size_gb=24.0, seed=s)
        default = _run("postgres", {"work_mem": 1024}, factory, data_gb=24.0,
                       vm="m4.xlarge")
        tuned = _run("postgres", {"work_mem": 1024, **optimum}, factory,
                     data_gb=24.0, vm="m4.xlarge")
        assert tuned.latency_ms < default.latency_ms

    def test_parallel_workers_help_analytics(self):
        factory = lambda s: TPCHWorkload(rps=4.0, data_size_gb=24.0, seed=s)
        serial = _run(
            "postgres",
            {"work_mem": 1024, "max_parallel_workers_per_gather": 0},
            factory, data_gb=24.0, vm="m4.xlarge",
        )
        parallel = _run(
            "postgres",
            {"work_mem": 1024, "max_parallel_workers_per_gather": 3},
            factory, data_gb=24.0, vm="m4.xlarge",
        )
        assert parallel.latency_ms < serial.latency_ms


class TestMySQLKnobs:
    def test_buffer_pool_raises_hit_ratio(self):
        factory = lambda s: YCSBWorkload(rps=2000.0, data_size_gb=26.0, seed=s)
        small = _run("mysql", {}, factory)
        big = _run("mysql", {"innodb_buffer_pool_size": 4096}, factory)
        assert big.hit_ratio > small.hit_ratio * 3

    def test_sort_and_join_buffers_stop_spills(self):
        factory = lambda s: AdulteratedTPCCWorkload(0.5, data_size_gb=21.0, seed=s)
        small = _run("mysql", {}, factory, data_gb=21.0)
        big = _run(
            "mysql", {"sort_buffer_size": 400, "join_buffer_size": 64},
            factory, data_gb=21.0,
        )
        assert "sort" in small.spill.spilled_categories
        assert "sort" not in big.spill.spilled_categories

    def test_log_file_size_bounds_requested_checkpoints(self):
        factory = lambda s: TPCCWorkload(rps=3300.0, seed=s)
        # Big buffer pool keeps the dirty-fraction trigger out of the way
        # so only the redo-log-size trigger differs.
        _, small_requested = _checkpoint_sums(
            "mysql",
            {"innodb_log_file_size": 16, "innodb_buffer_pool_size": 4096},
            factory,
        )
        _, big_requested = _checkpoint_sums(
            "mysql",
            {"innodb_log_file_size": 4096, "innodb_buffer_pool_size": 4096},
            factory,
        )
        assert small_requested > big_requested


class TestBudgetInteractions:
    def test_overallocated_memory_swaps(self):
        factory = lambda s: TPCCWorkload(rps=800.0, seed=s)
        sane = _run("postgres", {}, factory, vm="t2.small", data_gb=8.0)
        # Over-budget via reload (reload does not validate, like real PG).
        db = SimulatedDatabase("postgres", "t2.small", 8.0, seed=7)
        db.apply_config(
            db.config.with_values({"work_mem": 2048, "temp_buffers": 1024}),
            mode="reload",
        )
        result = db.run(TPCCWorkload(rps=800.0, seed=8).batch(60.0))
        assert result.swap > 1.0
        assert sane.swap == 1.0
        assert result.throughput < sane.throughput