"""Integration tests: the full AutoDBaaS loop end to end."""

import pytest

from repro import AutoDBaaS
from repro.cloud import Provisioner
from repro.dbsim import postgres_catalog
from repro.tuners import OtterTuneTuner, WorkloadRepository
from repro.workloads import AdulteratedTPCCWorkload, TPCCWorkload


def _service(repo=None, window_s=60.0, downtime_period_s=86_400.0, seed=1):
    repo = repo if repo is not None else WorkloadRepository()
    tuner = OtterTuneTuner(
        postgres_catalog(), repo, memory_limit_mb=6553.6, seed=seed
    )
    return AutoDBaaS(
        [tuner], repo, window_s=window_s, downtime_period_s=downtime_period_s
    )


class TestEndToEnd:
    def test_tde_policy_requests_only_on_throttles(self):
        svc = _service()
        prov = Provisioner(seed=2)
        d = prov.provision(plan="m4.xlarge", flavor="postgres", data_size_gb=2.0)
        # Small DB on a big VM, comfortable buffer, planner knobs at their
        # latent optimum for this workload: a genuinely well-tuned system.
        from repro.dbsim.knobs import KnobClass
        from repro.dbsim.planner import latent_optimum

        planner_values = {
            k.name: latent_optimum("postgres", "tpcc", k)
            for k in d.service.master.catalog.by_class(KnobClass.ASYNC_PLANNER)
        }
        d.service.master.config = d.service.master.config.with_values(
            {"shared_buffers": 2048, **planner_values}
        )
        for node in d.service.slaves:
            node.config = d.service.master.config
        svc.attach(d, TPCCWorkload(rps=100.0, data_size_gb=2.0, seed=3), policy="tde")
        svc.orchestrator.persist_config(d.instance_id, d.service.master.config)
        requested = sum(svc.step()[0].tuning_requested for _ in range(5))
        assert requested == 0
        assert svc.director.total_requests == 0

    def test_periodic_policy_requests_on_interval(self):
        svc = _service()
        d = Provisioner(seed=2).provision(plan="m4.large", data_size_gb=20.0)
        svc.attach(
            d,
            TPCCWorkload(rps=100.0, seed=3),
            policy="periodic",
            periodic_interval_s=120.0,
        )
        requests = [svc.step()[0].tuning_requested for _ in range(6)]
        # 60 s windows, 120 s interval: every second window requests.
        assert sum(requests) == 3

    def test_monitor_policy_never_requests(self):
        svc = _service()
        d = Provisioner(seed=2).provision(plan="m4.large", data_size_gb=26.0)
        svc.attach(d, AdulteratedTPCCWorkload(0.8, seed=3), policy="monitor")
        for _ in range(3):
            outcome = svc.step()[0]
            assert not outcome.tuning_requested
            assert outcome.tde_report is None

    def test_unknown_policy_rejected(self):
        svc = _service()
        d = Provisioner(seed=2).provision()
        with pytest.raises(ValueError):
            svc.attach(d, TPCCWorkload(seed=3), policy="chaotic")

    def test_throttling_workload_triggers_apply(self):
        svc = _service()
        d = Provisioner(seed=2).provision(plan="m4.large", data_size_gb=21.0)
        svc.attach(d, AdulteratedTPCCWorkload(0.8, seed=3), policy="tde")
        outcome = svc.step()[0]
        assert outcome.tuning_requested
        assert outcome.apply_report is not None and outcome.apply_report.applied
        assert svc.repository.total_samples() == 1  # high-quality upload

    def test_downtime_resizes_buffer_and_improves_throughput(self):
        # monitor policy: no reload tuning, so the measured improvement is
        # attributable to the downtime buffer resize alone. The working
        # set fits under the buffer cap, so §4's working-set rule applies
        # without needing recommendation history.
        svc = _service(window_s=300.0, downtime_period_s=1800.0)
        d = Provisioner(seed=2).provision(plan="m4.large", data_size_gb=8.0)
        managed = svc.attach(
            d, TPCCWorkload(data_size_gb=8.0, seed=3), policy="monitor"
        )
        before = None
        for _ in range(8):
            outcome = svc.step()[0]
            if outcome.downtime_taken:
                before = managed.throughput_history[-1]
                break
        assert before is not None
        svc.step()  # post-restart window: downtime + cold cache
        svc.step()  # warm-up window
        after = svc.step()[0].result.throughput
        assert d.service.master.config["shared_buffers"] > 128
        assert after > before * 1.5

    def test_throttle_counts_reported(self):
        svc = _service()
        d = Provisioner(seed=2).provision(plan="m4.large", data_size_gb=21.0)
        svc.attach(d, AdulteratedTPCCWorkload(0.8, seed=3), policy="tde")
        for _ in range(3):
            svc.step()
        counts = svc.throttle_counts()[d.instance_id]
        assert counts["memory"] >= 3


class TestSampleQuality:
    def test_tde_uploads_fewer_samples_than_periodic(self):
        """§1: TDE gating keeps low-quality idle samples out."""
        repo_tde = WorkloadRepository()
        repo_periodic = WorkloadRepository()
        for repo, policy in ((repo_tde, "tde"), (repo_periodic, "periodic")):
            svc = _service(repo=repo)
            d = Provisioner(seed=4).provision(plan="m4.xlarge", data_size_gb=2.0)
            d.service.master.config = d.service.master.config.with_values(
                {"shared_buffers": 2048}
            )
            svc.attach(
                d,
                TPCCWorkload(rps=50.0, data_size_gb=2.0, seed=5),
                policy=policy,
                periodic_interval_s=60.0,
            )
            svc.orchestrator.persist_config(d.instance_id, d.service.master.config)
            for _ in range(5):
                svc.step()
        assert repo_tde.total_samples() < repo_periodic.total_samples()
        assert repo_periodic.total_samples() == 5
