"""`repro lint` over the shipped tree: the invariants actually hold.

The acceptance bar for the static-analysis gate: linting ``src/`` (and
``tests/``) on the committed tree exits 0, and introducing any
rule-violating file flips the exit code with a precise ``file:line``
finding.
"""

import textwrap
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestShippedTreeIsClean:
    def test_lint_src_exits_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_tests_exits_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "tests"]) == 0

    def test_deep_lint_src_exits_zero(self, capsys, monkeypatch):
        """The CI gate: zero unsuppressed interprocedural findings."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--deep", "src"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_deep_lint_flags_the_mutant_corpus(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--deep", "tests/fixtures/mutants"]) == 1
        out = capsys.readouterr().out
        for rule_id in ("R009", "R010", "R011", "R012"):
            assert rule_id in out


class TestChangedOnly:
    def test_changed_only_lints_new_violating_file(
        self, capsys, monkeypatch, tmp_path
    ):
        # An untracked rule-violating file inside src/ must be caught by
        # the fast path; it is deleted again before the test returns.
        bad = REPO_ROOT / "src" / "repro" / "dbsim" / "_lintprobe_tmp.py"
        monkeypatch.chdir(REPO_ROOT)
        try:
            bad.write_text("import time\n\n\ndef leak():\n    return time.time()\n")
            assert main(["lint", "--changed-only", "src"]) == 1
            out = capsys.readouterr().out
            assert "_lintprobe_tmp.py" in out and "R002" in out
        finally:
            bad.unlink(missing_ok=True)

    def test_changed_only_ignores_changes_outside_paths(
        self, capsys, monkeypatch
    ):
        probe = REPO_ROOT / "_lintprobe_outside_tmp.py"
        monkeypatch.chdir(REPO_ROOT)
        try:
            probe.write_text("import time\nt = time.time()\n")
            # Restricted to src/: the repo-root probe is out of scope.
            assert main(["lint", "--changed-only", "src"]) == 0
        finally:
            probe.unlink(missing_ok=True)


class TestViolationsFlipTheExitCode:
    def test_bad_fixture_fails_with_file_and_line(
        self, tmp_path, capsys, monkeypatch
    ):
        bad = tmp_path / "repro" / "dbsim" / "clockleak.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            textwrap.dedent(
                """
                import time
                import random

                def leak():
                    return time.time() + random.random()
                """
            )
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "repro/dbsim/clockleak.py:6:" in out
        assert "R001" in out and "R002" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "definitely/not/a/path"]) == 2

    def test_unknown_rule_is_usage_error(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--select", "R999", "src"]) == 2
