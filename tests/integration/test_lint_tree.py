"""`repro lint` over the shipped tree: the invariants actually hold.

The acceptance bar for the static-analysis gate: linting ``src/`` (and
``tests/``) on the committed tree exits 0, and introducing any
rule-violating file flips the exit code with a precise ``file:line``
finding.
"""

import textwrap
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestShippedTreeIsClean:
    def test_lint_src_exits_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_tests_exits_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "tests"]) == 0


class TestViolationsFlipTheExitCode:
    def test_bad_fixture_fails_with_file_and_line(
        self, tmp_path, capsys, monkeypatch
    ):
        bad = tmp_path / "repro" / "dbsim" / "clockleak.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            textwrap.dedent(
                """
                import time
                import random

                def leak():
                    return time.time() + random.random()
                """
            )
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "repro/dbsim/clockleak.py:6:" in out
        assert "R001" in out and "R002" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "definitely/not/a/path"]) == 2

    def test_unknown_rule_is_usage_error(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--select", "R999", "src"]) == 2
