"""Smoke tests for the experiment harnesses (reduced scale, fast)."""

from repro.experiments import (
    ablations,
    fig02_memory_table,
    fig03_04_entropy,
    fig06_mdp_learning,
    fig07_reload_iops,
    fig08_arrival_rate,
    fig10_11_throttles,
    fig14_workload_shift,
    format_table,
    offline_train,
)
from repro.dbsim import postgres_catalog
from repro.workloads import TPCCWorkload


class TestExperimentHarnesses:
    def test_fig02_rows_complete(self):
        rows = fig02_memory_table.run()
        assert [r.workload for r in rows] == ["tpcc", "tpch", "ycsb", "wikipedia"]

    def test_fig03_04_separation_ordering(self):
        strong = fig03_04_entropy.run(0.8, windows=5)
        weak = fig03_04_entropy.run(0.5, windows=5)
        assert fig03_04_entropy.mean_separation(strong) > 0
        assert fig03_04_entropy.mean_separation(weak) > 0

    def test_fig06_curves_well_formed(self):
        run = fig06_mdp_learning.run(n_episodes=3, steps_per_episode=80)
        assert len(run.episodic_rewards) == 3
        assert len(run.cumulative_mean_accuracy()) == 3
        assert all(0 <= a <= 1 for a in run.accuracies)

    def test_fig07_relative_ordering(self):
        comparison = fig07_reload_iops.run(duration_s=200.0)
        assert (
            comparison.relative_tps(comparison.reload_signal)
            > comparison.relative_tps(comparison.socket_activation)
        )

    def test_fig08_hourly_points(self):
        points = fig08_arrival_rate.run()
        assert len(points) == 24
        assert fig08_arrival_rate.daily_total(points) > 10_000_000

    def test_fig10_panels_structure(self):
        panels = fig10_11_throttles.run("postgres", iterations=4)
        assert set(panels) == {"write-heavy", "mix/read-heavy", "production"}
        assert len(panels["mix/read-heavy"]) == 3

    def test_fig14_covers_all_transitions(self):
        results = fig14_workload_shift.run(seed=0, settle_windows=2)
        assert [r.spec.number for r in results] == [1, 2, 3, 4, 5, 6]

    def test_ablation_slave_first(self):
        result = ablations.ablate_slave_first()
        assert result.slave_first_master_up and not result.master_first_master_up


class TestCommonHelpers:
    def test_offline_train_populates_repo(self):
        repo = offline_train(
            postgres_catalog(), [TPCCWorkload(rps=12_000.0, seed=1)], n_configs=4
        )
        assert repo.total_samples() == 4
        assert repo.workload_ids() == ["tpcc"]

    def test_format_table_alignment(self):
        text = format_table(("a", "long_header"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text and "b" in text
