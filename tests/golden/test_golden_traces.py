"""Golden-trace snapshot tests: the observability layer's regression net.

Each case runs a seeded experiment under the trace recorder and pins the
SHA-256 digest of the canonical JSONL export, plus the first lines of
the trace as a committed, reviewable head file (the digest says *that*
the trace changed; the head diff usually says *what* changed).

Update workflow — after an intentional change to instrumentation or the
export schema::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q

then commit the regenerated files under ``tests/golden/`` and call out
the trace change in the PR.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import trace_run

GOLDEN_DIR = Path(__file__).parent

#: Lines of each trace committed verbatim for reviewable diffs.
HEAD_LINES = 30

_UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"


def _check_golden(name: str, **kwargs) -> None:
    artifacts = trace_run.run(**kwargs)
    digest_path = GOLDEN_DIR / f"trace_{name}.sha256"
    head_path = GOLDEN_DIR / f"trace_{name}.head.jsonl"
    head = (
        "\n".join(artifacts.jsonl.splitlines()[:HEAD_LINES]) + "\n"
    )
    if _UPDATE:
        digest_path.write_text(artifacts.digest + "\n")
        head_path.write_text(head)
        pytest.skip(f"REPRO_UPDATE_GOLDEN=1: regenerated golden {name}")
    assert digest_path.exists(), (
        f"missing golden digest {digest_path.name}; run with "
        "REPRO_UPDATE_GOLDEN=1 to create it"
    )
    expected_head = head_path.read_text()
    assert head == expected_head, (
        f"golden trace head for {name!r} changed — inspect the diff above; "
        "if intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    expected = digest_path.read_text().strip()
    assert artifacts.digest == expected, (
        f"golden trace digest for {name!r} changed "
        f"({artifacts.digest} != {expected}) but the committed head "
        "matches — the divergence is past line "
        f"{HEAD_LINES}; regenerate with REPRO_UPDATE_GOLDEN=1 if intentional"
    )


def test_golden_chaos_quick_trace():
    """The quick chaos profile's trace is byte-stable across commits."""
    _check_golden("chaos", experiment="chaos", seed=0)


def test_golden_fleet_trace():
    """A small fig09-style fleet run's trace is byte-stable."""
    _check_golden(
        "fleet",
        experiment="fleet",
        seed=0,
        fleet_size=3,
        hours=1.0,
        warmup_hours=0.5,
    )
