"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dbsim import (
    KnobConfiguration,
    SimulatedDatabase,
    mysql_catalog,
    postgres_catalog,
)
from repro.tuners import TrainingSample, WorkloadRepository, vector_to_config
from repro.workloads import TPCCWorkload, YCSBWorkload


@pytest.fixture
def pg_catalog():
    return postgres_catalog()


@pytest.fixture
def my_catalog():
    return mysql_catalog()


@pytest.fixture
def pg_db():
    """PostgreSQL-flavoured instance on m4.large with 26 GB of data."""
    return SimulatedDatabase("postgres", "m4.large", data_size_gb=26.0, seed=7)


@pytest.fixture
def my_db():
    """MySQL-flavoured instance on m4.large with 26 GB of data."""
    return SimulatedDatabase("mysql", "m4.large", data_size_gb=26.0, seed=7)


@pytest.fixture
def tpcc():
    return TPCCWorkload(seed=11)


@pytest.fixture
def ycsb():
    return YCSBWorkload(seed=11)


def make_samples(
    catalog,
    workload_id: str = "tpcc",
    n: int = 12,
    seed: int = 0,
    vm: str = "m4.large",
    data_size_gb: float = 26.0,
    window_s: float = 20.0,
    rps: float = 12_000.0,
) -> list[TrainingSample]:
    """Run a workload under *n* random budget-fitted configs and collect samples.

    The offered rate is deliberately above the VM's capacity so achieved
    throughput *measures* each configuration instead of saturating at the
    offered load — how a real offline tuning session stresses the DBMS.
    """
    rng = np.random.default_rng(seed)
    db = SimulatedDatabase(catalog.flavor, vm, data_size_gb=data_size_gb, seed=seed)
    workload = (
        TPCCWorkload(rps=rps, seed=seed + 1)
        if workload_id == "tpcc"
        else YCSBWorkload(rps=rps, seed=seed + 1)
    )
    samples = []
    for _ in range(n):
        vec = rng.uniform(0, 1, size=len(catalog))
        config = vector_to_config(vec, catalog).fitted_to_budget(
            db.vm.db_memory_limit_mb, db.active_connections
        )
        # Restart per configuration (clean write-back state), warm up one
        # window, then measure — the protocol of a real tuning session.
        db.apply_config(config, mode="restart")
        db.run(workload.batch(window_s))
        result = db.run(workload.batch(window_s))
        samples.append(
            TrainingSample(workload_id, config, result.metrics, timestamp_s=db.clock_s)
        )
    return samples


@pytest.fixture
def trained_repo(pg_catalog):
    """Repository with a dozen TPCC samples under varied configs."""
    repo = WorkloadRepository()
    repo.add_many(make_samples(pg_catalog, "tpcc", n=12, seed=3))
    return repo
