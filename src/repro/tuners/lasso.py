"""Lasso regression by coordinate descent, and knob ranking.

OtterTune ranks knobs by importance with Lasso: tracing the regularisation
path from strong to weak penalty, the order in which knob coefficients
become non-zero is the importance order. Fig. 15's accuracy experiment
compares the TDE's throttle class against the classes of the tuner's
top-5 ranked knobs, so this ranking is load-bearing for the reproduction.

The solver works on the Gram ("covariance") formulation: with
``G = XᵀX/n`` and ``c = Xᵀy/n`` precomputed, each coordinate update costs
O(d) instead of O(n), and the whole regularisation path reuses one Gram
matrix with warm-started coefficients — the standard glmnet-style
speedups. For the knob catalogs here (d ≈ 14, n up to a few hundred) this
makes a full path ranking ~20× cheaper than naive per-alpha descent.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lasso_coordinate_descent",
    "lasso_gram_ranking",
    "lasso_path_ranking",
]


def _standardise(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std = np.where(std > 1e-12, std, 1.0)
    return (x - mean) / std, mean, std


def _standardised_problem(
    x: np.ndarray, y: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Standardised design matrix and centred/scaled response."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if x.ndim != 2 or len(x) != len(y):
        raise ValueError("x must be (n, d) with matching y")
    if len(x) == 0:
        raise ValueError("empty design matrix")
    xs, _, _ = _standardise(x)
    ys = y - y.mean()
    y_std = ys.std() or 1.0
    return xs, ys / y_std


def _cd_gram(
    gram: np.ndarray,
    corr: np.ndarray,
    alpha: float,
    w: np.ndarray,
    max_iter: int,
    tol: float,
) -> np.ndarray:
    """Cyclic coordinate descent on the Gram formulation (in-place on *w*).

    Minimises ``(1/2n)·||y − Xw||² + alpha·||w||₁`` given ``gram = XᵀX/n``
    and ``corr = Xᵀy/n``. The per-coordinate residual correlation is
    ``corr_j − G_j·w + G_jj·w_j`` — identical to the classic residual
    update, but O(d) per coordinate instead of O(n).
    """
    d = len(corr)
    diag = gram.diagonal()
    active = [j for j in range(d) if diag[j] > 1e-12]
    # ``q`` tracks gram @ w so each coordinate update is one O(d) axpy.
    q = gram @ w
    for _ in range(max_iter):
        max_delta = 0.0
        for j in active:
            dj = diag[j]
            w_old = w[j]
            rho = corr[j] - q[j] + dj * w_old
            w_new = np.sign(rho) * max(abs(rho) - alpha, 0.0) / dj
            if w_new != w_old:
                w[j] = w_new
                q += gram[:, j] * (w_new - w_old)
                max_delta = max(max_delta, abs(w_new - w_old))
        if max_delta < tol:
            break
    return w


def _cd_gram_batch(
    gram: np.ndarray,
    corr: np.ndarray,
    alphas: np.ndarray,
    max_iter: int,
    tol: float,
) -> np.ndarray:
    """Solve one Lasso problem per alpha simultaneously.

    All problems share the Gram matrix; coefficients are an (n_alphas, d)
    matrix updated coordinate-by-coordinate with one vectorised
    soft-threshold across the whole alpha batch. Every problem performs
    exactly the update sequence an independent cold-start descent would
    (a per-problem mask freezes converged problems), so per-alpha results
    match :func:`lasso_coordinate_descent` — but the Python-level loop
    runs once for the whole path instead of once per alpha.
    """
    d = len(corr)
    n_alphas = len(alphas)
    diag = gram.diagonal()
    active_coords = [j for j in range(d) if diag[j] > 1e-12]
    gram_rows = [gram[j][None, :] for j in active_coords]
    w = np.zeros((n_alphas, d))
    q = np.zeros((n_alphas, d))  # tracks w @ gram
    live = np.ones(n_alphas, dtype=bool)
    for _ in range(max_iter):
        max_delta = np.zeros(n_alphas)
        for j, gram_j in zip(active_coords, gram_rows):
            dj = diag[j]
            w_old = w[:, j]
            rho = corr[j] - q[:, j] + dj * w_old
            w_new = np.sign(rho) * np.maximum(np.abs(rho) - alphas, 0.0) / dj
            delta = np.where(live, w_new - w_old, 0.0)
            # Assign w_new directly: ``w_old + delta`` would differ from
            # the scalar descent's coefficient in the last ulp.
            w[:, j] = np.where(live, w_new, w_old)
            q += delta[:, None] * gram_j
            np.maximum(max_delta, np.abs(delta), out=max_delta)
        live &= max_delta >= tol
        if not live.any():
            break
    return w


def lasso_coordinate_descent(
    x: np.ndarray,
    y: np.ndarray,
    alpha: float,
    max_iter: int = 500,
    tol: float = 1e-6,
) -> np.ndarray:
    """Lasso coefficients for standardised inputs.

    Minimises ``(1/2n)·||y − Xw||² + alpha·||w||₁`` by cyclic coordinate
    descent with soft-thresholding. *x* and *y* are standardised
    internally; returned coefficients are in standardised space (their
    magnitudes are comparable across features, which is all the ranking
    needs).
    """
    xs, ys = _standardised_problem(x, y)
    n, d = xs.shape
    gram = (xs.T @ xs) / n
    corr = (xs.T @ ys) / n
    return _cd_gram(gram, corr, float(alpha), np.zeros(d), max_iter, tol)


def lasso_gram_ranking(
    gram: np.ndarray,
    corr: np.ndarray,
    n_alphas: int = 30,
    warm_path: np.ndarray | None = None,
    warm_problem: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[list[int], np.ndarray]:
    """Path ranking over a precomputed standardised Gram problem.

    The dynamic knob selector re-ranks every time the repository grows.
    It maintains the standardised problem incrementally from running
    moments (see :mod:`repro.tuners.knob_selection`), so a re-rank never
    rebuilds the O(n·d²) Gram from raw rows; this function takes that
    problem directly. *warm_path*/*warm_problem* carry the previous
    fit's coefficients and inputs: the batched descent is a pure
    function of ``(gram, corr, n_alphas)``, so when the problem bits
    have not moved — a repository version bump that added no rows for
    this workload — the previous coefficients are returned without
    descending at all. Either way the result is exactly what a
    from-scratch solve of the same problem bits produces.

    Returns ``(order, path)``: *order* ranks features by path entry with
    :func:`lasso_path_ranking`'s sort key, *path* is the ``(n_alphas,
    d)`` coefficient matrix to hand back as the next call's *warm_path*.
    """
    d = len(corr)
    if d == 0 or gram.shape != (d, d):
        raise ValueError("gram must be (d, d) with matching corr")
    alpha_max = float(np.max(np.abs(corr))) or 1.0
    alphas = alpha_max * np.geomspace(1.0, 1e-3, n_alphas)
    if (
        warm_path is not None
        and warm_problem is not None
        and warm_path.shape == (n_alphas, d)
        and np.array_equal(warm_problem[0], gram)
        and np.array_equal(warm_problem[1], corr)
    ):
        path = warm_path
    else:
        path = _cd_gram_batch(gram, corr, alphas, max_iter=500, tol=1e-6)
    entered = np.abs(path) > 1e-9
    entry_step = np.where(
        entered.any(axis=0), entered.argmax(axis=0), n_alphas
    )
    final_w = path[-1]
    # Same tie-breaks as the raw-row ranking: degenerate (zero-variance)
    # columns never entered the descent and rank by a zeroed correlation.
    tie_corr = np.where(gram.diagonal() > 1e-12, np.abs(corr), 0.0)
    order = sorted(
        range(d),
        key=lambda j: (entry_step[j], -abs(final_w[j]), -tie_corr[j]),
    )
    return order, path


def lasso_path_ranking(
    x: np.ndarray,
    y: np.ndarray,
    n_alphas: int = 30,
) -> list[int]:
    """Feature indices ranked by order of entry on the Lasso path.

    Starting from the smallest alpha that zeroes every coefficient,
    alphas decay geometrically; a feature's rank is the first alpha at
    which its coefficient becomes non-zero (ties broken by final
    coefficient magnitude). Features that never enter rank last, ordered
    by their ordinary correlation with *y*.

    The Gram matrix is computed once and all alphas descend together in
    one batched solve (:func:`_cd_gram_batch`), so tracing the whole path
    costs one Python-level sweep loop rather than one per alpha.
    """
    xs, ys = _standardised_problem(x, y)
    n, d = xs.shape
    gram = (xs.T @ xs) / n
    xty = (xs.T @ ys) / n
    alpha_max = float(np.max(np.abs(xs.T @ ys)) / n) or 1.0
    alphas = alpha_max * np.geomspace(1.0, 1e-3, n_alphas)

    path = _cd_gram_batch(gram, xty, alphas, max_iter=500, tol=1e-6)
    entered = np.abs(path) > 1e-9  # (n_alphas, d)
    entry_step = np.where(
        entered.any(axis=0), entered.argmax(axis=0), n_alphas
    )
    final_w = path[-1]

    col_std = xs.std(axis=0)
    y_std = ys.std()
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = np.abs(xty / np.where(y_std > 1e-12, y_std, 1.0))
    corr = np.where(col_std > 1e-12, np.nan_to_num(corr), 0.0)
    order = sorted(
        range(d),
        key=lambda j: (entry_step[j], -abs(final_w[j]), -corr[j]),
    )
    return order
