"""Lasso regression by coordinate descent, and knob ranking.

OtterTune ranks knobs by importance with Lasso: tracing the regularisation
path from strong to weak penalty, the order in which knob coefficients
become non-zero is the importance order. Fig. 15's accuracy experiment
compares the TDE's throttle class against the classes of the tuner's
top-5 ranked knobs, so this ranking is load-bearing for the reproduction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lasso_coordinate_descent", "lasso_path_ranking"]


def _standardise(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std = np.where(std > 1e-12, std, 1.0)
    return (x - mean) / std, mean, std


def lasso_coordinate_descent(
    x: np.ndarray,
    y: np.ndarray,
    alpha: float,
    max_iter: int = 500,
    tol: float = 1e-6,
) -> np.ndarray:
    """Lasso coefficients for standardised inputs.

    Minimises ``(1/2n)·||y − Xw||² + alpha·||w||₁`` by cyclic coordinate
    descent with soft-thresholding. *x* and *y* are standardised
    internally; returned coefficients are in standardised space (their
    magnitudes are comparable across features, which is all the ranking
    needs).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if x.ndim != 2 or len(x) != len(y):
        raise ValueError("x must be (n, d) with matching y")
    n, d = x.shape
    if n == 0:
        raise ValueError("empty design matrix")
    xs, _, _ = _standardise(x)
    ys = y - y.mean()
    y_std = ys.std() or 1.0
    ys = ys / y_std

    w = np.zeros(d)
    col_sq = np.sum(xs**2, axis=0) / n
    residual = ys.copy()
    for _ in range(max_iter):
        max_delta = 0.0
        for j in range(d):
            if col_sq[j] <= 1e-12:
                continue
            w_old = w[j]
            rho = (xs[:, j] @ residual) / n + col_sq[j] * w_old
            w_new = np.sign(rho) * max(abs(rho) - alpha, 0.0) / col_sq[j]
            if w_new != w_old:
                residual += xs[:, j] * (w_old - w_new)
                w[j] = w_new
                max_delta = max(max_delta, abs(w_new - w_old))
        if max_delta < tol:
            break
    return w


def lasso_path_ranking(
    x: np.ndarray,
    y: np.ndarray,
    n_alphas: int = 30,
) -> list[int]:
    """Feature indices ranked by order of entry on the Lasso path.

    Starting from the smallest alpha that zeroes every coefficient,
    alphas decay geometrically; a feature's rank is the first alpha at
    which its coefficient becomes non-zero (ties broken by final
    coefficient magnitude). Features that never enter rank last, ordered
    by their ordinary correlation with *y*.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    n, d = x.shape
    xs, _, _ = _standardise(x)
    ys = (y - y.mean()) / (y.std() or 1.0)
    alpha_max = float(np.max(np.abs(xs.T @ ys)) / n) or 1.0
    alphas = alpha_max * np.geomspace(1.0, 1e-3, n_alphas)

    entry_step = np.full(d, n_alphas, dtype=int)
    final_w = np.zeros(d)
    for step, alpha in enumerate(alphas):
        w = lasso_coordinate_descent(x, y, float(alpha))
        newly = (np.abs(w) > 1e-9) & (entry_step == n_alphas)
        entry_step[newly] = step
        final_w = w

    corr = np.zeros(d)
    for j in range(d):
        if xs[:, j].std() > 1e-12:
            corr[j] = abs(float(np.corrcoef(xs[:, j], ys)[0, 1]))
    order = sorted(
        range(d),
        key=lambda j: (entry_step[j], -abs(final_w[j]), -corr[j]),
    )
    return order
