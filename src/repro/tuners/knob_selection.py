"""Dynamic per-workload knob selection (DOT-style active subspaces).

OtterTune's pipeline ranks knobs once per repository version and then
tunes the *full* catalog; DOT ("Dynamic Knob Selection and Online
Sampling for Automated Database Tuning", PAPERS.md) shows that choosing
*which* knobs to tune per workload, online, shrinks the optimizer's
dimensionality and speeds convergence. This module is that selection
tier for the reproduction:

1. **Incremental re-rank.** A :class:`KnobSelector` keeps per-workload
   running moments (``n``, ``Σx``, ``Σxxᵀ``, ``Σxy``, ``Σy``, ``Σy²``)
   accumulated *row-sequentially in arrival order*. On a repository
   version bump it derives the standardised Lasso-path problem straight
   from those moments — an O(Δn·d²) update instead of the O(n·d²) Gram
   rebuild ``lasso_path_ranking`` pays on raw rows — and hands the
   previous fit's path coefficients to
   :func:`~repro.tuners.lasso.lasso_gram_ranking`, which reuses them
   outright whenever the problem bits have not moved (a version bump
   that added no rows for this workload). Because cold and warm paths
   run the *same* float-op sequence over the same rows, the warm-started
   ranking equals a from-scratch ranking bit for bit at every version —
   the property ``tests/property/test_knob_selection_properties.py``
   pins.
2. **Stable active subspace.** The top-``k`` ranked knobs (minus the
   TDE-automaton-owned ones, see below) form the *candidate* subspace.
   A new candidate set must win ``stability_window`` consecutive
   re-ranks before it replaces the active set, so the subspace cannot
   thrash between windows: over ``R`` re-ranks of one workload at most
   ``1 + R // stability_window`` replacements can happen.
3. **Projection.** The BO/RL tuners project candidate generation,
   budget repair, GP-UCB and the surrogate screen onto the active
   subspace; inactive knobs are carried byte-identically from the
   incumbent configuration (see ``OtterTuneTuner._recommend_projected``
   and :func:`~repro.dbsim.config.fit_values_to_budget_frozen`).

**Automaton ownership.** The TDE's learning automata already tune the
async/planner knobs online (``PlannerThrottleDetector``); those knobs
are excluded from the selector's subspace so the two tiers never fight
over one knob. Importance signals flow the other way too: automaton
throttles reported on tuning requests are recorded via
:meth:`KnobSelector.note_automaton_signal` and surfaced through the
``tuner.subspace`` trace event.

Everything here is deterministic — no RNG at all; a selector is a pure
function of (policy, catalog, sample arrival order). The tier is **off
by default**: with no :class:`SelectionPolicy` wired, no selector is
built and every figure output stays byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.recording import Recorder
from repro.dbsim.config import KnobConfiguration, fit_values_to_budget_frozen
from repro.dbsim.knobs import KnobCatalog, KnobClass
from repro.tuners.lasso import lasso_gram_ranking

__all__ = [
    "KNOBSELECT_METRIC_FAMILIES",
    "KnobSelector",
    "SelectionPolicy",
    "Subspace",
    "repair_config_frozen",
]

#: Metric family names and help strings for the selection tier, exported
#: through the Prometheus renderer and described up front on trace
#: registries (like the surrogate and safety families) so
#: ``repro trace --metrics`` surfaces them before a sample lands.
KNOBSELECT_METRIC_FAMILIES: dict[str, str] = {
    "repro_knobselect_reranks_total": (
        "Incremental importance re-ranks run after a repository "
        "version bump."
    ),
    "repro_knobselect_reuses_total": (
        "Re-ranks served by the previous fit's path coefficients "
        "(standardised problem unchanged bit-for-bit)."
    ),
    "repro_knobselect_hits_total": (
        "Subspace requests served from the version-keyed cache."
    ),
    "repro_knobselect_updates_total": (
        "Active-subspace replacements committed after the stability "
        "window."
    ),
    "repro_knobselect_holds_total": (
        "Candidate subspace changes held back by the stability window."
    ),
}


@dataclass(frozen=True)
class SelectionPolicy:
    """Tunable thresholds of the dynamic knob-selection tier.

    Parameters
    ----------
    top_k:
        Size of the active subspace: the ``top_k`` knobs by Lasso-path
        entry order (after automaton-owned exclusions) are tuned, the
        rest ride along at the incumbent's values. 8 of the 14-knob
        catalogs keeps >= 0.95 throughput retention on the fixed-arm
        ablation (``repro ablate knobs``) while shrinking every
        downstream matrix.
    stability_window:
        Consecutive re-ranks a *changed* candidate set must win before
        it replaces the active set. 1 adopts immediately; 3 filters the
        rank jitter young repositories show without delaying genuine
        workload shifts by more than three windows.
    min_rank_samples:
        Below this many samples of a workload the selector abstains and
        the caller tunes the full space — path rankings on a handful of
        rows are noise.
    n_alphas:
        Regularisation-path resolution handed to the Lasso solve; same
        default as ``lasso_path_ranking``.
    exclude_automaton_knobs:
        Keep the TDE learning automaton's async/planner knobs out of
        the subspace (they are tuned online by that tier already).
    """

    top_k: int = 8
    stability_window: int = 3
    min_rank_samples: int = 12
    n_alphas: int = 30
    exclude_automaton_knobs: bool = True

    def __post_init__(self) -> None:
        if self.top_k < 2:
            raise ValueError("top_k must be >= 2")
        if self.stability_window < 1:
            raise ValueError("stability_window must be >= 1")
        if self.min_rank_samples < 6:
            raise ValueError("min_rank_samples must be >= 6")
        if self.n_alphas < 2:
            raise ValueError("n_alphas must be >= 2")


@dataclass(frozen=True)
class Subspace:
    """One workload's active subspace at one repository version."""

    workload_id: str
    #: Sorted catalog indices of the knobs the optimizer may move.
    active: tuple[int, ...]
    #: Full importance order from the latest re-rank (catalog indices).
    ranking: tuple[int, ...]
    #: Repository version the ranking was derived at.
    version: int
    #: Whether this re-rank replaced the active set.
    updated: bool


class _RunningStats:
    """Row-sequential sufficient statistics of one workload's samples.

    The standardised Lasso problem needs only first and second moments.
    Accumulating them one row at a time *in arrival order* is the whole
    bit-reproducibility argument: a cold selector fed all rows runs the
    exact float-op sequence a warm selector ran across its increments,
    so both derive bit-identical moments — something ``x.mean(axis=0)``
    (pairwise summation, split-dependent) cannot promise.
    """

    __slots__ = ("n", "sx", "sy", "syy", "sxx", "sxy")

    def __init__(self, d: int) -> None:
        self.n = 0
        self.sx = np.zeros(d)
        self.sy = 0.0
        self.syy = 0.0
        self.sxx = np.zeros((d, d))
        self.sxy = np.zeros(d)

    def absorb(
        self, configs: np.ndarray, objective: np.ndarray, start: int
    ) -> None:
        """Fold rows ``start:`` in, one at a time, in arrival order."""
        for i in range(start, len(objective)):
            row = configs[i]
            target = float(objective[i])
            self.sx += row
            self.sy += target
            self.syy += target * target
            self.sxx += np.multiply.outer(row, row)
            self.sxy += row * target
            self.n += 1

    def standardised_problem(self) -> tuple[np.ndarray, np.ndarray]:
        """``(gram, corr)`` of the standardised design, from moments only.

        Zero-variance columns standardise by 1.0 (mirroring
        ``lasso._standardise``) so they contribute zero rows/columns and
        the solver skips them.
        """
        n = float(self.n)
        mean = self.sx / n
        var = np.maximum(self.sxx.diagonal() / n - mean * mean, 0.0)
        std = np.sqrt(var)
        std = np.where(std > 1e-12, std, 1.0)
        y_mean = self.sy / n
        y_var = max(self.syy / n - y_mean * y_mean, 0.0)
        y_std = math.sqrt(y_var) or 1.0
        gram = (
            self.sxx / n - np.multiply.outer(mean, mean)
        ) / np.multiply.outer(std, std)
        corr = (self.sxy / n - mean * y_mean) / (std * y_std)
        return gram, corr


class _WorkloadState:
    """Selector state for one workload id."""

    __slots__ = (
        "stats",
        "rows_seen",
        "version",
        "subspace",
        "active",
        "pending",
        "pending_count",
        "path",
        "problem",
    )

    def __init__(self, d: int) -> None:
        self.stats = _RunningStats(d)
        self.rows_seen = 0
        self.version = -1
        self.subspace: Subspace | None = None
        self.active: tuple[int, ...] | None = None
        self.pending: tuple[int, ...] | None = None
        self.pending_count = 0
        self.path: np.ndarray | None = None
        self.problem: tuple[np.ndarray, np.ndarray] | None = None


class KnobSelector:
    """Per-workload dynamic active subspaces over a knob catalog.

    One selector lives inside one tuner. :meth:`subspace` serves the
    repository-backed (BO) path, version-keyed exactly like the tuner's
    ranking/GPR caches; :meth:`ingest`/:meth:`subspace_for` serve the RL
    path, which has no repository — there the version is the selector's
    own row counter. Both return ``None`` (abstain: tune the full
    space) below ``policy.min_rank_samples``.
    """

    def __init__(self, policy: SelectionPolicy, catalog: KnobCatalog) -> None:
        self.policy = policy
        self.catalog = catalog
        self._names: list[str] = catalog.names()
        owned: set[str] = set()
        if policy.exclude_automaton_knobs:
            owned = {
                k.name for k in catalog.by_class(KnobClass.ASYNC_PLANNER)
            }
        self._excluded = frozenset(
            i for i, name in enumerate(self._names) if name in owned
        )
        self._states: dict[str, _WorkloadState] = {}
        #: Automaton throttle counts by knob name (importance signals
        #: flowing in from the TDE tier; see ``note_automaton_signal``).
        self.automaton_signals: dict[str, int] = {}
        self.reranks = 0
        self.reuses = 0
        self.hits = 0
        self.updates = 0
        self.holds = 0

    @property
    def dimension(self) -> int:
        """Full catalog width d."""
        return len(self._names)

    def excluded_knobs(self) -> tuple[str, ...]:
        """Automaton-owned knob names barred from every subspace."""
        return tuple(sorted(self._names[i] for i in self._excluded))

    def note_automaton_signal(self, knob_name: str) -> None:
        """Record a TDE-automaton throttle on *knob_name*.

        The automata own those knobs (they stay excluded from the
        subspace); counting their throttles here keeps the importance
        signal visible to the director tier and the ``tuner.subspace``
        trace event instead of being lost between the two tuning loops.
        """
        self.automaton_signals[knob_name] = (
            self.automaton_signals.get(knob_name, 0) + 1
        )

    def active_knobs(self, workload_id: str) -> tuple[str, ...] | None:
        """Names of the workload's active subspace, or ``None``."""
        state = self._states.get(workload_id)
        if state is None or state.active is None:
            return None
        return tuple(self._names[i] for i in state.active)

    def importance(self, workload_id: str) -> tuple[str, ...] | None:
        """Full knob importance order from the latest re-rank (names)."""
        state = self._states.get(workload_id)
        if state is None or state.subspace is None:
            return None
        return tuple(self._names[i] for i in state.subspace.ranking)

    def mask(self, subspace: Subspace) -> np.ndarray:
        """Boolean ``(d,)`` mask, ``True`` on the active columns."""
        out = np.zeros(self.dimension, dtype=bool)
        out[list(subspace.active)] = True
        return out

    def counters(self) -> tuple[int, int, int, int, int]:
        """Snapshot of (reranks, reuses, hits, updates, holds)."""
        return (
            self.reranks,
            self.reuses,
            self.hits,
            self.updates,
            self.holds,
        )

    def record_deltas(
        self, recorder: Recorder, before: tuple[int, int, int, int, int]
    ) -> None:
        """Mirror counter movement since *before* onto a trace recorder."""
        reranks, reuses, hits, updates, holds = before
        if self.reranks > reranks:
            recorder.inc("repro_knobselect_reranks_total")
        elif self.hits > hits:
            recorder.inc("repro_knobselect_hits_total")
        if self.reuses > reuses:
            recorder.inc("repro_knobselect_reuses_total")
        if self.updates > updates:
            recorder.inc("repro_knobselect_updates_total")
        if self.holds > holds:
            recorder.inc("repro_knobselect_holds_total")

    def subspace(
        self,
        workload_id: str,
        configs: np.ndarray,
        objective: np.ndarray,
        version: int,
    ) -> Subspace | None:
        """Active subspace for a repository dataset at *version*.

        *configs*/*objective* are the workload's full (append-only)
        sample matrices; only rows past the high-water mark are folded
        into the running moments. The result is cached per version —
        the same freshness rule the exact GPR cache applies.
        """
        state = self._state(workload_id)
        if state.subspace is not None and state.version == version:
            self.hits += 1
            return state.subspace
        if state.rows_seen > len(objective):
            # The dataset shrank under us (rebuilt repository): the
            # moments no longer describe it, so restart from row zero.
            state = self._states[workload_id] = _WorkloadState(
                self.dimension
            )
        state.stats.absorb(configs, objective, state.rows_seen)
        state.rows_seen = len(objective)
        return self._refresh(workload_id, state, version)

    def ingest(
        self, workload_id: str, config_vector: np.ndarray, objective: float
    ) -> None:
        """Fold one (normalised vector, objective) sample in.

        The RL tuner's feed: it has no shared repository, so the
        selector keeps its own arrival-ordered moments and uses the row
        count as the version.
        """
        state = self._state(workload_id)
        state.stats.absorb(
            np.asarray(config_vector, dtype=float)[None, :],
            np.array([objective]),
            0,
        )
        state.rows_seen += 1

    def subspace_for(self, workload_id: str) -> Subspace | None:
        """Active subspace over previously :meth:`ingest`-ed samples."""
        state = self._states.get(workload_id)
        if state is None:
            return None
        if (
            state.subspace is not None
            and state.version == state.rows_seen
        ):
            self.hits += 1
            return state.subspace
        return self._refresh(workload_id, state, state.rows_seen)

    def _state(self, workload_id: str) -> _WorkloadState:
        state = self._states.get(workload_id)
        if state is None:
            state = self._states[workload_id] = _WorkloadState(
                self.dimension
            )
        return state

    def _refresh(
        self, workload_id: str, state: _WorkloadState, version: int
    ) -> Subspace | None:
        if state.stats.n < self.policy.min_rank_samples:
            return None
        gram, corr = state.stats.standardised_problem()
        order, path = lasso_gram_ranking(
            gram,
            corr,
            n_alphas=self.policy.n_alphas,
            warm_path=state.path,
            warm_problem=state.problem,
        )
        if path is state.path:
            self.reuses += 1
        state.path = path
        state.problem = (gram, corr)
        self.reranks += 1
        candidate = tuple(
            sorted(
                [j for j in order if j not in self._excluded][
                    : self.policy.top_k
                ]
            )
        )
        updated = self._advance(state, candidate)
        assert state.active is not None
        state.version = version
        state.subspace = Subspace(
            workload_id=workload_id,
            active=state.active,
            ranking=tuple(order),
            version=version,
            updated=updated,
        )
        return state.subspace

    def _advance(
        self, state: _WorkloadState, candidate: tuple[int, ...]
    ) -> bool:
        """Stability-window state machine; ``True`` iff the set changed.

        A changed candidate must win ``stability_window`` *consecutive*
        re-ranks, so between two replacements at least that many
        re-ranks pass: over ``R`` re-ranks a workload sees at most
        ``1 + R // stability_window`` replacements.
        """
        if state.active is None:
            state.active = candidate
            self.updates += 1
            return True
        if candidate == state.active:
            state.pending = None
            state.pending_count = 0
            return False
        if candidate == state.pending:
            state.pending_count += 1
        else:
            state.pending = candidate
            state.pending_count = 1
        if state.pending_count >= self.policy.stability_window:
            state.active = candidate
            state.pending = None
            state.pending_count = 0
            self.updates += 1
            return True
        self.holds += 1
        return False


def repair_config_frozen(
    config: KnobConfiguration,
    incumbent: KnobConfiguration,
    memory_limit_mb: float,
    active_connections: int,
) -> KnobConfiguration:
    """Scalar §4 repair that holds unmoved knobs byte-untouched.

    The projected tuners' repair step: knobs still at *incumbent*'s
    value (the inactive subspace, minus any throttle boosts) are frozen
    — the incumbent already runs inside the budget, so only the knobs
    this recommendation actually moved absorb the shrink. See
    :func:`~repro.dbsim.config.fit_values_to_budget_frozen`.
    """
    catalog = config.catalog
    names = catalog.names()
    values = np.array([[config[name] for name in names]])
    frozen = np.array([config[name] == incumbent[name] for name in names])
    repaired = fit_values_to_budget_frozen(
        values, catalog, memory_limit_mb, frozen, active_connections
    )
    updates = {
        name: float(repaired[0, i])
        for i, name in enumerate(names)
        if repaired[0, i] != values[0, i]
    }
    if not updates:
        return config
    return config.with_values(updates)
