"""Learning-based tuners: the BO-style and RL-style instances of §2.1."""

from repro.tuners.base import (
    Recommendation,
    TrainingSample,
    Tuner,
    TuningRequest,
    config_to_vector,
    vector_to_config,
)
from repro.tuners.cdbtune import CDBTuneTuner, cdbtune_reward
from repro.tuners.gpr import GaussianProcessRegressor
from repro.tuners.hybrid import HybridTuner
from repro.tuners.lasso import lasso_coordinate_descent, lasso_path_ranking
from repro.tuners.metrics_prep import factor_embedding, kmeans, prune_metrics
from repro.tuners.neural import MLP, Adam, soft_update
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.persistence import (
    load_config_history,
    load_repository,
    save_config_history,
    save_repository,
)
from repro.tuners.repository import WorkloadDataset, WorkloadRepository
from repro.tuners.workload_mapping import MappingResult, WorkloadMapper

__all__ = [
    "Adam",
    "CDBTuneTuner",
    "GaussianProcessRegressor",
    "HybridTuner",
    "MLP",
    "MappingResult",
    "OtterTuneTuner",
    "Recommendation",
    "TrainingSample",
    "Tuner",
    "TuningRequest",
    "WorkloadDataset",
    "WorkloadMapper",
    "WorkloadRepository",
    "cdbtune_reward",
    "config_to_vector",
    "factor_embedding",
    "kmeans",
    "lasso_coordinate_descent",
    "lasso_path_ranking",
    "load_config_history",
    "load_repository",
    "prune_metrics",
    "save_config_history",
    "save_repository",
    "soft_update",
    "vector_to_config",
]
