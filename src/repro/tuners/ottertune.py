"""The BO-style tuner (OtterTune-like pipeline, Van Aken et al. 2017).

Pipeline per recommendation:

1. pull the target workload's samples plus the repository;
2. map the target onto its most similar historical workload
   (:mod:`repro.tuners.workload_mapping`);
3. fit a GPR surrogate on the mapped workload's samples concatenated with
   the target's own (target last, so its evidence dominates duplicates);
4. maximise GP-UCB over random candidate configurations plus local
   perturbations of the best seen, honouring the VM memory budget;
5. rank knob importance with a Lasso path for the recommendation report.

The §1 scalability cost is modelled by :meth:`recommendation_cost_s`:
GPR retraining takes ~100–120 s at production sample volumes, so one
deployment saturates at 3–4 serviced instances under 5-minute periodic
tuning — the number Fig. 9 attacks with the TDE.

Model corruption (§2.1, Figs. 12) is emergent: feed low-quality idle
production samples through :meth:`observe` and the surrogate learns a
flat, noisy response surface whose argmax is close to random.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.dbsim.config import (
    KnobConfiguration,
    fit_values_to_budget,
    fit_values_to_budget_frozen,
)
from repro.dbsim.knobs import KnobCatalog, KnobClass
from repro.tuners.base import (
    Recommendation,
    TrainingSample,
    Tuner,
    TuningRequest,
    boost_throttled_knobs,
    config_to_vector,
    values_to_vectors,
    vector_to_config,
    vectors_to_values,
)
from repro.tuners.gpr import GaussianProcessRegressor
from repro.tuners.knob_selection import (
    KnobSelector,
    SelectionPolicy,
    Subspace,
    repair_config_frozen,
)
from repro.tuners.lasso import lasso_path_ranking
from repro.tuners.repository import WorkloadRepository
from repro.tuners.surrogate import SurrogatePolicy, SurrogateScreen
from repro.tuners.workload_mapping import WorkloadMapper

__all__ = ["OtterTuneTuner"]


class OtterTuneTuner(Tuner):
    """BO-style tuner over a shared workload repository.

    Parameters
    ----------
    catalog:
        Knob catalog of the DBMS flavor being tuned.
    repository:
        Shared :class:`WorkloadRepository`; a private one is created if
        omitted.
    kappa:
        GP-UCB exploration weight. The default is deliberately small —
        against production systems exploration is costly, and Fig. 15
        "minimise[s] this exploration by setting appropriate hyper
        parameters manually" (pass ~0 for that experiment).
    memory_limit_mb / active_connections:
        If given, candidate configurations violating the §4 memory budget
        are filtered out before scoring.
    surrogate:
        Optional :class:`~repro.tuners.surrogate.SurrogatePolicy`. When
        set, raw candidates are screened by a coreset-GP surrogate and
        budget repair plus exact GP-UCB run only on the shortlist. The
        default (``None``) leaves every output byte-identical to builds
        without the surrogate tier.
    selection:
        Optional :class:`~repro.tuners.knob_selection.SelectionPolicy`.
        When set, a :class:`~repro.tuners.knob_selection.KnobSelector`
        derives a per-workload active subspace and candidate
        generation, budget repair, GP-UCB and the surrogate screen all
        run inside it, with inactive knobs carried byte-identically
        from the incumbent configuration. Off (``None``) by default:
        the flag-off path is the exact pre-selection expression.
    """

    name = "ottertune"

    def __init__(
        self,
        catalog: KnobCatalog,
        repository: WorkloadRepository | None = None,
        kappa: float = 0.5,
        n_candidates: int = 600,
        max_train_samples: int = 300,
        memory_limit_mb: float | None = None,
        active_connections: int = 20,
        seed: int | np.random.Generator | None = 0,
        surrogate: SurrogatePolicy | None = None,
        selection: SelectionPolicy | None = None,
    ) -> None:
        if max_train_samples < 3:
            raise ValueError("max_train_samples must be >= 3")
        self.catalog = catalog
        self.repository = repository if repository is not None else WorkloadRepository()
        self.kappa = kappa
        self.n_candidates = n_candidates
        self.max_train_samples = max_train_samples
        self.memory_limit_mb = memory_limit_mb
        self.active_connections = active_connections
        self._rng = make_rng(seed)
        self._mapper = WorkloadMapper(self.repository)
        self._last_train_size = 0
        self.last_mapping_id: str | None = None
        # Lasso knob ranking and fitted surrogate per workload, keyed on
        # the repository version they were computed at: recomputed only
        # when new samples arrive (amortised past the repository's
        # exact-refresh scale).
        self._ranking_cache: dict[str, tuple[int, list[str]]] = {}
        self._gpr_cache: dict[
            str, tuple[int, GaussianProcessRegressor, np.ndarray, np.ndarray]
        ] = {}
        self._screen = SurrogateScreen(surrogate) if surrogate else None
        self._selector = KnobSelector(selection, catalog) if selection else None
        # Projected GPR per workload, keyed on (version, active set) —
        # the flag-on sibling of ``_gpr_cache``.
        self._proj_gpr_cache: dict[
            str, tuple[int, tuple[int, ...], GaussianProcessRegressor]
        ] = {}

    @property
    def surrogate_screen(self) -> SurrogateScreen | None:
        """The active screen, for stats inspection (``None`` when off)."""
        return self._screen

    @property
    def knob_selector(self) -> KnobSelector | None:
        """The active selector, for stats inspection (``None`` when off)."""
        return self._selector

    def configure_surrogate(self, policy: SurrogatePolicy) -> bool:
        """Enable surrogate candidate screening under *policy*."""
        self._screen = SurrogateScreen(policy)
        return True

    def configure_selection(self, policy: SelectionPolicy) -> bool:
        """Enable dynamic knob selection under *policy*."""
        self._selector = KnobSelector(policy, self.catalog)
        return True

    # -- Tuner interface ---------------------------------------------------------

    def observe(self, sample: TrainingSample) -> None:
        """Store one sample in the shared repository."""
        self.repository.add(sample)

    def recommend(self, request: TuningRequest) -> Recommendation:
        """GP-UCB recommendation for *request* (see module docstring)."""
        gpr, x, y = self._fitted_surrogate(request)
        self._last_train_size = len(y)
        if len(y) < 3:
            # Cold start: no usable history; nudge defaults randomly.
            vector = np.clip(
                config_to_vector(request.config)
                + self._rng.normal(0.0, 0.1, size=len(self.catalog)),
                0.0,
                1.0,
            )
            config = self._repair(vector_to_config(vector, self.catalog))
            return Recommendation(
                request.instance_id, config, self.name, expected_improvement=0.0
            )
        if self._selector is not None:
            projected = self._recommend_projected(request, x, y)
            if projected is not None:
                return projected
        if self._screen is None:
            candidates = self._candidates(x, y)
        else:
            candidates = self._screened_candidates(request, gpr, x, y)
        scores = gpr.ucb(candidates, kappa=self.kappa)
        self.recorder.event(
            "tuner.surrogate",
            instance=request.instance_id,
            source=self.name,
            train_samples=len(y),
            candidates=len(candidates),
        )
        best = int(np.argmax(scores))
        config = vector_to_config(candidates[best], self.catalog)
        config = self._repair(boost_throttled_knobs(config, request))
        best_mean = float(gpr.predict(candidates[best][None, :])[0])
        current_pred = float(gpr.predict(config_to_vector(request.config)[None, :])[0])
        return Recommendation(
            instance_id=request.instance_id,
            config=config,
            source=self.name,
            # Posterior-mean difference: the UCB's exploration bonus is a
            # selection criterion, not an improvement estimate.
            expected_improvement=best_mean - current_pred,
            ranked_knobs=self._cached_ranking(request.workload_id, x, y),
        )

    def recommendation_cost_s(self) -> float:
        """GPR retrain + candidate scoring wall-clock model (§1).

        Calibrated so ~2000 repository samples cost ≈ 110 s of training
        and ≈ 200 s end-to-end, the numbers the paper reports.
        """
        n = max(self.repository.total_samples(), self._last_train_size)
        train_s = 110.0 * (n / 2000.0) ** 1.5
        scoring_s = 90.0 * (n / 2000.0)
        if self._screen is not None:
            # The screen hands exact scoring only the shortlist; model the
            # scoring term shrinking by the same fraction (training cost
            # is unchanged — the GPR still refits on every version bump).
            total = self.n_candidates + self.n_candidates // 5
            scoring_s *= min(
                1.0, self._screen.policy.shortlist_size / max(total, 1)
            )
        return 2.0 + train_s + scoring_s

    # -- pipeline pieces -----------------------------------------------------------

    def _fitted_surrogate(
        self, request: TuningRequest
    ) -> tuple[GaussianProcessRegressor | None, np.ndarray, np.ndarray]:
        """Training set plus fitted GPR, cached per workload and version.

        Fitting is deterministic in (x, y), so a cache hit returns exactly
        what refitting would. Unlike the decile edges or the Lasso ranking,
        the surrogate is *not* served stale past the exact-refresh scale:
        recommendation quality directly suppresses future throttles (the
        Fig. 9 feedback loop), and the capped training window means one
        window's samples can move the fit materially.
        """
        cached = self._gpr_cache.get(request.workload_id)
        if cached is not None and cached[0] == self.repository.version:
            return cached[1], cached[2], cached[3]
        x, y = self._training_set(request)
        gpr = None
        if len(y) >= 3:
            gpr = GaussianProcessRegressor(
                length_scale=0.4, noise_variance=0.05
            ).fit(x, y)
        self._gpr_cache[request.workload_id] = (
            self.repository.version, gpr, x, y
        )
        return gpr, x, y

    def _training_set(self, request: TuningRequest) -> tuple[np.ndarray, np.ndarray]:
        """Mapped + target samples, objectives standardised per source.

        Different sources observe the same configurations under different
        offered loads (an offline stress session vs a live system), so raw
        throughputs are not comparable across sources; each source's
        objective is z-scored independently — what matters for the
        surrogate is each source's *ranking* of configurations.
        """
        target = self.repository.dataset(request.workload_id)
        mapping = self._mapper.map_workload(request.workload_id)
        self.last_mapping_id = mapping.best_workload_id

        def standardise(y: np.ndarray) -> np.ndarray:
            std = float(np.std(y))
            return (y - float(np.mean(y))) / std if std > 1e-12 else y - float(np.mean(y))

        parts_x: list[np.ndarray] = []
        parts_y: list[np.ndarray] = []
        if mapping.mapped:
            mapped = self.repository.dataset(mapping.best_workload_id)
            if mapped.size:
                parts_x.append(mapped.configs)
                parts_y.append(standardise(mapped.objective))
        if target.size:
            parts_x.append(target.configs)
            parts_y.append(standardise(target.objective))
        if not parts_x:
            return np.empty((0, len(self.catalog))), np.empty(0)
        x = np.vstack(parts_x)
        y = np.concatenate(parts_y)
        # Exact GPR is cubic in the sample count; cap the training set at
        # the most recent rows (target samples come last and survive
        # preferentially), as a deployed tuner must.
        if len(y) > self.max_train_samples:
            x = x[-self.max_train_samples :]
            y = y[-self.max_train_samples :]
        return x, y

    def _candidates(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Random + locally-perturbed candidates, repaired to the budget.

        Repair happens *before* GP-UCB scoring so the surrogate is asked
        about configurations that can actually be deployed — otherwise a
        budget filter would reject nearly all of the uniform samples
        (working areas multiply per session) and the fallback would score
        swap-inducing configs.
        """
        return self._repair_candidates(self._raw_candidates(x, y))

    def _raw_candidates(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Unrepaired candidate matrix in normalised [0, 1]^d space."""
        d = len(self.catalog)
        n_random = self.n_candidates
        random_part = self._rng.uniform(0.0, 1.0, size=(n_random, d))
        best_seen = x[int(np.argmax(y))]
        local_part = np.clip(
            best_seen + self._rng.normal(0.0, 0.08, size=(n_random // 5, d)),
            0.0,
            1.0,
        )
        return np.vstack([random_part, local_part])

    def _repair_candidates(self, candidates: np.ndarray) -> np.ndarray:
        """Batched §4 budget repair of a normalised candidate matrix."""
        if self.memory_limit_mb is None:
            return candidates
        # One batched unit->value->repair->unit round trip over the whole
        # candidate matrix; KnobConfiguration objects are materialised only
        # for the winning candidate back in :meth:`recommend`.
        values = vectors_to_values(candidates, self.catalog)
        repaired = fit_values_to_budget(
            values,
            self.catalog,
            self.memory_limit_mb,
            self.active_connections,
        )
        return values_to_vectors(repaired, self.catalog)

    def _screened_candidates(
        self,
        request: TuningRequest,
        gpr: GaussianProcessRegressor | None,
        x: np.ndarray,
        y: np.ndarray,
    ) -> np.ndarray:
        """Flag-on candidate path: raw → surrogate shortlist → repair.

        The screen scores the *unrepaired* matrix — budget repair is the
        expensive half of candidate generation, and repairing 16
        survivors instead of 720 candidates is most of the warm-path win.
        The screen draws only from its own keyed substreams, so
        ``self._rng`` advances exactly as on the flag-off path.
        """
        assert self._screen is not None
        raw = self._raw_candidates(x, y)
        retrains_before = self._screen.retrains
        keep = self._screen.shortlist(
            request.workload_id,
            raw,
            gpr,
            x,
            y,
            self.kappa,
            self.repository.version,
        )
        if keep is not None:
            if self._screen.retrains > retrains_before:
                self.recorder.inc("repro_surrogate_retrains_total")
            else:
                self.recorder.inc("repro_surrogate_hits_total")
            self.recorder.inc("repro_surrogate_shortlists_total")
            self.recorder.event(
                "tuner.shortlist",
                instance=request.instance_id,
                source=self.name,
                candidates=len(raw),
                shortlist=len(keep),
            )
            raw = raw[keep]
        return self._repair_candidates(raw)

    # -- projected (dynamic knob selection) path ---------------------------------

    def _recommend_projected(
        self, request: TuningRequest, x: np.ndarray, y: np.ndarray
    ) -> Recommendation | None:
        """Flag-on recommendation inside the workload's active subspace.

        Returns ``None`` when the selector abstains (young workload) —
        the caller then runs the exact full-space path. No RNG is drawn
        before the abstain check, so an abstaining selector leaves the
        stream exactly where the full-space expressions expect it.
        """
        selector = self._selector
        assert selector is not None
        if request.throttle_class == KnobClass.ASYNC_PLANNER.value:
            # The TDE's learning automata own these knobs; their
            # throttles are the importance signal shared with this tier.
            for knob_name in request.throttle_knobs:
                selector.note_automaton_signal(knob_name)
        dataset = self.repository.dataset(request.workload_id)
        version = self.repository.version
        before = selector.counters()
        sub = selector.subspace(
            request.workload_id, dataset.configs, dataset.objective, version
        )
        if sub is None:
            return None
        selector.record_deltas(self.recorder, before)

        active = np.fromiter(sub.active, dtype=np.intp)
        names = self.catalog.names()
        incumbent = config_to_vector(request.config)
        gpr = self._projected_gpr(request.workload_id, sub, x, y, version)
        raw = self._raw_candidates_projected(x, y, incumbent, active)
        if self._screen is not None:
            retrains_before = self._screen.retrains
            keep = self._screen.shortlist(
                request.workload_id,
                raw[:, active],
                gpr,
                x[:, active],
                y,
                self.kappa,
                version,
            )
            if keep is not None:
                if self._screen.retrains > retrains_before:
                    self.recorder.inc("repro_surrogate_retrains_total")
                else:
                    self.recorder.inc("repro_surrogate_hits_total")
                self.recorder.inc("repro_surrogate_shortlists_total")
                self.recorder.event(
                    "tuner.shortlist",
                    instance=request.instance_id,
                    source=self.name,
                    candidates=len(raw),
                    shortlist=len(keep),
                )
                raw = raw[keep]
        candidates = self._repair_candidates_frozen(raw, active)
        scores = gpr.ucb(candidates[:, active], kappa=self.kappa)
        self.recorder.event(
            "tuner.surrogate",
            instance=request.instance_id,
            source=self.name,
            train_samples=len(y),
            candidates=len(candidates),
        )
        self.recorder.event(
            "tuner.subspace",
            instance=request.instance_id,
            source=self.name,
            workload=request.workload_id,
            active=len(sub.active),
            total=len(names),
            version=sub.version,
            updated=sub.updated,
            automaton_signals=sum(selector.automaton_signals.values()),
        )
        best = int(np.argmax(scores))
        winner = vector_to_config(candidates[best], self.catalog)
        # Only the active knobs move; inactive knobs keep the incumbent's
        # float values bit-for-bit (they are never run through the
        # unit-vector round trip).
        config = request.config.with_values(
            {names[i]: winner[names[i]] for i in sub.active}
        )
        config = boost_throttled_knobs(config, request)
        if self.memory_limit_mb is not None:
            config = repair_config_frozen(
                config,
                request.config,
                self.memory_limit_mb,
                self.active_connections,
            )
        best_mean = float(gpr.predict(candidates[best, active][None, :])[0])
        current_pred = float(gpr.predict(incumbent[active][None, :])[0])
        ranking = selector.importance(request.workload_id) or ()
        return Recommendation(
            instance_id=request.instance_id,
            config=config,
            source=self.name,
            expected_improvement=best_mean - current_pred,
            ranked_knobs=list(ranking),
        )

    def _projected_gpr(
        self,
        workload_id: str,
        sub: Subspace,
        x: np.ndarray,
        y: np.ndarray,
        version: int,
    ) -> GaussianProcessRegressor:
        """GPR over the active columns, keyed on (version, active set).

        The active set is itself a pure function of the version (the
        selector re-ranks at most once per version), so version keying
        is as safe here as on the full-space ``_gpr_cache``; the set is
        kept in the key anyway as a guard.
        """
        cached = self._proj_gpr_cache.get(workload_id)
        if (
            cached is not None
            and cached[0] == version
            and cached[1] == sub.active
        ):
            return cached[2]
        active = np.fromiter(sub.active, dtype=np.intp)
        gpr = GaussianProcessRegressor(
            length_scale=0.4, noise_variance=0.05
        ).fit(x[:, active], y)
        self._proj_gpr_cache[workload_id] = (version, sub.active, gpr)
        return gpr

    def _raw_candidates_projected(
        self,
        x: np.ndarray,
        y: np.ndarray,
        incumbent: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Full-width candidates that vary only on the active columns.

        RNG draws are sized by the subspace (``(n, k)`` instead of
        ``(n, d)``), so flag-on runs are a pure function of (seed,
        policy) — byte-reproducible across runs, though deliberately not
        stream-compatible with the full-space path. Inactive columns are
        the incumbent's coordinates.
        """
        k = len(active)
        n_random = self.n_candidates
        random_part = self._rng.uniform(0.0, 1.0, size=(n_random, k))
        best_seen = x[int(np.argmax(y))]
        local_part = np.clip(
            best_seen[active]
            + self._rng.normal(0.0, 0.08, size=(n_random // 5, k)),
            0.0,
            1.0,
        )
        raw_k = np.vstack([random_part, local_part])
        raw = np.tile(incumbent, (len(raw_k), 1))
        raw[:, active] = raw_k
        return raw

    def _repair_candidates_frozen(
        self, candidates: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """§4 budget repair that moves only the active columns."""
        if self.memory_limit_mb is None:
            return candidates
        frozen = np.ones(len(self.catalog), dtype=bool)
        frozen[active] = False
        values = vectors_to_values(candidates, self.catalog)
        repaired = fit_values_to_budget_frozen(
            values,
            self.catalog,
            self.memory_limit_mb,
            frozen,
            self.active_connections,
        )
        return values_to_vectors(repaired, self.catalog)

    def _repair(self, config: KnobConfiguration) -> KnobConfiguration:
        if self.memory_limit_mb is None:
            return config
        return config.fitted_to_budget(
            self.memory_limit_mb, self.active_connections
        )

    def _cached_ranking(
        self, workload_id: str, x: np.ndarray, y: np.ndarray
    ) -> list[str]:
        """Lasso ranking for *workload_id*, reused until new samples land.

        The training set is a pure function of the repository contents and
        the workload id, so the ranking computed at one repository version
        stays valid until the version counter bumps. Past the repository's
        exact-refresh scale the ranking follows the same amortised refresh
        cadence (the training window is capped anyway, so one more sample
        cannot move the path much).
        """
        cached = self._ranking_cache.get(workload_id)
        if cached is not None and self.repository.fresh_enough(
            cached[0], self.repository.total_samples()
        ):
            return list(cached[1])
        version = self.repository.version
        ranking = self.ranked_knobs(x, y)
        self._ranking_cache[workload_id] = (version, ranking)
        return list(ranking)

    def ranked_knobs(self, x: np.ndarray, y: np.ndarray) -> list[str]:
        """Knob names ranked by Lasso-path importance on (*x*, *y*)."""
        if len(y) < 5:
            return []
        order = lasso_path_ranking(x, y)
        names = self.catalog.names()
        return [names[i] for i in order]
