"""Tuner API: requests, recommendations, training samples.

Tuner instances (§2.1) are interchangeable behind this interface — the
config director load-balances :class:`TuningRequest` objects across them
and forwards the resulting :class:`Recommendation` to the apply pipeline.
Both the BO-style (:mod:`repro.tuners.ottertune`) and RL-style
(:mod:`repro.tuners.cdbtune`) tuners implement :class:`Tuner`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.common.recording import NULL_RECORDER, Recorder

if TYPE_CHECKING:
    from repro.tuners.knob_selection import SelectionPolicy
    from repro.tuners.surrogate import SurrogatePolicy
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.knobs import KnobCatalog
from repro.dbsim.metrics import MetricsDelta

__all__ = [
    "TrainingSample",
    "TunerUnavailable",
    "TuningRequest",
    "Recommendation",
    "Tuner",
    "config_to_vector",
    "vector_to_config",
    "vectors_to_values",
    "values_to_vectors",
]


class TunerUnavailable(RuntimeError):
    """A tuner instance cannot serve a recommendation right now.

    Raised by deployed tuner instances when the backing deployment is
    down or unreachable. The config director treats it as a routing
    failure: it counts against the instance's circuit breaker and the
    request is retried on another instance, never propagated to the
    service instance that asked for tuning.
    """


def vectors_to_values(vectors: np.ndarray, catalog: KnobCatalog) -> np.ndarray:
    """Batched :func:`vector_to_config` without materialising configs.

    *vectors* is (n, d) in normalised [0, 1] space; the result is (n, d)
    clamped knob values in catalog order — exactly the values a
    :class:`KnobConfiguration` built via :func:`vector_to_config` would
    hold, row by row.
    """
    vectors = np.asarray(vectors, dtype=float)
    if vectors.shape[-1] != len(catalog):
        raise ValueError(
            f"vector width {vectors.shape[-1]} != catalog size {len(catalog)}"
        )
    mins, maxs, log_mask, spans = catalog.vector_transform_arrays()
    with np.errstate(divide="ignore", invalid="ignore"):
        log_values = mins * (maxs / np.where(mins > 0, mins, 1.0)) ** vectors
    linear_values = mins + vectors * spans
    values = np.where(log_mask, log_values, linear_values)
    return np.clip(values, mins, maxs)


def values_to_vectors(values: np.ndarray, catalog: KnobCatalog) -> np.ndarray:
    """Batched :func:`config_to_vector` over an (n, d) knob-value matrix."""
    values = np.asarray(values, dtype=float)
    if values.shape[-1] != len(catalog):
        raise ValueError(
            f"value width {values.shape[-1]} != catalog size {len(catalog)}"
        )
    mins, maxs, log_mask, spans = catalog.vector_transform_arrays()
    safe_mins = np.where(mins > 0, mins, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_units = np.log(values / safe_mins) / np.log(maxs / safe_mins)
        linear_units = (values - mins) / spans
    return np.where(log_mask, log_units, linear_units)


def config_to_vector(config: KnobConfiguration) -> np.ndarray:
    """Normalise a configuration to a [0, 1]^d vector (catalog order).

    Ratio-scaled knobs (see :attr:`KnobDef.log_scale`) are log-transformed
    first so that, e.g., a 16 MB and a 3 GB buffer pool land far apart in
    tuning space while 60 GB and 63 GB land close together.
    """
    values: list[float] = []
    for knob in config.catalog:
        value = config[knob.name]
        if knob.log_scale:
            values.append(
                np.log(value / knob.min_value)
                / np.log(knob.max_value / knob.min_value)
            )
        else:
            span = knob.max_value - knob.min_value
            values.append((value - knob.min_value) / span)
    return np.array(values, dtype=float)


def vector_to_config(
    vector: np.ndarray, catalog: KnobCatalog
) -> KnobConfiguration:
    """Inverse of :func:`config_to_vector` (values clamped to ranges)."""
    if len(vector) != len(catalog):
        raise ValueError(
            f"vector length {len(vector)} != catalog size {len(catalog)}"
        )
    values: dict[str, float] = {}
    for knob, raw_unit in zip(catalog, vector):
        unit = float(raw_unit)
        if knob.log_scale:
            value = knob.min_value * (knob.max_value / knob.min_value) ** unit
        else:
            value = knob.min_value + unit * (knob.max_value - knob.min_value)
        values[knob.name] = knob.clamp(value)
    return KnobConfiguration(catalog, values)


@dataclass(frozen=True, slots=True)
class TrainingSample:
    """One (config, delta-metrics) observation from a workload execution.

    ``quality`` is the §1 "high quality samples" notion: samples captured
    while the database actually needed tuning (e.g. at a TDE throttle)
    carry signal; samples from idle windows mostly carry noise. The
    repository computes a quality score; TDE-gated pipelines only upload
    high-quality samples.
    """

    workload_id: str
    config: KnobConfiguration
    metrics: MetricsDelta
    timestamp_s: float = 0.0

    @property
    def objective(self) -> float:
        """The tuning objective (achieved throughput)."""
        return self.metrics.throughput


@dataclass(frozen=True, slots=True)
class TuningRequest:
    """A request for a new configuration recommendation.

    ``throttle_class`` / ``throttle_knobs`` carry the TDE's diagnosis: the
    §3 classification exists precisely so the tuner knows *which* knobs
    the workload is throttling on, and recommendations honour it (see
    :func:`boost_throttled_knobs`).
    """

    instance_id: str
    workload_id: str
    config: KnobConfiguration
    metrics: MetricsDelta
    throttle_class: str | None = None
    throttle_knobs: tuple[str, ...] = ()
    timestamp_s: float = 0.0


def boost_throttled_knobs(
    config: KnobConfiguration, request: TuningRequest
) -> KnobConfiguration:
    """Raise the throttle-implicated memory knobs geometrically.

    A memory throttle means the named working-area knobs are too small
    for the live queries (plans spill). Whatever the surrogate proposed,
    the recommendation must not leave those knobs below twice their
    current value — successive throttles then converge on the demand in a
    handful of doublings instead of re-firing forever.
    """
    if not request.throttle_knobs:
        return config
    updates: dict[str, float] = {}
    for name in request.throttle_knobs:
        if name not in config.catalog:
            continue
        knob = config.catalog.get(name)
        if knob.knob_class.value != "memory" or knob.restart_required:
            continue
        floor = knob.clamp(2.0 * request.config[name])
        if config[name] < floor:
            updates[name] = floor
    return config.with_values(updates) if updates else config


@dataclass(slots=True)
class Recommendation:
    """A recommended configuration for one service instance."""

    instance_id: str
    config: KnobConfiguration
    source: str
    expected_improvement: float = 0.0
    ranked_knobs: list[str] = field(default_factory=list)

    def restart_required_changes(
        self, current: KnobConfiguration
    ) -> list[str]:
        """Names of changed knobs that need a restart (non-tunable, §4)."""
        diff = current.diff(self.config)
        return [
            name
            for name in diff
            if self.config.catalog.get(name).restart_required
        ]


class Tuner(abc.ABC):
    """A tuner instance: absorbs samples, answers tuning requests."""

    name: str = "tuner"
    #: Observability seam: the landscape binds its recorder here so tuner
    #: implementations can emit trace events; the default no-op recorder
    #: keeps unbound tuners byte-identical.
    recorder: Recorder = NULL_RECORDER

    def bind_recorder(self, recorder: Recorder) -> None:
        """Attach the landscape's recorder (wrappers forward to inners)."""
        self.recorder = recorder

    def configure_surrogate(self, policy: "SurrogatePolicy") -> bool:
        """Enable surrogate candidate screening, if this tuner can.

        Returns ``True`` when the tuner adopted *policy* (candidate-set
        tuners like the BO pipeline), ``False`` when screening does not
        apply to its recommendation mechanism. The default declines:
        screening is strictly opt-in per implementation, so new tuner
        kinds stay byte-identical until they explicitly support it.
        """
        return False

    def configure_selection(self, policy: "SelectionPolicy") -> bool:
        """Enable dynamic per-workload knob selection, if this tuner can.

        Returns ``True`` when the tuner adopted *policy* and will tune
        inside a dynamic active subspace, ``False`` when selection does
        not apply. The default declines, same opt-in contract as
        :meth:`configure_surrogate`.
        """
        return False

    @abc.abstractmethod
    def observe(self, sample: TrainingSample) -> None:
        """Absorb one training sample (store it and learn from it)."""

    def learn(self, sample: TrainingSample) -> None:
        """Learn from a sample *without* storing it anywhere.

        The AutoDBaaS facade stores each uploaded sample in the shared
        repository exactly once and then calls ``learn`` on every tuner
        instance — repository-backed tuners (BO) read the store and need
        no per-instance copy, while policy-based tuners (RL) must see the
        stream to close their pending transitions. Default: no-op.
        """

    @abc.abstractmethod
    def recommend(self, request: TuningRequest) -> Recommendation:
        """Produce a new configuration for *request*."""

    @abc.abstractmethod
    def recommendation_cost_s(self) -> float:
        """Wall-clock cost of producing one recommendation.

        The §1 "recommendation-cost": OtterTune's GPR retrain takes
        100–120 s at production workload sizes, binding one deployment to
        3–4 serviced instances; RL tuners answer in near-constant time.
        The config director uses this for load accounting (Fig. 9).
        """
