"""Central workload data repository (§2's common data store).

Every tuner instance trains from one shared repository. A workload ``W``
is, per §2, "a set S of N matrices {X_0, X_1, ..., X_{N-1}} where X_{m,i,j}
is the value of a metric m observed when executing a user SQL workload on
database having configuration j and workload identifier i". The
repository stores :class:`~repro.tuners.base.TrainingSample` rows and can
materialise exactly those matrices, so the OtterTune-style mapping code
reads the same shape of data the paper describes.

Tuning agents on database VMs upload new samples here periodically; tuner
services on other IaaS'es fetch them — which in this reproduction is just
shared-object access plus an explicit ``sync``-style API for tests.

The matrices are maintained *incrementally*: each ``add`` vectorises only
the new sample into growing per-workload buffers, so materialising a
dataset after n adds costs O(n) total instead of O(n²) — the difference
between a fleet experiment that finishes and one that does not.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.dbsim.metrics import OTTERTUNE_METRICS
from repro.tuners.base import TrainingSample, config_to_vector

__all__ = ["WorkloadDataset", "WorkloadRepository"]


@dataclass
class WorkloadDataset:
    """All samples of one workload id, as matrices.

    ``configs`` is (n, d) in normalised knob space, ``metrics`` is (n, m)
    in the repository's metric ordering, ``objective`` is (n,) throughput.
    """

    workload_id: str
    configs: np.ndarray
    metrics: np.ndarray
    objective: np.ndarray

    @property
    def size(self) -> int:
        return len(self.objective)


class _GrowingMatrix:
    """Append-only (n, d) float matrix with doubling capacity.

    ``view()`` returns a length-``n`` slice of the backing buffer; appends
    either write past the slice or reallocate, so previously handed-out
    views stay valid snapshots either way.
    """

    __slots__ = ("_buf", "n", "_trim_cache", "_trim_cache_n")

    def __init__(self, width: int) -> None:
        self._buf = np.empty((16, width))
        self.n = 0
        self._trim_cache: np.ndarray | None = None
        self._trim_cache_n = -1

    def append(self, row: np.ndarray) -> None:
        if self.n == len(self._buf):
            grown = np.empty((2 * len(self._buf), self._buf.shape[1]))
            grown[: self.n] = self._buf
            self._buf = grown
        self._buf[self.n] = row
        self.n += 1

    def view(self) -> np.ndarray:
        return self._buf[: self.n]

    def __getstate__(self) -> tuple[np.ndarray, int]:
        # Pickle only the filled rows: the spare capacity is np.empty
        # garbage, and shipping it would make snapshot bytes (shard
        # worker setup, parity digests) depend on allocation history.
        # Rows are append-only, so the trimmed copy stays valid until the
        # row count moves — repeated pickles of an unchanged matrix (the
        # repository is snapshotted per shard at session setup) reuse it.
        if self._trim_cache_n != self.n:
            self._trim_cache = self._buf[: self.n].copy()
            self._trim_cache_n = self.n
        assert self._trim_cache is not None
        return (self._trim_cache, self.n)

    def __setstate__(self, state: tuple[np.ndarray, int]) -> None:
        self._buf, self.n = state
        # The unpickled buffer has no spare rows, so it doubles as its
        # own trimmed snapshot; the first append reallocates anyway.
        self._trim_cache = self._buf
        self._trim_cache_n = self.n


class _WorkloadArrays:
    """Incrementally maintained matrices plus top-samples for one workload."""

    __slots__ = ("configs", "metrics", "objective", "top")

    def __init__(self, config_width: int, metric_width: int) -> None:
        self.configs = _GrowingMatrix(config_width)
        self.metrics = _GrowingMatrix(metric_width)
        self.objective = _GrowingMatrix(1)
        #: Best-objective samples, ordered as a stable descending sort
        #: would order them (earlier-added first among equal objectives).
        self.top: list[TrainingSample] = []

    def append(
        self, sample: TrainingSample, metric_names: tuple[str, ...]
    ) -> None:
        self.configs.append(config_to_vector(sample.config))
        self.metrics.append(sample.metrics.as_vector(metric_names))
        self.objective.append(np.array([sample.objective]))
        objective = sample.objective
        idx = 0
        for idx, kept in enumerate(self.top):  # noqa: B007 - len <= capacity
            if kept.objective < objective:
                break
        else:
            idx = len(self.top)
        self.top.insert(idx, sample)
        del self.top[8:]


class WorkloadRepository:
    """Sample store shared by all tuner instances.

    Parameters
    ----------
    metric_names:
        Which metrics the repository captures per sample. Defaults to the
        OtterTune agent's set — which deliberately lacks planner
        estimates (see :mod:`repro.dbsim.metrics`).
    """

    #: Below this many samples (per the consumer's scale measure) derived
    #: state is recomputed on every version bump — bit-identical to a
    #: cacheless implementation. The default sits above every seeded
    #: figure bench's final sample count, so benches never amortise.
    exact_refresh_limit: int = 4000
    #: Past the exact limit, derived state may be served stale for up to
    #: this many version bumps before a refresh.
    stale_refresh_every: int = 16

    def __init__(self, metric_names: tuple[str, ...] = OTTERTUNE_METRICS) -> None:
        self.metric_names = metric_names
        self._samples: dict[str, list[TrainingSample]] = defaultdict(list)
        self._arrays: dict[str, _WorkloadArrays] = {}
        self._version = 0
        self._total = 0
        # Materialised-matrix caches, each tagged with the sample count it
        # was built from so a bumped version invalidates lazily.
        self._dataset_cache: dict[str, tuple[int, WorkloadDataset]] = {}
        self._metric_rows_cache: tuple[int, np.ndarray] | None = None
        # Scratch space for derived state shared *across* consumers (e.g.
        # every TDE's workload mapper): consumers namespace their keys and
        # tag entries with the version they were computed at.
        self.derived_cache: dict[Any, dict[Any, Any]] = {}

    @property
    def version(self) -> int:
        """Monotonic data version; bumped whenever a sample lands.

        Consumers (the workload mapper's decile bin edges, the OtterTune
        Lasso ranking) key their derived state on this counter so they
        recompute only when new samples actually arrive instead of on
        every tuning request.
        """
        return self._version

    def _append(self, sample: TrainingSample) -> None:
        self._samples[sample.workload_id].append(sample)
        arrays = self._arrays.get(sample.workload_id)
        if arrays is None:
            arrays = _WorkloadArrays(
                len(config_to_vector(sample.config)), len(self.metric_names)
            )
            self._arrays[sample.workload_id] = arrays
        arrays.append(sample, self.metric_names)

    def add(self, sample: TrainingSample) -> None:
        """Store one sample (bumps :attr:`version`)."""
        self._append(sample)
        self._version += 1
        self._total += 1

    def add_many(self, samples: list[TrainingSample]) -> None:
        """Store many samples."""
        for sample in samples:
            self.add(sample)

    def workload_ids(self) -> list[str]:
        """Known workload identifiers, insertion order."""
        return list(self._samples)

    def samples(self, workload_id: str) -> list[TrainingSample]:
        """Samples of one workload (empty list if unknown)."""
        return list(self._samples.get(workload_id, []))

    def sample_count(self, workload_id: str) -> int:
        """Number of stored samples for one workload."""
        return len(self._samples.get(workload_id, ()))

    def top_samples(self, workload_id: str, k: int = 3) -> list[TrainingSample]:
        """The *k* best-objective samples, stable-sorted descending.

        Equivalent to ``sorted(samples, key=lambda s: -s.objective)[:k]``
        but maintained incrementally, so fleet-scale consumers (the
        bgwriter detector reads baselines every window) do not re-sort a
        growing history each call.
        """
        arrays = self._arrays.get(workload_id)
        if arrays is None:
            return []
        if k <= len(arrays.top) or len(arrays.top) >= self.sample_count(workload_id):
            return arrays.top[:k]
        rows = self._samples[workload_id]
        return sorted(rows, key=lambda s: -s.objective)[:k]

    def total_samples(self) -> int:
        """Sample count across all workloads."""
        return self._total

    def fresh_enough(self, cached_version: int, scale: int) -> bool:
        """Whether derived state computed at *cached_version* may be served.

        *scale* is the consumer's own size measure (total samples, target
        workload samples, ...). Below :attr:`exact_refresh_limit` the
        answer is exact — only the current version counts. Beyond it, one
        more sample cannot move quantile edges or a capped Lasso path
        meaningfully, so entries may be served for up to
        :attr:`stale_refresh_every` bumps; this bounds derived-model
        refreshes at fleet scale, where dozens of instances share the
        repository and bump the version every window.
        """
        if cached_version == self._version:
            return True
        return (
            scale > self.exact_refresh_limit
            and self._version - cached_version < self.stale_refresh_every
        )

    def derived_entry(
        self,
        cache: dict[Any, tuple[int, Any]],
        key: Any,
        scale: int,
        compute: Callable[[], Any],
    ) -> Any:
        """Version-keyed get-or-compute over a derived-state cache.

        The canonical consumption pattern for :attr:`derived_cache` (and
        any private cache with the same shape): entries are ``(version,
        payload)`` pairs, served while :meth:`fresh_enough` holds for
        *scale* and recomputed — then tagged with the current version —
        otherwise. *compute* must be a pure function of the repository
        contents plus the key, so a cache hit returns exactly what
        recomputing would (the R009 exemption these caches rely on).
        """
        cached = cache.get(key)
        if cached is not None and self.fresh_enough(cached[0], scale):
            return cached[1]
        value = compute()
        cache[key] = (self._version, value)
        return value

    def dataset(self, workload_id: str) -> WorkloadDataset:
        """Materialise one workload's matrices (§2's X matrices).

        Matrices are views into incrementally grown buffers, rebuilt in
        O(new samples); callers must treat the arrays as read-only.
        """
        rows = self._samples.get(workload_id, [])
        if not rows:
            return WorkloadDataset(
                workload_id,
                configs=np.empty((0, 0)),
                metrics=np.empty((0, len(self.metric_names))),
                objective=np.empty(0),
            )
        cached = self._dataset_cache.get(workload_id)
        if cached is not None and cached[0] == len(rows):
            return cached[1]
        arrays = self._arrays[workload_id]
        dataset = WorkloadDataset(
            workload_id,
            arrays.configs.view(),
            arrays.metrics.view(),
            arrays.objective.view()[:, 0],
        )
        self._dataset_cache[workload_id] = (len(rows), dataset)
        return dataset

    def datasets(self) -> dict[str, WorkloadDataset]:
        """All workloads' matrices."""
        return {wid: self.dataset(wid) for wid in self._samples}

    def all_metric_rows(self) -> np.ndarray:
        """Every sample's metric vector stacked, for global binning.

        Cached until the next :attr:`version` bump; treat as read-only.
        The stack reuses the per-workload dataset caches, so a single new
        sample re-vectorises only its own workload's rows.
        """
        if self._metric_rows_cache is not None and (
            self._metric_rows_cache[0] == self._version
        ):
            return self._metric_rows_cache[1]
        parts = [
            self.dataset(wid).metrics
            for wid, samples in self._samples.items()
            if samples
        ]
        if not parts:
            return np.empty((0, len(self.metric_names)))
        stacked = np.vstack(parts)
        self._metric_rows_cache = (self._version, stacked)
        return stacked

    def quality_score(self, workload_id: str) -> float:
        """Mean per-metric coefficient of variation across the samples.

        §1's sample-quality notion made concrete: a workload whose
        captured metrics barely vary across configurations (idle
        production windows) scores near 0; benchmark executions that
        sweep configurations score high.
        """
        dataset = self.dataset(workload_id)
        if dataset.size < 2:
            return 0.0
        means = np.abs(dataset.metrics.mean(axis=0))
        stds = dataset.metrics.std(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            cv = np.where(means > 1e-12, stds / means, 0.0)
        return float(np.mean(cv))

    def sync_from(self, other: "WorkloadRepository") -> int:
        """Pull samples present in *other* but not here; return count.

        Stands in for tuning agents uploading new workloads which tuner
        services on different IaaS'es then fetch (§2).
        """
        pulled = 0
        for wid in other.workload_ids():
            have = len(self._samples.get(wid, []))
            rows = other.samples(wid)
            if len(rows) > have:
                for sample in rows[have:]:
                    self._append(sample)
                pulled += len(rows) - have
        if pulled:
            self._version += pulled
            self._total += pulled
        return pulled
