"""Central workload data repository (§2's common data store).

Every tuner instance trains from one shared repository. A workload ``W``
is, per §2, "a set S of N matrices {X_0, X_1, ..., X_{N-1}} where X_{m,i,j}
is the value of a metric m observed when executing a user SQL workload on
database having configuration j and workload identifier i". The
repository stores :class:`~repro.tuners.base.TrainingSample` rows and can
materialise exactly those matrices, so the OtterTune-style mapping code
reads the same shape of data the paper describes.

Tuning agents on database VMs upload new samples here periodically; tuner
services on other IaaS'es fetch them — which in this reproduction is just
shared-object access plus an explicit ``sync``-style API for tests.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.dbsim.metrics import OTTERTUNE_METRICS
from repro.tuners.base import TrainingSample, config_to_vector

__all__ = ["WorkloadDataset", "WorkloadRepository"]


@dataclass
class WorkloadDataset:
    """All samples of one workload id, as matrices.

    ``configs`` is (n, d) in normalised knob space, ``metrics`` is (n, m)
    in the repository's metric ordering, ``objective`` is (n,) throughput.
    """

    workload_id: str
    configs: np.ndarray
    metrics: np.ndarray
    objective: np.ndarray

    @property
    def size(self) -> int:
        return len(self.objective)


class WorkloadRepository:
    """Sample store shared by all tuner instances.

    Parameters
    ----------
    metric_names:
        Which metrics the repository captures per sample. Defaults to the
        OtterTune agent's set — which deliberately lacks planner
        estimates (see :mod:`repro.dbsim.metrics`).
    """

    def __init__(self, metric_names: tuple[str, ...] = OTTERTUNE_METRICS) -> None:
        self.metric_names = metric_names
        self._samples: dict[str, list[TrainingSample]] = defaultdict(list)

    def add(self, sample: TrainingSample) -> None:
        """Store one sample."""
        self._samples[sample.workload_id].append(sample)

    def add_many(self, samples: list[TrainingSample]) -> None:
        """Store many samples."""
        for sample in samples:
            self.add(sample)

    def workload_ids(self) -> list[str]:
        """Known workload identifiers, insertion order."""
        return list(self._samples)

    def samples(self, workload_id: str) -> list[TrainingSample]:
        """Samples of one workload (empty list if unknown)."""
        return list(self._samples.get(workload_id, []))

    def total_samples(self) -> int:
        """Sample count across all workloads."""
        return sum(len(rows) for rows in self._samples.values())

    def dataset(self, workload_id: str) -> WorkloadDataset:
        """Materialise one workload's matrices (§2's X matrices)."""
        rows = self._samples.get(workload_id, [])
        if not rows:
            return WorkloadDataset(
                workload_id,
                configs=np.empty((0, 0)),
                metrics=np.empty((0, len(self.metric_names))),
                objective=np.empty(0),
            )
        configs = np.vstack([config_to_vector(s.config) for s in rows])
        metrics = np.vstack(
            [s.metrics.as_vector(self.metric_names) for s in rows]
        )
        objective = np.array([s.objective for s in rows], dtype=float)
        return WorkloadDataset(workload_id, configs, metrics, objective)

    def datasets(self) -> dict[str, WorkloadDataset]:
        """All workloads' matrices."""
        return {wid: self.dataset(wid) for wid in self._samples}

    def all_metric_rows(self) -> np.ndarray:
        """Every sample's metric vector stacked, for global binning."""
        rows = [
            s.metrics.as_vector(self.metric_names)
            for samples in self._samples.values()
            for s in samples
        ]
        if not rows:
            return np.empty((0, len(self.metric_names)))
        return np.vstack(rows)

    def quality_score(self, workload_id: str) -> float:
        """Mean per-metric coefficient of variation across the samples.

        §1's sample-quality notion made concrete: a workload whose
        captured metrics barely vary across configurations (idle
        production windows) scores near 0; benchmark executions that
        sweep configurations score high.
        """
        dataset = self.dataset(workload_id)
        if dataset.size < 2:
            return 0.0
        means = np.abs(dataset.metrics.mean(axis=0))
        stds = dataset.metrics.std(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            cv = np.where(means > 1e-12, stds / means, 0.0)
        return float(np.mean(cv))

    def sync_from(self, other: "WorkloadRepository") -> int:
        """Pull samples present in *other* but not here; return count.

        Stands in for tuning agents uploading new workloads which tuner
        services on different IaaS'es then fetch (§2).
        """
        pulled = 0
        for wid in other.workload_ids():
            have = len(self._samples.get(wid, []))
            rows = other.samples(wid)
            if len(rows) > have:
                self._samples[wid].extend(rows[have:])
                pulled += len(rows) - have
        return pulled
