"""Gaussian process regression, from scratch on numpy.

The surrogate model of the BO-style tuner (OtterTune uses GPR over
observed (config, objective) pairs). Squared-exponential kernel with a
white-noise term, exact inference via Cholesky factorisation, and inputs/
outputs standardised internally so callers can feed raw normalised knob
vectors and raw throughput.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianProcessRegressor"]


class GaussianProcessRegressor:
    """Exact GPR with an RBF kernel and homoscedastic noise.

    Parameters
    ----------
    length_scale:
        RBF length scale in (standardised) input space.
    signal_variance:
        Kernel amplitude σ_f².
    noise_variance:
        Observation noise σ_n² (added to the diagonal).
    """

    def __init__(
        self,
        length_scale: float = 0.5,
        signal_variance: float = 1.0,
        noise_variance: float = 0.05,
    ) -> None:
        if length_scale <= 0 or signal_variance <= 0 or noise_variance <= 0:
            raise ValueError("GPR hyperparameters must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_train(self) -> int:
        """Number of training points."""
        return 0 if self._x is None else len(self._x)

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        np.maximum(sq, 0.0, out=sq)
        return self.signal_variance * np.exp(-0.5 * sq / self.length_scale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit on inputs *x* (n, d) and targets *y* (n,)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(x) != len(y):
            raise ValueError(f"x has {len(x)} rows but y has {len(y)}")
        if len(y) == 0:
            raise ValueError("cannot fit GPR on zero samples")
        y_mean = float(np.mean(y))
        y_scale = float(np.std(y)) or 1.0
        y_std = (y - y_mean) / y_scale
        k = self._kernel(x, x) + self.noise_variance * np.eye(len(x))
        # Factorise before touching self: a LinAlgError on refit must not
        # leave a half-updated model behind.
        chol = np.linalg.cholesky(k)
        self._chol = chol
        self._alpha = np.linalg.solve(chol.T, np.linalg.solve(chol, y_std))
        self._y_mean = y_mean
        self._y_std = y_scale
        self._x = x
        return self

    def predict(
        self, x_new: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optionally std) at *x_new* (m, d)."""
        if self._x is None or self._alpha is None or self._chol is None:
            raise RuntimeError("predict() before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self._kernel(x_new, self._x)
        mean = k_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = np.linalg.solve(self._chol, k_star.T)
        var = self.signal_variance - np.sum(v**2, axis=0)
        np.maximum(var, 1e-12, out=var)
        return mean, np.sqrt(var) * self._y_std

    def ucb(self, x_new: np.ndarray, kappa: float = 2.0) -> np.ndarray:
        """Upper confidence bound ``mean + kappa * std`` at *x_new*."""
        mean, std = self.predict(x_new, return_std=True)
        return mean + kappa * std
