"""Hybrid tuner — §2.1's "can even be a hybrid combination".

Combines the two families' strengths: the RL tuner answers most requests
(recommendations are a forward pass, so the instance scales), while every
``bo_every``-th request for a workload goes to the BO tuner, whose
experience-backed recommendation re-anchors the configuration. Both
members observe every sample, so the BO surrogate and the RL policy train
from the same stream.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dbsim.knobs import KnobCatalog
from repro.tuners.base import Recommendation, TrainingSample, Tuner, TuningRequest
from repro.tuners.cdbtune import CDBTuneTuner
from repro.tuners.knob_selection import SelectionPolicy
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.repository import WorkloadRepository
from repro.tuners.surrogate import SurrogatePolicy

__all__ = ["HybridTuner"]


class HybridTuner(Tuner):
    """RL-fast, BO-anchored hybrid.

    Parameters
    ----------
    catalog / repository / memory_limit_mb / seed:
        Forwarded to the member tuners.
    bo_every:
        Every n-th request per workload is answered by the BO member
        (n = 1 degenerates to pure BO, a large n to pure RL).
    """

    name = "hybrid"

    def __init__(
        self,
        catalog: KnobCatalog,
        repository: WorkloadRepository | None = None,
        bo_every: int = 4,
        memory_limit_mb: float | None = None,
        seed: int = 0,
    ) -> None:
        if bo_every < 1:
            raise ValueError("bo_every must be >= 1")
        self.catalog = catalog
        self.bo_every = bo_every
        self.repository = repository if repository is not None else WorkloadRepository()
        self.bo = OtterTuneTuner(
            catalog,
            self.repository,
            memory_limit_mb=memory_limit_mb,
            seed=seed,
        )
        self.rl = CDBTuneTuner(
            catalog, memory_limit_mb=memory_limit_mb, seed=seed + 1
        )
        self._request_counts: dict[str, int] = defaultdict(int)
        self.last_member: str | None = None

    def configure_surrogate(self, policy: SurrogatePolicy) -> bool:
        """Screen the BO member's candidates (the RL member has none)."""
        return self.bo.configure_surrogate(policy)

    def configure_selection(self, policy: SelectionPolicy) -> bool:
        """Offer dynamic knob selection to both members.

        Unlike surrogate screening, selection applies to both families —
        the BO member projects its candidate matrix and the RL member its
        action vector — and each keeps its own selector (the members see
        different sample streams, so sharing one would skew the moments).
        """
        bo_adopted = self.bo.configure_selection(policy)
        rl_adopted = self.rl.configure_selection(policy)
        return bo_adopted or rl_adopted

    def observe(self, sample: TrainingSample) -> None:
        """Store once (via the BO member's repository) and learn."""
        self.bo.observe(sample)
        self.rl.learn(sample)

    def learn(self, sample: TrainingSample) -> None:
        """Stream-learn without storing (the facade stores separately)."""
        self.rl.learn(sample)

    def recommend(self, request: TuningRequest) -> Recommendation:
        """Route to BO every n-th request per workload, RL otherwise."""
        count = self._request_counts[request.workload_id]
        self._request_counts[request.workload_id] = count + 1
        member: Tuner = self.bo if count % self.bo_every == 0 else self.rl
        self.last_member = member.name
        recommendation = member.recommend(request)
        recommendation.source = f"{self.name}/{member.name}"
        return recommendation

    def recommendation_cost_s(self) -> float:
        """Amortised cost: one BO retrain per ``bo_every`` requests."""
        return (
            self.bo.recommendation_cost_s()
            + (self.bo_every - 1) * self.rl.recommendation_cost_s()
        ) / self.bo_every
