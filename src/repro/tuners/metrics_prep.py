"""Metric pruning: factor analysis + k-means, after Van Aken et al. (2017).

Database metric sets are redundant (blks_hit tracks blks_read tracks
disk_iops...). OtterTune prunes them by embedding each *metric* via factor
analysis of the samples×metrics matrix and clustering the metric
embeddings with k-means, keeping the metric closest to each centroid.
We implement the factor embedding via SVD (principal factors) and a small
deterministic k-means, both on numpy only.
"""

from __future__ import annotations

import numpy as np

__all__ = ["factor_embedding", "kmeans", "prune_metrics"]


def factor_embedding(metric_matrix: np.ndarray, n_factors: int = 5) -> np.ndarray:
    """Embed each metric (column) into factor space.

    Columns are standardised, the SVD of the samples×metrics matrix is
    taken, and each metric's loading on the top *n_factors* right singular
    vectors (scaled by singular values) is its embedding — the classic
    principal-factor approximation.
    """
    x = np.asarray(metric_matrix, dtype=float)
    if x.ndim != 2:
        raise ValueError("metric_matrix must be 2-D (samples × metrics)")
    n, m = x.shape
    if n < 2:
        raise ValueError("need at least 2 samples for factor analysis")
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std = np.where(std > 1e-12, std, 1.0)
    xs = (x - mean) / std
    _, s, vt = np.linalg.svd(xs, full_matrices=False)
    k = min(n_factors, len(s))
    # (metrics × factors): each metric's loadings scaled by √eigenvalue.
    return (vt[:k].T * (s[:k] / np.sqrt(max(n - 1, 1))))


def kmeans(
    points: np.ndarray,
    k: int,
    n_iter: int = 50,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means; returns (labels, centroids).

    Deterministic: initial centroids are the k points furthest apart
    under greedy max-min selection starting from the point nearest the
    data mean (no RNG involvement unless ties), so pruning is stable
    across runs.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    if k <= 0 or k > n:
        raise ValueError(f"k={k} out of range for {n} points")
    del seed  # deterministic init; parameter kept for API stability
    # Greedy max-min init.
    start = int(np.argmin(np.linalg.norm(points - points.mean(axis=0), axis=1)))
    centroid_idx = [start]
    for _ in range(k - 1):
        dists = np.min(
            np.stack(
                [np.linalg.norm(points - points[i], axis=1) for i in centroid_idx]
            ),
            axis=0,
        )
        centroid_idx.append(int(np.argmax(dists)))
    centroids = points[centroid_idx].copy()

    labels = np.zeros(n, dtype=int)
    for _ in range(n_iter):
        dists = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        new_labels = np.argmin(dists, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            mask = labels == j
            if mask.any():
                centroids[j] = points[mask].mean(axis=0)
    return labels, centroids


def prune_metrics(
    metric_matrix: np.ndarray,
    metric_names: tuple[str, ...],
    n_clusters: int = 8,
    n_factors: int = 5,
) -> list[str]:
    """Representative metric names after factor-analysis + k-means pruning.

    Constant metrics (zero variance across samples) are dropped first —
    they carry no signal and break standardisation. One metric per
    cluster survives: the one nearest its centroid.
    """
    x = np.asarray(metric_matrix, dtype=float)
    if x.shape[1] != len(metric_names):
        raise ValueError("metric_names length must match matrix columns")
    keep = x.std(axis=0) > 1e-12
    live_names = [n for n, flag in zip(metric_names, keep) if flag]
    if not live_names:
        return []
    embedding = factor_embedding(x[:, keep], n_factors=n_factors)
    k = min(n_clusters, len(live_names))
    labels, centroids = kmeans(embedding, k)
    chosen: list[str] = []
    for j in range(k):
        members = np.where(labels == j)[0]
        if len(members) == 0:
            continue
        dists = np.linalg.norm(embedding[members] - centroids[j], axis=1)
        chosen.append(live_names[int(members[np.argmin(dists)])])
    return sorted(chosen, key=live_names.index)
