"""JSON persistence for the shared repositories.

§2 stores tuner workloads in "a common central data repository" that
survives tuner restarts and is shared across IaaS'es; operationally that
means the sample store and the config history must serialise. Both
round-trip through plain JSON here — no pickle, so files are inspectable
and safe to exchange.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.director.config_repository import ConfigRepository
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.knobs import catalog_for
from repro.dbsim.metrics import MetricsDelta
from repro.tuners.base import TrainingSample
from repro.tuners.repository import WorkloadRepository

__all__ = [
    "save_repository",
    "load_repository",
    "save_config_history",
    "load_config_history",
]

_FORMAT_VERSION = 1


def _sample_to_dict(sample: TrainingSample) -> dict:
    return {
        "workload_id": sample.workload_id,
        "flavor": sample.config.catalog.flavor,
        "config": sample.config.as_dict(),
        "metrics": dict(sample.metrics.values),
        "timestamp_s": sample.timestamp_s,
    }


def _sample_from_dict(payload: dict) -> TrainingSample:
    catalog = catalog_for(payload["flavor"])
    return TrainingSample(
        workload_id=payload["workload_id"],
        config=KnobConfiguration(catalog, payload["config"]),
        metrics=MetricsDelta(dict(payload["metrics"])),
        timestamp_s=float(payload.get("timestamp_s", 0.0)),
    )


def save_repository(
    repository: WorkloadRepository, path: str | pathlib.Path
) -> int:
    """Write *repository* to *path* as JSON; returns the sample count."""
    samples = [
        _sample_to_dict(sample)
        for wid in repository.workload_ids()
        for sample in repository.samples(wid)
    ]
    payload = {
        "format_version": _FORMAT_VERSION,
        "metric_names": list(repository.metric_names),
        "samples": samples,
    }
    pathlib.Path(path).write_text(json.dumps(payload))
    return len(samples)


def load_repository(path: str | pathlib.Path) -> WorkloadRepository:
    """Read a repository previously written by :func:`save_repository`."""
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported repository format version {version!r}"
        )
    repository = WorkloadRepository(
        metric_names=tuple(payload["metric_names"])
    )
    for entry in payload["samples"]:
        repository.add(_sample_from_dict(entry))
    return repository


def save_config_history(
    configs: ConfigRepository,
    instance_ids: list[str],
    path: str | pathlib.Path,
) -> int:
    """Write the config history of *instance_ids* to *path*."""
    versions = []
    for instance_id in instance_ids:
        for version in configs.history(instance_id):
            versions.append(
                {
                    "instance_id": version.instance_id,
                    "flavor": version.config.catalog.flavor,
                    "config": version.config.as_dict(),
                    "source": version.source,
                    "timestamp_s": version.timestamp_s,
                }
            )
    payload = {"format_version": _FORMAT_VERSION, "versions": versions}
    pathlib.Path(path).write_text(json.dumps(payload))
    return len(versions)


def load_config_history(path: str | pathlib.Path) -> ConfigRepository:
    """Read a config history written by :func:`save_config_history`."""
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported config-history format version {version!r}")
    configs = ConfigRepository()
    for entry in payload["versions"]:
        catalog = catalog_for(entry["flavor"])
        configs.store(
            entry["instance_id"],
            KnobConfiguration(catalog, entry["config"]),
            entry["source"],
            float(entry["timestamp_s"]),
        )
    return configs
