"""Tiny neural-network toolkit (numpy-only) for the RL-style tuner.

A fully-connected MLP with tanh hidden layers, choice of output
activation, manual backprop and an Adam optimiser — everything the
DDPG-lite tuner in :mod:`repro.tuners.cdbtune` needs, with deterministic
initialisation from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng

__all__ = ["MLP", "Adam", "soft_update"]


class MLP:
    """Feed-forward network: tanh hidden layers, configurable output.

    Parameters
    ----------
    layer_sizes:
        E.g. ``[state_dim, 64, 64, action_dim]``.
    output:
        ``"linear"``, ``"sigmoid"`` or ``"tanh"``.
    seed:
        Initialisation seed (Xavier-uniform).
    """

    def __init__(
        self,
        layer_sizes: list[int],
        output: str = "linear",
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if output not in ("linear", "sigmoid", "tanh"):
            raise ValueError(f"unknown output activation {output!r}")
        rng = make_rng(seed)
        self.output = output
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._cache: list[np.ndarray] = []

    def parameters(self) -> list[np.ndarray]:
        """Flat list of parameter arrays (weights then biases per layer)."""
        out: list[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            out.extend((w, b))
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches activations for :meth:`backward`."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._cache = [x]
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            if i < last:
                h = np.tanh(z)
            elif self.output == "sigmoid":
                h = 1.0 / (1.0 + np.exp(-z))
            elif self.output == "tanh":
                h = np.tanh(z)
            else:
                h = z
            self._cache.append(h)
        return h

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Backprop *grad_out* (dL/dy) through the cached forward pass.

        Returns ``(param_grads, grad_input)`` where ``param_grads`` aligns
        with :meth:`parameters`.
        """
        if not self._cache:
            raise RuntimeError("backward() before forward()")
        grads_w: list[np.ndarray] = [np.empty(0)] * len(self.weights)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self.biases)
        delta = np.atleast_2d(np.asarray(grad_out, dtype=float))
        last = len(self.weights) - 1
        for i in range(last, -1, -1):
            activation = self._cache[i + 1]
            if i == last:
                if self.output == "sigmoid":
                    delta = delta * activation * (1.0 - activation)
                elif self.output == "tanh":
                    delta = delta * (1.0 - activation**2)
            else:
                delta = delta * (1.0 - activation**2)
            grads_w[i] = self._cache[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            delta = delta @ self.weights[i].T
        param_grads: list[np.ndarray] = []
        for gw, gb in zip(grads_w, grads_b):
            param_grads.extend((gw, gb))
        return param_grads, delta

    def copy_from(self, other: "MLP") -> None:
        """Hard-copy parameters from *other* (target-network init)."""
        for mine, theirs in zip(self.parameters(), other.parameters()):
            mine[...] = theirs


class Adam:
    """Adam optimiser over a fixed list of parameter arrays."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.parameters = parameters
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one update from *grads* (aligned with parameters)."""
        if len(grads) != len(self.parameters):
            raise ValueError("gradient list does not match parameters")
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.parameters, grads, self._m, self._v):
            m[...] = self.beta1 * m + (1.0 - self.beta1) * g
            v[...] = self.beta2 * v + (1.0 - self.beta2) * g**2
            p -= self.lr * (m / correction1) / (np.sqrt(v / correction2) + self.eps)


def soft_update(target: MLP, source: MLP, tau: float = 0.005) -> None:
    """Polyak-average *source* into *target* (DDPG target networks)."""
    for t, s in zip(target.parameters(), source.parameters()):
        t[...] = (1.0 - tau) * t + tau * s
