"""Workload mapping: find the most similar historical workload.

OtterTune leverages past experience by *mapping* the live target workload
onto the most similar workload in the repository, then reusing that
workload's samples to warm its surrogate. The mapping (Van Aken et al.
§5.2) bins every metric into deciles computed over the whole repository
(making scales comparable), then scores each candidate workload by the
Euclidean distance between binned metric vectors at matching
configurations. §3.2's background-writer detector reuses the same mapping
to pick its disk-latency baseline workload, and §3.2 notes mapping quality
improves as the target accumulates samples — which falls out of this
implementation naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.tuners.repository import WorkloadDataset, WorkloadRepository

__all__ = ["MappingResult", "WorkloadMapper"]

@dataclass(frozen=True)
class MappingResult:
    """Outcome of mapping a target workload onto the repository."""

    target_id: str
    best_workload_id: str | None
    scores: dict[str, float]

    @property
    def mapped(self) -> bool:
        return self.best_workload_id is not None


class WorkloadMapper:
    """Decile-binned Euclidean workload mapping over a repository."""

    def __init__(self, repository: WorkloadRepository, n_bins: int = 10) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.repository = repository
        self.n_bins = n_bins
        # Derived state keyed on the repository's version counter: decile
        # edges and mapping results are pure functions of the repository
        # contents, so they stay valid until the next sample lands. The
        # cache lives *on the repository* so every mapper over the same
        # store (each TDE owns one) shares one set of results.
        # Keys: "edges" plus ("map", target, exclude) tuples; values are
        # (repository version, payload) pairs.
        #
        # R009-safe despite being a mutation of a received repository:
        # inside a shard the repository is that worker's pickled copy,
        # and entries are version-keyed pure functions of repository
        # contents — cache state can never change an output.
        cache = repository.derived_cache.setdefault(  # repro: noqa[R009]
            ("mapper", n_bins), {}
        )
        self._cache: dict[Any, tuple[int, Any]] = cache

    def _bin_edges(self) -> np.ndarray | None:
        edges: np.ndarray | None = self.repository.derived_entry(
            self._cache,
            "edges",
            self.repository.total_samples(),
            self._compute_edges,
        )
        return edges

    def _compute_edges(self) -> np.ndarray | None:
        rows = self.repository.all_metric_rows()
        if len(rows) < 2:
            return None
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        return np.quantile(rows, quantiles, axis=0)  # (n_bins-1, m)

    def _binned(self, metrics: np.ndarray, edges: np.ndarray) -> np.ndarray:
        out = np.zeros_like(metrics)
        for col in range(metrics.shape[1]):
            out[:, col] = np.searchsorted(edges[:, col], metrics[:, col])
        return out

    def map_workload(
        self, target_id: str, exclude_target: bool = True
    ) -> MappingResult:
        """Map *target_id* onto the best-matching repository workload.

        For every target sample the candidate's nearest-config sample is
        found (Euclidean in normalised knob space) and the squared
        distance between their decile-binned metric vectors accumulates
        into the candidate's score; lowest mean score wins. Candidates
        without samples — or the target itself, unless
        ``exclude_target=False`` — are skipped.
        """
        result: MappingResult = self.repository.derived_entry(
            self._cache,
            ("map", target_id, exclude_target),
            self.repository.sample_count(target_id),
            lambda: self._map_workload(target_id, exclude_target),
        )
        return result

    def _capped(self, dataset: WorkloadDataset) -> WorkloadDataset:
        """The dataset, windowed to its most recent samples at scale.

        Beyond the repository's :attr:`exact_refresh_limit` the mapping
        scores only the newest window — keeping the nearest-config
        distance matrix bounded (it is quadratic in the sample count)
        without touching the exact behaviour at bench scales.
        """
        limit = self.repository.exact_refresh_limit
        if dataset.size <= limit:
            return dataset
        return WorkloadDataset(
            dataset.workload_id,
            dataset.configs[-limit:],
            dataset.metrics[-limit:],
            dataset.objective[-limit:],
        )

    def _map_workload(
        self, target_id: str, exclude_target: bool
    ) -> MappingResult:
        target = self._capped(self.repository.dataset(target_id))
        if target.size == 0:
            return MappingResult(target_id, None, {})
        edges = self._bin_edges()
        if edges is None:
            return MappingResult(target_id, None, {})
        target_binned = self._binned(target.metrics, edges)

        scores: dict[str, float] = {}
        for wid in self.repository.workload_ids():
            if exclude_target and wid == target_id:
                continue
            candidate = self._capped(self.repository.dataset(wid))
            if candidate.size == 0:
                continue
            scores[wid] = self._score(
                target, target_binned, candidate, edges
            )
        if not scores:
            return MappingResult(target_id, None, {})
        best = min(scores, key=scores.get)
        return MappingResult(target_id, best, scores)

    def _score(
        self,
        target: WorkloadDataset,
        target_binned: np.ndarray,
        candidate: WorkloadDataset,
        edges: np.ndarray,
    ) -> float:
        candidate_binned = self._binned(candidate.metrics, edges)
        # nearest candidate config per target sample
        diffs = (
            np.sum(target.configs**2, axis=1)[:, None]
            + np.sum(candidate.configs**2, axis=1)[None, :]
            - 2.0 * target.configs @ candidate.configs.T
        )
        nearest = np.argmin(diffs, axis=1)
        deltas = target_binned - candidate_binned[nearest]
        return float(np.mean(np.sum(deltas**2, axis=1)))
