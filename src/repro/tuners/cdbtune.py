"""The RL-style tuner (CDBTune-like DDPG, Zhang et al. 2019).

Deep deterministic policy gradient over the knob space: the *state* is
the normalised delta-metric vector, the *action* is a configuration in
normalised knob space, the *reward* is CDBTune's throughput-delta score
against both the initial and the previous observation. Actor and critic
are numpy MLPs with target networks and a replay buffer.

Properties the paper relies on:

- recommendations are near-constant time (no retraining spike), so RL
  tuners scale to many instances (§1);
- the tuner barely reuses other workloads' experience — it learns its own
  policy per deployment — so corruption from low-quality production
  samples hits "directly from the first hooked database" (Fig. 13).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.common.rng import make_rng
from repro.dbsim.knobs import KnobCatalog, KnobClass
from repro.dbsim.metrics import OTTERTUNE_METRICS, MetricsDelta
from repro.tuners.base import (
    Recommendation,
    TrainingSample,
    Tuner,
    TuningRequest,
    boost_throttled_knobs,
    config_to_vector,
    vector_to_config,
)
from repro.tuners.knob_selection import (
    KnobSelector,
    SelectionPolicy,
    repair_config_frozen,
)
from repro.tuners.neural import MLP, Adam, soft_update

if TYPE_CHECKING:
    from repro.tuners.surrogate import SurrogatePolicy

__all__ = ["CDBTuneTuner", "cdbtune_reward"]


def cdbtune_reward(tps: float, tps_initial: float, tps_previous: float) -> float:
    """CDBTune's reward from throughput vs the initial and previous steps.

    ``r > 0`` iff throughput beat the initial observation, scaled by how
    it moved relative to the previous step (Zhang et al. §4.2, throughput
    term only — our objective is single-metric).
    """
    t0 = max(tps_initial, 1e-9)
    tp = max(tps_previous, 1e-9)
    delta_0 = (tps - t0) / t0
    delta_prev = (tps - tp) / tp
    if delta_0 > 0:
        return ((1.0 + delta_0) ** 2 - 1.0) * abs(1.0 + delta_prev)
    return -((1.0 - delta_0) ** 2 - 1.0) * abs(1.0 - delta_prev)


@dataclass
class _Transition:
    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray


class _Normaliser:
    """Running mean/std feature normaliser."""

    def __init__(self, dim: int) -> None:
        self.count = 0
        self.mean = np.zeros(dim)
        self.m2 = np.ones(dim)

    def update(self, x: np.ndarray) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    def normalise(self, x: np.ndarray) -> np.ndarray:
        std = np.sqrt(self.m2 / max(self.count, 1))
        std = np.where(std > 1e-9, std, 1.0)
        return np.clip((x - self.mean) / std, -5.0, 5.0)


class CDBTuneTuner(Tuner):
    """DDPG-lite tuner.

    Parameters
    ----------
    catalog:
        Knob catalog to tune.
    metric_names:
        Metrics forming the state vector.
    hidden:
        Hidden-layer width for actor and critic.
    exploration_sigma / exploration_decay:
        Gaussian action-noise schedule (try-and-error behaviour).
    """

    name = "cdbtune"

    def __init__(
        self,
        catalog: KnobCatalog,
        metric_names: tuple[str, ...] = OTTERTUNE_METRICS,
        hidden: int = 64,
        gamma: float = 0.9,
        batch_size: int = 32,
        replay_capacity: int = 4096,
        exploration_sigma: float = 0.25,
        exploration_decay: float = 0.995,
        train_steps_per_observe: int = 4,
        memory_limit_mb: float | None = None,
        active_connections: int = 20,
        seed: int | np.random.Generator | None = 0,
        selection: SelectionPolicy | None = None,
    ) -> None:
        self.catalog = catalog
        self.metric_names = metric_names
        self.memory_limit_mb = memory_limit_mb
        self.active_connections = active_connections
        self.gamma = gamma
        self.batch_size = batch_size
        self.exploration_sigma = exploration_sigma
        self.exploration_decay = exploration_decay
        self.train_steps_per_observe = train_steps_per_observe
        self._rng = make_rng(seed)
        state_dim = len(metric_names)
        action_dim = len(catalog)
        self.actor = MLP([state_dim, hidden, hidden, action_dim], "sigmoid", self._rng)
        self.critic = MLP([state_dim + action_dim, hidden, hidden, 1], "linear", self._rng)
        self.target_actor = MLP([state_dim, hidden, hidden, action_dim], "sigmoid", 1)
        self.target_critic = MLP([state_dim + action_dim, hidden, hidden, 1], "linear", 1)
        self.target_actor.copy_from(self.actor)
        self.target_critic.copy_from(self.critic)
        self._actor_opt = Adam(self.actor.parameters(), lr=1e-3)
        self._critic_opt = Adam(self.critic.parameters(), lr=1e-3)
        self._replay: deque[_Transition] = deque(maxlen=replay_capacity)
        self._normaliser = _Normaliser(state_dim)
        # Per-workload episode bookkeeping.
        self._initial_tps: dict[str, float] = {}
        self._previous_tps: dict[str, float] = {}
        self._pending: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self.episode_rewards: list[float] = []
        self._selector = KnobSelector(selection, catalog) if selection else None

    # -- Tuner interface ---------------------------------------------------------

    def state_from_metrics(self, metrics: MetricsDelta) -> np.ndarray:
        """Normalised state vector from a metrics delta."""
        raw = metrics.as_vector(self.metric_names)
        self._normaliser.update(raw)
        return self._normaliser.normalise(raw)

    def observe(self, sample: TrainingSample) -> None:
        """Alias of :meth:`learn` — the RL tuner keeps no sample store."""
        self.learn(sample)

    def configure_surrogate(self, policy: "SurrogatePolicy") -> bool:
        """Decline: DDPG emits one action, there is no candidate set.

        Surrogate screening prefilters a *candidate matrix* before an
        expensive exact scorer. The RL tuner's recommendation is a single
        actor forward pass — already near-constant time with nothing to
        shortlist — so the policy does not apply here and the hybrid
        tuner routes it to its BO member instead.
        """
        return False

    @property
    def knob_selector(self) -> KnobSelector | None:
        """The active selector, for stats inspection (``None`` when off)."""
        return self._selector

    def configure_selection(self, policy: SelectionPolicy) -> bool:
        """Enable dynamic knob selection under *policy*.

        Unlike surrogate screening, selection does apply to DDPG: the
        actor stays full-width, but its action is projected onto the
        active subspace before it becomes a configuration — inactive
        coordinates snap back to the incumbent's, shrinking the space
        the exploration noise actually perturbs.
        """
        self._selector = KnobSelector(policy, self.catalog)
        return True

    def learn(self, sample: TrainingSample) -> None:
        """Close the pending transition for the sample's workload and learn."""
        wid = sample.workload_id
        if self._selector is not None:
            # The RL tuner has no shared repository; the selector keeps
            # its own arrival-ordered moments off the sample stream.
            self._selector.ingest(
                wid, config_to_vector(sample.config), sample.objective
            )
        state = self.state_from_metrics(sample.metrics)
        tps = sample.objective
        if wid not in self._initial_tps:
            self._initial_tps[wid] = max(tps, 1e-9)
            self._previous_tps[wid] = max(tps, 1e-9)
        pending = self._pending.pop(wid, None)
        if pending is not None:
            prev_state, action = pending
            reward = cdbtune_reward(
                tps, self._initial_tps[wid], self._previous_tps[wid]
            )
            self.episode_rewards.append(reward)
            self._replay.append(_Transition(prev_state, action, reward, state))
            for _ in range(self.train_steps_per_observe):
                self._train_step()
        self._previous_tps[wid] = max(tps, 1e-9)

    def recommend(self, request: TuningRequest) -> Recommendation:
        """Actor output plus exploration noise, registered as pending."""
        state = self.state_from_metrics(request.metrics)
        action = self.actor(state[None, :])[0]
        noise = self._rng.normal(0.0, self.exploration_sigma, size=action.shape)
        self.exploration_sigma *= self.exploration_decay
        action = np.clip(action + noise, 0.0, 1.0)
        sub = None
        if self._selector is not None:
            if request.throttle_class == KnobClass.ASYNC_PLANNER.value:
                # Automaton-owned knobs: record the throttle as an
                # importance signal, never tune them from here.
                for knob_name in request.throttle_knobs:
                    self._selector.note_automaton_signal(knob_name)
            before = self._selector.counters()
            sub = self._selector.subspace_for(request.workload_id)
            if sub is not None:
                self._selector.record_deltas(self.recorder, before)
        if sub is None:
            self._pending[request.workload_id] = (state, action)
            config = boost_throttled_knobs(
                vector_to_config(action, self.catalog), request
            )
            if self.memory_limit_mb is not None:
                config = config.fitted_to_budget(
                    self.memory_limit_mb, self.active_connections
                )
        else:
            assert self._selector is not None
            # Project the action onto the active subspace: inactive
            # coordinates snap back to the incumbent's, and the
            # configuration carries the incumbent's float values for
            # them bit-for-bit (no unit-vector round trip).
            action = np.where(
                self._selector.mask(sub),
                action,
                config_to_vector(request.config),
            )
            self._pending[request.workload_id] = (state, action)
            full = vector_to_config(action, self.catalog)
            names = self.catalog.names()
            config = request.config.with_values(
                {names[i]: full[names[i]] for i in sub.active}
            )
            config = boost_throttled_knobs(config, request)
            if self.memory_limit_mb is not None:
                config = repair_config_frozen(
                    config,
                    request.config,
                    self.memory_limit_mb,
                    self.active_connections,
                )
            self.recorder.event(
                "tuner.subspace",
                instance=request.instance_id,
                source=self.name,
                workload=request.workload_id,
                active=len(sub.active),
                total=len(self.catalog),
                version=sub.version,
                updated=sub.updated,
                automaton_signals=sum(
                    self._selector.automaton_signals.values()
                ),
            )
        current = config_to_vector(request.config)
        names = self.catalog.names()
        moved = np.argsort(-np.abs(action - current))
        return Recommendation(
            instance_id=request.instance_id,
            config=config,
            source=self.name,
            expected_improvement=0.0,
            ranked_knobs=[names[i] for i in moved],
        )

    def recommendation_cost_s(self) -> float:
        """RL recommendations are a forward pass: effectively constant."""
        return 1.0

    # -- DDPG internals ------------------------------------------------------------

    def _train_step(self) -> None:
        if len(self._replay) < self.batch_size:
            return
        idx = self._rng.choice(len(self._replay), size=self.batch_size, replace=False)
        batch = [self._replay[i] for i in idx]
        states = np.vstack([t.state for t in batch])
        actions = np.vstack([t.action for t in batch])
        rewards = np.array([t.reward for t in batch])[:, None]
        next_states = np.vstack([t.next_state for t in batch])

        # Critic: TD target from target networks.
        next_actions = self.target_actor(next_states)
        next_q = self.target_critic(np.hstack([next_states, next_actions]))
        target_q = rewards + self.gamma * next_q
        q = self.critic(np.hstack([states, actions]))
        grad_q = (q - target_q) / self.batch_size
        critic_grads, _ = self.critic.backward(grad_q)
        self._critic_opt.step(critic_grads)

        # Actor: ascend dQ/da through the critic.
        policy_actions = self.actor(states)
        q_policy = self.critic(np.hstack([states, policy_actions]))
        ones = np.ones_like(q_policy) / self.batch_size
        _, grad_input = self.critic.backward(-ones)  # maximise Q
        grad_actions = grad_input[:, states.shape[1]:]
        self.actor(states)  # refresh actor cache after critic pass
        actor_grads, _ = self.actor.backward(grad_actions)
        self._actor_opt.step(actor_grads)
        del q_policy  # Q values only needed for the gradient path

        soft_update(self.target_actor, self.actor)
        soft_update(self.target_critic, self.critic)
