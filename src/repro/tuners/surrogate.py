"""Surrogate-assisted candidate screening for the BO-style tuner.

Exact GP-UCB scoring is what makes a warm ``recommend()`` cost
milliseconds: the posterior std needs a LAPACK solve against every
candidate's kernel column, and the §4 budget repair round-trips the
whole candidate matrix through knob space first. Related work (E2ETune's
``surrogate_model/``, Gunasekaran et al. 2023) screens candidates with a
cheap learned surrogate before touching the expensive optimizer; this
module does the same for the OtterTune pipeline:

1. On every repository version bump the screen trains a
   :class:`CoresetGPR` per workload cluster: a GP with the *same* kernel
   hyperparameters as the exact scorer, fitted on a small k-center
   coreset of the cluster's (knob vector → objective) training samples,
   with the posterior-variance solve replaced by a precomputed inverse
   so batch scoring is two small matmuls and no per-call LAPACK.
2. At recommendation time the surrogate UCB-scores the *raw* candidate
   set (before budget repair — the expensive half of candidate
   generation) and keeps only the top ``shortlist_size``. Budget repair
   and exact GP-UCB then run on the shortlist alone.

Why a coreset GP and not distilled trees or random features: the
acquisition surface is a sum of kernel bumps around training points, and
matching that inductive bias is what preserves the exact scorer's
*argmax*. Measured on seeded fixtures (see ``docs/performance.md``), a
16-point coreset retains the exact argmax in a 16-wide shortlist ≥ 90%
of the time at ~0.1 ms retrain; gradient-boosted trees and
random-Fourier ridge regression plateaued at 40–75% retention with
200–1200 ms retrains — unusable when a shared fleet repository bumps the
version every window.

Everything is deterministic, with *no* randomness at all: the k-center
selection starts at the best-objective sample and breaks ties by lowest
index, so the fitted surrogate — and therefore every prediction and
shortlist — is a pure function of (policy, training set). Models are
version-keyed on the repository row counter exactly like the Lasso/GPR
caches: a stale model retrains on the next shortlist request, never
mid-version.

The screen is **off by default** everywhere. With no
:class:`SurrogatePolicy` wired the tuner never trains a model, draws no
extra randomness, and every figure output stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tuners.gpr import GaussianProcessRegressor

__all__ = [
    "SURROGATE_METRIC_FAMILIES",
    "SurrogatePolicy",
    "CoresetGPR",
    "SurrogateScreen",
    "kcenter_coreset",
]

#: The surrogate tier's metric family names and help strings, exported
#: through the Prometheus renderer and described up front on trace
#: registries (like the safety governor's families) so
#: ``repro trace --metrics`` surfaces them even before a sample lands.
SURROGATE_METRIC_FAMILIES: dict[str, str] = {
    "repro_surrogate_hits_total": (
        "Shortlist requests served by a cached (current-version) "
        "surrogate model."
    ),
    "repro_surrogate_retrains_total": (
        "Surrogate models refitted after a repository version bump."
    ),
    "repro_surrogate_shortlists_total": (
        "Candidate sets prefiltered to a surrogate shortlist before "
        "exact GP-UCB scoring."
    ),
}


@dataclass(frozen=True)
class SurrogatePolicy:
    """Tunable thresholds of the surrogate screening tier.

    Parameters
    ----------
    shortlist_size:
        Candidates surviving the screen; §4 budget repair and exact
        GP-UCB run only on these. 16 retains the exact argmax ≥ 90% of
        the time on seeded fixtures (``tests/unit/test_surrogate.py``)
        while cutting warm recommend well past 3x
        (``benchmarks/test_perf_recommend.py``).
    max_coreset:
        Upper bound on the surrogate's k-center training subset. The
        screen's scoring cost is linear in this (kernel columns) plus
        the two small matmuls; 16 matches the measured retention/speed
        knee.
    min_train_samples:
        Below this many training samples the screen abstains and the
        caller scores the full candidate set — the exact GPR is cheap
        there anyway, and the coreset would be most of the data.
    """

    shortlist_size: int = 16
    max_coreset: int = 16
    min_train_samples: int = 20

    def __post_init__(self) -> None:
        if self.shortlist_size < 1:
            raise ValueError("shortlist_size must be >= 1")
        if self.max_coreset < 2:
            raise ValueError("max_coreset must be >= 2")
        if self.min_train_samples < 4:
            raise ValueError("min_train_samples must be >= 4")


def kcenter_coreset(x: np.ndarray, y: np.ndarray, m: int) -> np.ndarray:
    """Indices of a greedy k-center subset of *x*, at most *m* of them.

    Seeded at the best-objective row (the region the acquisition argmax
    usually lives in), then repeatedly the row farthest from the chosen
    set — the classic 2-approximation cover, so the surrogate sees the
    whole sampled space, not just the incumbent's neighbourhood. Fully
    deterministic: ``np.argmax`` takes the first maximum, so every tie
    breaks to the lowest row index. Returned indices are sorted.
    """
    if len(x) != len(y):
        raise ValueError(f"x has {len(x)} rows but y has {len(y)}")
    if len(x) == 0:
        raise ValueError("cannot select a coreset of zero samples")
    first = int(np.argmax(y))
    chosen = [first]
    d2 = np.sum((x - x[first]) ** 2, axis=1)
    while len(chosen) < min(m, len(x)):
        nxt = int(np.argmax(d2))
        chosen.append(nxt)
        np.minimum(d2, np.sum((x - x[nxt]) ** 2, axis=1), out=d2)
    return np.array(sorted(chosen), dtype=np.intp)


class CoresetGPR:
    """Exact-kernel GP on a coreset, shaped for cheap batch scoring.

    Same RBF-plus-noise posterior as
    :class:`~repro.tuners.gpr.GaussianProcessRegressor`, restricted to a
    k-center subset of the training data, with two differences that make
    it a *screening* model:

    - the noise-augmented kernel inverse is precomputed at fit time, so
      a batch UCB evaluation is one kernel block and two ``(n, m)``
      matmuls — no per-call triangular solve;
    - the training subset is capped, so scoring cost does not grow with
      the repository.

    Fitting draws no randomness; the model is a pure function of its
    inputs.
    """

    def __init__(
        self,
        length_scale: float = 0.5,
        signal_variance: float = 1.0,
        noise_variance: float = 0.05,
        max_coreset: int = 16,
    ) -> None:
        if length_scale <= 0 or signal_variance <= 0 or noise_variance <= 0:
            raise ValueError("GPR hyperparameters must be positive")
        if max_coreset < 2:
            raise ValueError("max_coreset must be >= 2")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self.max_coreset = max_coreset
        self._x: np.ndarray | None = None
        self._xt: np.ndarray | None = None
        self._x_sq: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._k_inv: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def coreset_size(self) -> int:
        """Rows the fitted model actually retains."""
        return 0 if self._x is None else len(self._x)

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        np.maximum(sq, 0.0, out=sq)
        return self.signal_variance * np.exp(-0.5 * sq / self.length_scale**2)

    @classmethod
    def matching(
        cls, gpr: GaussianProcessRegressor, max_coreset: int
    ) -> "CoresetGPR":
        """A surrogate with the exact scorer's kernel hyperparameters.

        Sharing the kernel is load-bearing for argmax retention: the
        surrogate then approximates the very surface the exact scorer
        ranks by, rather than a differently-smoothed cousin of it.
        """
        return cls(
            length_scale=gpr.length_scale,
            signal_variance=gpr.signal_variance,
            noise_variance=gpr.noise_variance,
            max_coreset=max_coreset,
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "CoresetGPR":
        """Fit on the k-center coreset of (*x*, *y*)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        keep = kcenter_coreset(x, y, self.max_coreset)
        x = x[keep]
        y = y[keep]
        y_mean = float(np.mean(y))
        y_scale = float(np.std(y)) or 1.0
        k = self._kernel(x, x) + self.noise_variance * np.eye(len(x))
        k_inv = np.linalg.inv(k)
        self._k_inv = k_inv
        self._alpha = k_inv @ ((y - y_mean) / y_scale)
        self._y_mean = y_mean
        self._y_std = y_scale
        self._x = x
        # Static pieces of the batch kernel block, precomputed so a warm
        # scoring call is one matmul, one exp and two small products.
        self._xt = np.ascontiguousarray(x.T)
        self._x_sq = np.sum(x**2, axis=1)
        return self

    def _mean_std(
        self, x_new: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if (
            self._xt is None
            or self._x_sq is None
            or self._alpha is None
            or self._k_inv is None
        ):
            raise RuntimeError("predict() before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        # Inlined kernel block against the precomputed training pieces.
        sq = x_new @ self._xt
        sq *= -2.0
        sq += np.sum(x_new**2, axis=1)[:, None]
        sq += self._x_sq[None, :]
        np.maximum(sq, 0.0, out=sq)
        sq *= -0.5 / self.length_scale**2
        k_star = np.exp(sq, out=sq)
        if self.signal_variance != 1.0:
            k_star *= self.signal_variance
        mean = k_star @ self._alpha * self._y_std + self._y_mean
        var = self.signal_variance - np.sum(
            (k_star @ self._k_inv) * k_star, axis=1
        )
        np.maximum(var, 1e-12, out=var)
        return mean, np.sqrt(var) * self._y_std

    def predict(
        self, x_new: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optionally std) at *x_new* (n, d)."""
        mean, std = self._mean_std(x_new)
        return (mean, std) if return_std else mean

    def ucb(self, x_new: np.ndarray, kappa: float) -> np.ndarray:
        """Upper confidence bound ``mean + kappa * std`` at *x_new*."""
        mean, std = self._mean_std(x_new)
        return mean + kappa * std


class SurrogateScreen:
    """Per-workload surrogate models, version-keyed on the repository.

    One screen lives inside one BO-style tuner. :meth:`shortlist` either
    returns indices into the candidate matrix (top
    ``policy.shortlist_size`` by surrogate UCB, descending, ties by
    candidate index) or ``None`` when it abstains — too little training
    data, or no fitted exact GPR to mirror. The caller keeps the full
    candidate set in that case, so enabling the screen can never *lose*
    candidates on thin repositories.
    """

    def __init__(self, policy: SurrogatePolicy) -> None:
        self.policy = policy
        #: workload id -> (repository version, fitted surrogate).
        self._models: dict[str, tuple[int, CoresetGPR]] = {}
        self.hits = 0
        self.retrains = 0
        self.shortlists = 0

    def model_version(self, workload_id: str) -> int | None:
        """Repository version the cached model was fitted at."""
        cached = self._models.get(workload_id)
        return cached[0] if cached is not None else None

    def shortlist(
        self,
        workload_id: str,
        candidates: np.ndarray,
        gpr: GaussianProcessRegressor | None,
        x: np.ndarray,
        y: np.ndarray,
        kappa: float,
        version: int,
    ) -> np.ndarray | None:
        """Indices of the surviving candidates, or ``None`` to abstain.

        *version* is the repository row counter the (x, y) training set
        was materialised at; the cached model is reused iff it was
        fitted at exactly that version — the same freshness rule the
        exact GPR cache applies, so screen and scorer always agree on
        what they were trained from.
        """
        if (
            gpr is None
            or len(candidates) == 0
            or len(y) < self.policy.min_train_samples
        ):
            return None
        model = self._model_for(workload_id, gpr, x, y, version)
        scores = model.ucb(candidates, kappa=kappa)
        k = min(self.policy.shortlist_size, len(candidates))
        keep = np.argpartition(-scores, k - 1)[:k]
        # Canonical shortlist order: descending surrogate score, ties by
        # ascending candidate index.
        keep = keep[np.lexsort((keep, -scores[keep]))]
        self.shortlists += 1
        return keep

    def _model_for(
        self,
        workload_id: str,
        gpr: GaussianProcessRegressor,
        x: np.ndarray,
        y: np.ndarray,
        version: int,
    ) -> CoresetGPR:
        cached = self._models.get(workload_id)
        if cached is not None and cached[0] == version:
            self.hits += 1
            return cached[1]
        model = CoresetGPR.matching(gpr, self.policy.max_coreset).fit(x, y)
        self._models[workload_id] = (version, model)
        self.retrains += 1
        return model
