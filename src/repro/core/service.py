"""AutoDBaaS: the tuning service facade (Fig. 1 wired end-to-end).

One :class:`AutoDBaaS` owns the shared workload repository, the tuner
instances behind a least-loaded balancer, the config director, the Data
Federation Agent, the Service Orchestrator, the reconciler and the
non-tunable-knob downtime policy. Database deployments are attached with
a workload and a tuning policy:

- ``"tde"`` — the paper's event-driven mode: a per-instance TDE inspects
  every monitoring window; only windows that raise throttles trigger
  tuning requests and only those windows' samples (high-quality) are
  uploaded to the repository;
- ``"periodic"`` — the baseline: a tuning request every
  ``periodic_interval_s`` regardless of need, every window's sample
  uploaded (including corrupting low-quality ones);
- ``"monitor"`` — run and observe only (no tuning), for measuring raw
  throttle behaviour (Figs. 10–11).

:meth:`step` advances the whole landscape one monitoring window.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cloud.monitoring import MonitoringAgent
from repro.cloud.provisioner import ServiceDeployment
from repro.common.recording import NULL_RECORDER, Recorder
from repro.core.apply.dfa import ApplyReport, CanaryContext, DataFederationAgent
from repro.core.apply.nontunable import NonTunableKnobPolicy
from repro.core.apply.orchestrator import ServiceOrchestrator
from repro.core.apply.reconciler import Reconciler
from repro.core.director.config_director import ConfigDirector, SplitRecommendation
from repro.core.director.load_balancer import LeastLoadedBalancer, TunerInstance
from repro.core.director.safety import GovernorPolicy, SafetyGovernor
from repro.core.tde.engine import TDEReport, ThrottlingDetectionEngine
from repro.dbsim.engine import DatabaseCrashed, ExecutionResult
from repro.dbsim.memory import HOT_FRACTION
from repro.tuners.base import TrainingSample, Tuner, TuningRequest
from repro.tuners.knob_selection import SelectionPolicy
from repro.tuners.repository import WorkloadRepository
from repro.tuners.surrogate import SurrogatePolicy
from repro.workloads.generator import WorkloadGenerator

__all__ = ["ManagedInstance", "StepOutcome", "AutoDBaaS"]

_POLICIES = ("tde", "periodic", "monitor")


@dataclass
class ManagedInstance:
    """One database under AutoDBaaS management."""

    deployment: ServiceDeployment
    workload: WorkloadGenerator
    tde: ThrottlingDetectionEngine
    monitoring: MonitoringAgent
    policy: str
    periodic_interval_s: float
    apply_mode: str = "split"
    since_last_periodic_s: float = 0.0
    throughput_history: list[float] = field(default_factory=list)
    #: Telemetry sink for canary-slave evaluations (governed mode only).
    canary_monitor: MonitoringAgent | None = None

    @property
    def instance_id(self) -> str:
        return self.deployment.instance_id


@dataclass(slots=True)
class StepOutcome:
    """What happened to one instance during one window."""

    instance_id: str
    result: ExecutionResult | None
    tde_report: TDEReport | None = None
    tuning_requested: bool = False
    split: SplitRecommendation | None = None
    apply_report: ApplyReport | None = None
    downtime_taken: bool = False
    #: True when the safety governor reverted this instance's config.
    reverted: bool = False


class AutoDBaaS:
    """The full tuning-service landscape."""

    def __init__(
        self,
        tuners: list[Tuner],
        repository: WorkloadRepository | None = None,
        window_s: float = 300.0,
        downtime_period_s: float = 86_400.0,
        seed: int = 0,
        dfa: DataFederationAgent | None = None,
        monitoring_factory: Callable[[str], MonitoringAgent] | None = None,
        recorder: Recorder | None = None,
        governor: GovernorPolicy | None = None,
        surrogate: SurrogatePolicy | None = None,
        selection: SelectionPolicy | None = None,
    ) -> None:
        if not tuners:
            raise ValueError("need at least one tuner instance")
        self.repository = repository if repository is not None else WorkloadRepository()
        self.window_s = window_s
        self.seed = seed
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.balancer = LeastLoadedBalancer(
            [
                TunerInstance(f"tuner-{i:02d}", tuner)
                for i, tuner in enumerate(tuners)
            ]
        )
        for tuner in tuners:
            tuner.bind_recorder(self.recorder)
        # Surrogate screening and dynamic knob selection are opt-in like
        # the governor: the director offers each policy to every tuner
        # instance; with None (the default) nothing changes and outputs
        # stay byte-identical.
        self.director = ConfigDirector(
            self.balancer,
            recorder=self.recorder,
            surrogate=surrogate,
            selection=selection,
        )
        self.orchestrator = ServiceOrchestrator(
            downtime_period_s, recorder=self.recorder
        )
        # Safe online tuning is opt-in: with no policy the governor stays
        # None and every apply/tuning path is byte-identical to the
        # ungoverned build.
        self.governor = (
            SafetyGovernor(
                self.director.configs, policy=governor, recorder=self.recorder
            )
            if governor is not None
            else None
        )
        self.reconciler = Reconciler(
            self.orchestrator,
            recorder=self.recorder,
            incident_log=self.governor,
        )
        # Injection seams for the fault layer (repro.faults): a custom DFA
        # carries a faulty adapter, a custom monitoring factory produces
        # gap-dropping agents. Defaults reproduce the fault-free service.
        self.dfa = (
            dfa if dfa is not None else DataFederationAgent(recorder=self.recorder)
        )
        if self.dfa.recorder is NULL_RECORDER:
            # An injected DFA (fault layer) still reports to the landscape.
            self.dfa.recorder = self.recorder
        self._monitoring_factory = (
            monitoring_factory if monitoring_factory is not None else MonitoringAgent
        )
        self.downtime_policy = NonTunableKnobPolicy(self.director.configs)
        self.instances: dict[str, ManagedInstance] = {}
        self.clock_s = 0.0

    # -- attachment ---------------------------------------------------------------

    def attach(
        self,
        deployment: ServiceDeployment,
        workload: WorkloadGenerator,
        policy: str = "tde",
        periodic_interval_s: float = 300.0,
        apply_mode: str = "split",
    ) -> ManagedInstance:
        """Put *deployment* under management with *policy*.

        ``apply_mode="split"`` is AutoDBaaS's §4 pipeline: reloadable
        knobs now, restart-required knobs at scheduled downtime.
        ``apply_mode="restart"`` models a *native* tuner deployment
        (OtterTune/CDBTune apply every recommendation with a database
        restart, as their own methodologies do) — the baseline the paper
        compares against.
        """
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick from {_POLICIES}")
        if apply_mode not in ("split", "restart"):
            raise ValueError(f"unknown apply_mode {apply_mode!r}")
        instance_id = deployment.instance_id
        tde = ThrottlingDetectionEngine(
            instance_id,
            deployment.service.master,
            self.repository,
            seed=self.seed + len(self.instances),
            recorder=self.recorder,
        )
        managed = ManagedInstance(
            deployment=deployment,
            workload=workload,
            tde=tde,
            monitoring=self._monitoring_factory(instance_id),
            policy=policy,
            periodic_interval_s=periodic_interval_s,
            apply_mode=apply_mode,
            canary_monitor=(
                MonitoringAgent(
                    f"{instance_id}/canary", retention_s=4.0 * self.window_s
                )
                if self.governor is not None
                else None
            ),
        )
        self.instances[instance_id] = managed
        self.orchestrator.register(deployment)
        return managed

    # -- the main loop ----------------------------------------------------------------

    def step(self, window_s: float | None = None) -> list[StepOutcome]:
        """Advance every managed instance one monitoring window."""
        window = window_s if window_s is not None else self.window_s
        self.recorder.advance(self.clock_s)
        with self.recorder.span(
            "landscape.window", duration_s=window, fleet=len(self.instances)
        ):
            outcomes = [
                self._step_instance(managed, window)
                for managed in self.instances.values()
            ]
            self.balancer.drain(window)
        self.clock_s += window
        self.recorder.inc("repro_windows_total")
        for instance in self.balancer.instances:
            self.recorder.set_gauge(
                "repro_tuner_outstanding_seconds",
                instance.outstanding_s,
                tuner=instance.instance_id,
            )
        return outcomes

    def _step_instance(
        self, managed: ManagedInstance, window: float
    ) -> StepOutcome:
        with self.recorder.span(
            "instance.window",
            instance=managed.instance_id,
            duration_s=window,
            policy=managed.policy,
        ) as span:
            outcome = self._step_instance_inner(managed, window)
            span.set(
                crashed=outcome.result is None,
                tuning_requested=outcome.tuning_requested,
                downtime_taken=outcome.downtime_taken,
            )
        if outcome.result is not None:
            self.recorder.set_gauge(
                "repro_throughput_tps",
                outcome.result.throughput,
                instance=managed.instance_id,
            )
        return outcome

    def _step_instance_inner(
        self, managed: ManagedInstance, window: float
    ) -> StepOutcome:
        instance_id = managed.instance_id
        service = managed.deployment.service
        outcome = StepOutcome(instance_id=instance_id, result=None)
        if service.master.crashed:
            service.master.heal()

        batch = managed.workload.batch(window, start_time_s=self.clock_s)
        try:
            result = service.run(batch)
        except DatabaseCrashed:
            service.master.heal()
            return outcome
        outcome.result = result
        managed.monitoring.ingest(result)
        managed.throughput_history.append(result.throughput)

        if self.governor is not None and managed.policy != "monitor":
            # Feed the watch before this window's tuning decision: a
            # promotion that regressed is reverted to the last-known-good
            # config right now, not after another recommendation lands.
            decision = self.governor.observe_window(
                instance_id,
                service.master.config,
                result.throughput,
                self.clock_s,
            )
            if decision is not None:
                outcome.reverted = True
                revert_report = self.dfa.apply(
                    service, decision.config, instance_id=instance_id
                )
                if revert_report.applied:
                    self.orchestrator.persist_config(
                        instance_id, service.master.config
                    )
                else:
                    self.governor.revert_failed(instance_id)

        # The TDE reads the window through the monitoring agent (§2's
        # external monitoring), so telemetry gaps reach it as missing
        # series and it degrades instead of inspecting stale data.
        observed = managed.monitoring.filter_result(result)
        report = (
            managed.tde.inspect(observed) if managed.policy != "monitor" else None
        )
        outcome.tde_report = report

        request = self._tuning_decision(managed, result, report)
        if request is not None:
            outcome.tuning_requested = True
            split = self.director.handle_tuning_request(request)
            outcome.split = split
            if managed.apply_mode == "restart":
                # Native tuner deployment: the full recommendation lands
                # with a restart, downtime and all.
                master = service.master
                target = split.recommendation.config.fitted_to_budget(
                    master.vm.db_memory_limit_mb, master.active_connections
                )
                self.director.consume_downtime_changes(instance_id)
                outcome.apply_report = self.dfa.apply(
                    service, target, mode="restart", instance_id=instance_id
                )
            else:
                master = service.master
                target = split.reloadable.fitted_to_budget(
                    master.vm.db_memory_limit_mb, master.active_connections
                )
                if self.governor is not None:
                    move = self.governor.bound(
                        instance_id, master.config, target, self.clock_s
                    )
                    outcome.apply_report = self.dfa.apply(
                        service,
                        move.config,
                        instance_id=instance_id,
                        canary=CanaryContext(
                            batch=batch,
                            monitor=managed.canary_monitor,
                            threshold=self.governor.policy.canary_threshold,
                        ),
                    )
                    if outcome.apply_report.canary_rejected:
                        self.governor.note_canary_rejection(instance_id)
                    if outcome.apply_report.applied:
                        self.governor.note_promotion(
                            instance_id, service.master.config, self.clock_s
                        )
                else:
                    outcome.apply_report = self.dfa.apply(
                        service, target, instance_id=instance_id
                    )
            if outcome.apply_report.applied:
                self.orchestrator.persist_config(
                    instance_id, service.master.config
                )

        if self.orchestrator.downtime_due(instance_id, self.clock_s + window):
            outcome.downtime_taken = True
            self._run_downtime(managed)

        self.reconciler.tick(instance_id, service, self.clock_s + window)
        return outcome

    def _tuning_decision(
        self,
        managed: ManagedInstance,
        result: ExecutionResult,
        report: TDEReport | None,
    ) -> TuningRequest | None:
        """Sample upload + request decision under the instance's policy."""
        sample = TrainingSample(
            workload_id=result.batch.workload_name,
            config=result.config,
            metrics=result.metrics,
            timestamp_s=self.clock_s,
        )
        throttle_knobs: tuple[str, ...] = ()
        throttle_class: str | None = None
        if report is not None and report.throttles:
            actionable = [t for t in report.throttles if not t.requires_restart]
            if actionable:
                throttle_class = actionable[0].knob_class.value
                throttle_knobs = tuple(
                    sorted({name for t in actionable for name in t.knobs})
                )
        request = TuningRequest(
            instance_id=managed.instance_id,
            workload_id=result.batch.workload_name,
            config=result.config,
            metrics=result.metrics,
            throttle_class=throttle_class,
            throttle_knobs=throttle_knobs,
            timestamp_s=self.clock_s,
        )
        if managed.policy == "monitor":
            return None
        if managed.policy == "tde":
            if report is not None and report.needs_tuning:
                self._upload_sample(sample)  # high-quality, throttle-backed
                return request
            return None
        # periodic: every sample uploaded, request on the interval.
        self._upload_sample(sample)
        managed.since_last_periodic_s += result.duration_s
        if managed.since_last_periodic_s >= managed.periodic_interval_s:
            managed.since_last_periodic_s = 0.0
            return request
        return None

    def _upload_sample(self, sample: TrainingSample) -> None:
        """Store the sample once and stream it to every tuner instance.

        Policy-based tuners (RL) must see the sample stream to close their
        pending transitions; repository-backed tuners read the shared
        store and their ``learn`` is a no-op.
        """
        self.repository.add(sample)
        for instance in self.balancer.instances:
            instance.tuner.learn(sample)

    def _run_downtime(self, managed: ManagedInstance) -> None:
        """Scheduled maintenance: apply deferred + policy-sized buffer knob."""
        instance_id = managed.instance_id
        service = managed.deployment.service
        master = service.master
        deferred = self.director.consume_downtime_changes(instance_id)
        decision = self.downtime_policy.decide(
            instance_id=instance_id,
            current=master.config,
            working_set_mb=master.data_size_gb * 1024.0 * HOT_FRACTION,
            memory_limit_mb=master.vm.db_memory_limit_mb,
            entropy_hits=managed.tde.memory_detector.filter.entropy_hits,
            last_downtime_s=self.orchestrator.last_downtime_s(instance_id),
        )
        updates = dict(deferred)
        updates[decision.buffer_knob] = decision.new_value_mb
        target = master.config.clamped(updates).fitted_to_budget(
            master.vm.db_memory_limit_mb, master.active_connections
        )
        report = self.dfa.apply(
            service, target, mode="restart", instance_id=instance_id
        )
        if report.applied:
            self.orchestrator.persist_config(instance_id, target)
        self.orchestrator.record_downtime(instance_id, self.clock_s)

    # -- reporting ----------------------------------------------------------------

    def throttle_counts(self) -> dict[str, dict[str, int]]:
        """Per-instance throttle counts by knob class."""
        return {
            iid: {
                cls.value: count
                for cls, count in managed.tde.log.count_by_class().items()
            }
            for iid, managed in self.instances.items()
        }
