"""AutoDBaaS core: TDE, config director, apply pipeline, service facade."""

from repro.core.service import AutoDBaaS, ManagedInstance, StepOutcome

__all__ = ["AutoDBaaS", "ManagedInstance", "StepOutcome"]
