"""Memory-knob throttle detection (§3.1).

Per window the detector:

1. feeds the streaming-log sample through query templating and reservoir
   sampling to pick a tractable set of query templates;
2. EXPLAINs each selected template (most-frequent parameters substituted)
   against the live database; any plan that spills a working area to disk
   means the corresponding memory knob is too small → throttle;
3. gauges the working page set against the buffer pool (Curino et al.'s
   approach [5]); an undersized buffer raises a *restart-required*
   throttle that the config director holds for scheduled downtime;
4. runs every working-area throttle through the §3.1 entropy filter,
   which escalates to a plan-upgrade request when the knobs are already
   at their caps and the query classes fire evenly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tde.entropy import EntropyFilter, QueryClassHistogram
from repro.core.tde.throttle import PlanUpgradeRequest, Throttle
from repro.dbsim.engine import ExecutionResult, SimulatedDatabase
from repro.dbsim.knobs import KnobClass
from repro.dbsim.memory import HOT_FRACTION, working_area_knobs
from repro.workloads.query import Query
from repro.workloads.sampling import ReservoirSampler
from repro.workloads.templating import TemplateCatalog

__all__ = ["MemoryDetectionReport", "MemoryThrottleDetector"]

#: A knob is "at cap" when within this fraction of its maximum (or of the
#: largest value the VM budget permits).
_CAP_FRACTION = 0.95
#: Buffer-pool gauging: throttle when the working set exceeds the pool by
#: this factor AND the hit ratio is poor.
_BUFFER_UNDERSIZE_FACTOR = 2.0
_BUFFER_HIT_THRESHOLD = 0.6
#: Buffer gauging only fires when the window is read-pressured.
_GAUGE_WRITE_FRACTION_MAX = 0.55


@dataclass
class MemoryDetectionReport:
    """Outcome of one detection round."""

    throttles: list[Throttle] = field(default_factory=list)
    escalations: list[PlanUpgradeRequest] = field(default_factory=list)
    examined_templates: int = 0
    spilled_categories: set[str] = field(default_factory=set)
    filtered_at_cap: int = 0


class MemoryThrottleDetector:
    """Plan-spill + buffer-gauging detector with the entropy filter."""

    def __init__(
        self,
        instance_id: str,
        reservoir_capacity: int = 64,
        entropy_filter: EntropyFilter | None = None,
        cap_filter_enabled: bool = True,
        seed: int = 0,
    ) -> None:
        self.instance_id = instance_id
        self.cap_filter_enabled = cap_filter_enabled
        self.templates = TemplateCatalog()
        # §3.1 reservoir-samples *templates* from the pool extracted from
        # the streaming log: a template enters the reservoir once, when
        # first seen, so rare-but-heavy statements are examined with the
        # same probability as frequent ones.
        self.reservoir: ReservoirSampler[str] = ReservoirSampler(
            reservoir_capacity, seed=seed
        )
        self._seen_templates: set[str] = set()
        self.histogram = QueryClassHistogram()
        self.filter = entropy_filter if entropy_filter is not None else EntropyFilter()

    def inspect(
        self, db: SimulatedDatabase, result: ExecutionResult
    ) -> MemoryDetectionReport:
        """Run one detection round over an executed window."""
        report = MemoryDetectionReport()
        for query in result.batch.sampled_queries:
            self._observe(query)
            self.histogram.observe(query)
        # The full log also contains every family's statements, even those
        # a uniform sample misses; frequencies stay with sampled_queries.
        for query in result.batch.family_examples:
            self._observe(query)

        selected = self._select_templates()
        report.examined_templates = len(selected)
        spilled: set[str] = set()
        implicated: set[str] = set()
        for query in selected:
            plan = db.explain(query)
            for category in plan.spilled_categories():
                spilled.add(category)
                implicated.update(self._knobs_for(db, category))
        report.spilled_categories = spilled

        if implicated:
            throttle = Throttle(
                instance_id=self.instance_id,
                workload_id=result.batch.workload_name,
                knob_class=KnobClass.MEMORY,
                knobs=tuple(sorted(implicated)),
                reason=(
                    "plans spill to disk in categories: "
                    + ", ".join(sorted(spilled))
                ),
                time_s=result.start_time_s + result.duration_s,
            )
            at_cap = self.cap_filter_enabled and self._knobs_at_cap(db, implicated)
            if self.filter.should_escalate(self.histogram, at_cap):
                report.escalations.append(
                    PlanUpgradeRequest(
                        instance_id=self.instance_id,
                        reason=(
                            "memory knobs at cap with evenly spread query "
                            "classes; tuning cannot stop the throttles"
                        ),
                        time_s=throttle.time_s,
                        entropy=self.filter.last_entropy or 0.0,
                    )
                )
            elif at_cap:
                # §3.1's first bullet: repeated throttles from knobs that
                # already sit at their cap "can easily be captured by
                # rule-based engine and throttles can be filtered" — a
                # tuning request cannot raise a capped knob any further.
                report.filtered_at_cap += 1
            else:
                report.throttles.append(throttle)
        else:
            self.filter.record_quiet_window()
            # The class histogram describes the current throttle streak;
            # a quiet window ends the streak, so the stats restart with it.
            self.histogram.reset()

        buffer_throttle = self._gauge_buffer(db, result)
        if buffer_throttle is not None:
            report.throttles.append(buffer_throttle)
        return report

    # -- internals ----------------------------------------------------------------

    def _observe(self, query: Query) -> None:
        tid = self.templates.observe(query)
        if tid not in self._seen_templates:
            self._seen_templates.add(tid)
            self.reservoir.observe(tid)

    def _select_templates(self) -> list[Query]:
        """The reservoir's templates, as representative queries.

        Each template is examined via a stored example with the most
        recently seen concrete parameters (§3.1 substitutes the most
        frequent parameters before plan evaluation).
        """
        out: list[Query] = []
        for tid in self.reservoir.sample:
            example = self.templates.stats(tid).example
            if example is not None:
                out.append(example)
        return out

    @staticmethod
    def _knobs_for(db: SimulatedDatabase, category: str) -> tuple[str, ...]:
        knobs = working_area_knobs(db.flavor)
        return {
            "sort": knobs.sort,
            "maintenance": knobs.maintenance,
            "temp": knobs.temp,
        }[category]

    @staticmethod
    def _knobs_at_cap(db: SimulatedDatabase, names: set[str]) -> bool:
        """Whether the memory knobs have no room left to grow.

        True when either every implicated knob sits at its catalog
        maximum, or the working-area allocation has consumed the VM
        budget left after the buffer pool — the §3.1 situation where
        "increasing working memory continuously with each recommendation
        ... decreasing other knobs (to make room)" has run its course and
        "the underlying instance configuration limit is in-sufficient".
        """
        from repro.dbsim.config import effective_sessions

        config = db.config
        at_catalog_max = all(
            config[name] >= _CAP_FRACTION * db.catalog.get(name).max_value
            for name in names
        )
        if at_catalog_max:
            return True
        # Compare against the budget actually reachable by reload-time
        # repair (the same 5% headroom fitted_to_budget keeps).
        budget_left = (
            0.95 * db.vm.db_memory_limit_mb
            - config.buffer_pool_mb()
            - config._restart_memory_mb()
        )
        working_charge = config.working_area_mb() * effective_sessions(
            db.active_connections
        )
        return working_charge >= 0.9 * budget_left

    def _gauge_buffer(
        self, db: SimulatedDatabase, result: ExecutionResult
    ) -> Throttle | None:
        """Working-page-set gauging for the non-tunable buffer knob.

        Fires only under read pressure: an undersized pool hurts through
        buffer misses, so a write-dominated window (bulk ingest) does not
        implicate the buffer even when the working set exceeds it.
        """
        working_set_mb = db.data_size_gb * 1024.0 * HOT_FRACTION
        buffer_mb = db.config.buffer_pool_mb()
        undersized = working_set_mb > _BUFFER_UNDERSIZE_FACTOR * buffer_mb
        read_pressure = result.batch.write_fraction <= _GAUGE_WRITE_FRACTION_MAX
        if not (undersized and read_pressure and result.hit_ratio < _BUFFER_HIT_THRESHOLD):
            return None
        buffer_name = (
            "shared_buffers" if db.flavor == "postgres" else "innodb_buffer_pool_size"
        )
        return Throttle(
            instance_id=self.instance_id,
            workload_id=result.batch.workload_name,
            knob_class=KnobClass.MEMORY,
            knobs=(buffer_name,),
            reason=(
                f"working set ~{working_set_mb:.0f} MB vs buffer pool "
                f"{buffer_mb:.0f} MB (hit ratio {result.hit_ratio:.2f})"
            ),
            time_s=result.start_time_s + result.duration_s,
            requires_restart=True,
        )
