"""Throttling Detection Engine: the paper's §3 contribution."""

from repro.core.tde.bgwriter_detector import (
    BgwriterThrottleDetector,
    checkpoint_latency_ratio,
)
from repro.core.tde.engine import TDEReport, ThrottlingDetectionEngine
from repro.core.tde.entropy import (
    QUERY_CLASSES,
    EntropyFilter,
    QueryClassHistogram,
    classify_query,
    normalized_entropy,
)
from repro.core.tde.learned_detector import LabelledWindow, LearnedThrottleDetector
from repro.core.tde.mdp import AutomatonStep, LearningAutomaton
from repro.core.tde.memory_detector import MemoryDetectionReport, MemoryThrottleDetector
from repro.core.tde.planner_detector import EpisodeResult, PlannerThrottleDetector
from repro.core.tde.throttle import PlanUpgradeRequest, Throttle, ThrottleLog
from repro.core.tde.workload_change import (
    WorkloadChange,
    WorkloadChangeDetector,
    hellinger_distance,
)

__all__ = [
    "AutomatonStep",
    "BgwriterThrottleDetector",
    "EntropyFilter",
    "EpisodeResult",
    "LabelledWindow",
    "LearnedThrottleDetector",
    "LearningAutomaton",
    "MemoryDetectionReport",
    "MemoryThrottleDetector",
    "PlanUpgradeRequest",
    "PlannerThrottleDetector",
    "QUERY_CLASSES",
    "QueryClassHistogram",
    "TDEReport",
    "Throttle",
    "ThrottleLog",
    "ThrottlingDetectionEngine",
    "WorkloadChange",
    "WorkloadChangeDetector",
    "checkpoint_latency_ratio",
    "classify_query",
    "hellinger_distance",
    "normalized_entropy",
]
