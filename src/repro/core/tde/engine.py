"""The Throttling Detection Engine — the paper's central contribution.

The TDE "gets periodically executed on the database master VM (like a
plugin)" (§2): once per monitoring window it runs the three class
detectors over the window's observables and emits throttles. The config
director turns throttles into tuning requests; no throttle, no request —
that event-driven break from periodic polling is what Fig. 9 measures.

The TDE is also the sample-quality gate: a window that raised a throttle
is a *high-quality* sample worth uploading to the tuner repository; a
quiet window is not (Figs. 12–13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.recording import NULL_RECORDER, Recorder
from repro.core.tde.bgwriter_detector import BgwriterThrottleDetector
from repro.core.tde.memory_detector import MemoryThrottleDetector
from repro.core.tde.planner_detector import PlannerThrottleDetector
from repro.core.tde.throttle import PlanUpgradeRequest, Throttle, ThrottleLog
from repro.dbsim.engine import ExecutionResult, SimulatedDatabase
from repro.dbsim.knobs import KnobClass
from repro.tuners.repository import WorkloadRepository

__all__ = ["TDEReport", "ThrottlingDetectionEngine"]


@dataclass
class TDEReport:
    """Everything one TDE round produced."""

    throttles: list[Throttle] = field(default_factory=list)
    escalations: list[PlanUpgradeRequest] = field(default_factory=list)
    #: True when monitoring telemetry was missing this window and one or
    #: more detectors were skipped rather than run on empty data.
    degraded: bool = False

    @property
    def needs_tuning(self) -> bool:
        """Whether this window should trigger a tuning request.

        Restart-required throttles (buffer gauging) do not count: the
        config director only collects them and acts at scheduled downtime
        (§3.1), so they must not generate per-window recommendation load.
        """
        return any(not t.requires_restart for t in self.throttles)

    @property
    def restart_required_throttles(self) -> list[Throttle]:
        """Throttles that can only be acted on at scheduled downtime."""
        return [t for t in self.throttles if t.requires_restart]

    def classes(self) -> set[KnobClass]:
        """Knob classes implicated this round."""
        return {t.knob_class for t in self.throttles}


class ThrottlingDetectionEngine:
    """Per-instance TDE plugin composing the three §3 detectors.

    Parameters
    ----------
    instance_id:
        The database service instance this TDE watches.
    db:
        The master-node database (for EXPLAIN probes and knob caps).
    repository:
        Shared tuner repository — the bgwriter detector reads baselines
        from it.
    enabled_classes:
        Restrict detection to a subset of knob classes (ablations,
        Fig. 14's per-class analysis).
    planner_trigger_every:
        Run the planner MDP probe every N-th window ("interval of 2 to 4
        minutes" against 30–60 s monitoring windows).
    recorder:
        Observability seam (:mod:`repro.common.recording`): each round
        opens a ``tde.inspect`` span, every detector emits a
        ``tde.verdict`` event, and throttles/degraded windows land in
        the metrics registry. Default: the no-op recorder.
    """

    def __init__(
        self,
        instance_id: str,
        db: SimulatedDatabase,
        repository: WorkloadRepository | None = None,
        enabled_classes: set[KnobClass] | None = None,
        planner_trigger_every: int = 4,
        seed: int = 0,
        recorder: Recorder | None = None,
    ) -> None:
        if planner_trigger_every < 1:
            raise ValueError("planner_trigger_every must be >= 1")
        self.instance_id = instance_id
        self.db = db
        self.repository = repository if repository is not None else WorkloadRepository()
        self.enabled_classes = (
            set(enabled_classes) if enabled_classes is not None else set(KnobClass)
        )
        self.planner_trigger_every = planner_trigger_every
        self.memory_detector = MemoryThrottleDetector(instance_id, seed=seed)
        self.bgwriter_detector = BgwriterThrottleDetector(
            instance_id, self.repository
        )
        self.planner_detector = PlannerThrottleDetector.for_database(
            instance_id, db, seed=seed
        )
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.log = ThrottleLog()
        self._window_index = 0

    def inspect(self, result: ExecutionResult) -> TDEReport:
        """Run one TDE round over an executed window.

        Degraded mode: the bgwriter detector reads disk latency from the
        *external monitoring agent* (§3.2), so a telemetry gap — an empty
        disk-latency series in the window — means it has nothing sound to
        compare against the baseline. It is skipped (no throttle, never an
        exception) and the report is marked ``degraded``; the DB-side
        detectors (memory, planner) observe the database directly and keep
        running.
        """
        report = TDEReport()
        telemetry_ok = len(result.data_disk.write_latency) > 0
        report.degraded = not telemetry_ok
        with self.recorder.span(
            "tde.inspect", instance=self.instance_id, window=self._window_index
        ) as span:
            if KnobClass.MEMORY in self.enabled_classes:
                memory = self.memory_detector.inspect(self.db, result)
                report.throttles.extend(memory.throttles)
                report.escalations.extend(memory.escalations)
                self.recorder.event(
                    "tde.verdict",
                    instance=self.instance_id,
                    detector="memory",
                    throttles=len(memory.throttles),
                    escalations=len(memory.escalations),
                )
            if KnobClass.BGWRITER in self.enabled_classes:
                if telemetry_ok:
                    bgwriter = self.bgwriter_detector.inspect(result)
                    report.throttles.extend(bgwriter)
                    self.recorder.event(
                        "tde.verdict",
                        instance=self.instance_id,
                        detector="bgwriter",
                        throttles=len(bgwriter),
                    )
                else:
                    self.recorder.event(
                        "tde.verdict",
                        instance=self.instance_id,
                        detector="bgwriter",
                        skipped="telemetry-gap",
                    )
            run_planner = (
                KnobClass.ASYNC_PLANNER in self.enabled_classes
                and self._window_index % self.planner_trigger_every == 0
            )
            if run_planner:
                planner = self.planner_detector.inspect(self.db, result)
                report.throttles.extend(planner)
                self.recorder.event(
                    "tde.verdict",
                    instance=self.instance_id,
                    detector="planner",
                    throttles=len(planner),
                )
            span.set(
                throttles=len(report.throttles),
                degraded=report.degraded,
                needs_tuning=report.needs_tuning,
            )
        for throttle in report.throttles:
            self.recorder.inc(
                "repro_throttles_total",
                instance=self.instance_id,
                knob_class=throttle.knob_class.value,
            )
        if report.degraded:
            self.recorder.inc(
                "repro_tde_degraded_windows_total", instance=self.instance_id
            )
        self._window_index += 1
        self.log.record(report.throttles)
        self.log.escalations.extend(report.escalations)
        return report
