"""Async/planner throttle detection via the learning automaton (§3.3).

Every trigger interval (2–4 minutes in the paper) the detector:

1. reservoir-samples queries from the streaming log;
2. for each async/planner knob, lets that knob's automaton pick an
   increase/decrease action and evaluates the planner's cost/benefit for
   the hypothetical knob value (EXPLAIN under a what-if config — the live
   knobs are not touched);
3. a profit beyond the threshold rewards the action **and raises a
   throttle** (the tuner should be consulted — the optimum shifts with the
   workload and the tuner has cross-system experience, §3.3's closing
   argument); a loss penalises the action.

:meth:`run_episode` drives the same machinery for 350–400 consecutive
steps against a fixed query sample, producing the learning-progress and
accuracy curves of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_rng, make_rng
from repro.core.tde.mdp import LearningAutomaton
from repro.core.tde.throttle import Throttle
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import ExecutionResult, SimulatedDatabase
from repro.dbsim.knobs import KnobClass
from repro.workloads.query import Query
from repro.workloads.sampling import ReservoirSampler

__all__ = ["EpisodeResult", "PlannerThrottleDetector"]

#: Relative planner-cost reduction that counts as profit.
_PROFIT_THRESHOLD = 0.005


@dataclass
class EpisodeResult:
    """Summary of one RL episode (Fig. 6 material)."""

    total_reward: float = 0.0
    steps: int = 0
    rewarded_steps: int = 0
    reward_curve: list[float] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """Fraction of steps whose action produced a profit."""
        return self.rewarded_steps / self.steps if self.steps else 0.0


class PlannerThrottleDetector:
    """One learning automaton per async/planner knob."""

    def __init__(
        self,
        instance_id: str,
        catalog_knobs: list,
        reservoir_capacity: int = 48,
        profit_threshold: float = _PROFIT_THRESHOLD,
        step_fraction: float = 0.06,
        lr_reward: float = 0.2,
        lr_penalty: float = 0.06,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.instance_id = instance_id
        self.profit_threshold = profit_threshold
        rng = make_rng(seed)
        self.automata = {
            knob.name: LearningAutomaton(
                knob,
                step_fraction=step_fraction,
                lr_reward=lr_reward,
                lr_penalty=lr_penalty,
                seed=derive_rng(rng, knob.name),
            )
            for knob in catalog_knobs
        }
        if not self.automata:
            raise ValueError("no async/planner knobs to supervise")
        # Like the memory detector, probe over *distinct templates*: a
        # frequency-weighted sample of an insert-dominated log would
        # spend the whole cost/benefit budget on statements whose plans do
        # not respond to planner knobs at all.
        self.reservoir: ReservoirSampler[Query] = ReservoirSampler(
            reservoir_capacity, seed=derive_rng(rng, "reservoir")
        )
        self._seen_templates: set[str] = set()

    @staticmethod
    def for_database(
        instance_id: str,
        db: SimulatedDatabase,
        seed: int = 0,
        step_fraction: float = 0.06,
        lr_reward: float = 0.2,
        lr_penalty: float = 0.06,
    ) -> "PlannerThrottleDetector":
        """Detector over *db*'s async/planner knob class."""
        knobs = db.catalog.by_class(KnobClass.ASYNC_PLANNER)
        return PlannerThrottleDetector(
            instance_id,
            knobs,
            step_fraction=step_fraction,
            lr_reward=lr_reward,
            lr_penalty=lr_penalty,
            seed=seed,
        )

    def _mean_cost(
        self, db: SimulatedDatabase, queries: list[Query], config: KnobConfiguration
    ) -> float:
        plans = db.explain_many(queries, config)
        return float(np.mean([p.total_cost for p in plans])) if plans else 0.0

    def probe(
        self, db: SimulatedDatabase, queries: list[Query]
    ) -> list[tuple[str, float]]:
        """One automaton step per knob; returns ``(knob, profit)`` pairs.

        Profit is the relative planner-cost reduction of the automaton's
        chosen perturbation; only entries above the threshold are
        returned (they are what triggers a throttle).
        """
        if not queries:
            return []
        profitable: list[tuple[str, float]] = []
        base_cost = self._mean_cost(db, queries, db.config)
        if base_cost <= 0:
            return []
        for name, automaton in self.automata.items():
            action = automaton.choose_action()
            old_value = db.config[name]
            new_value = automaton.next_value(old_value, action)
            if new_value == old_value:
                # At a cap; the move is a no-op — penalise to push back.
                automaton.update(action, rewarded=False)
                automaton.record(action, old_value, new_value, 0.0, False)
                continue
            candidate = db.config.with_values({name: new_value})
            new_cost = self._mean_cost(db, queries, candidate)
            profit = (base_cost - new_cost) / base_cost
            rewarded = profit > self.profit_threshold
            automaton.update(action, rewarded)
            automaton.record(action, old_value, new_value, profit, rewarded)
            if rewarded:
                profitable.append((name, profit))
        return profitable

    def observe_queries(self, queries: list[Query]) -> None:
        """Feed log queries; only first-seen templates enter the reservoir."""
        from repro.workloads.templating import make_template

        for query in queries:
            # Generator-instantiated queries carry their template.
            template = query.template or make_template(query.text)
            if template not in self._seen_templates:
                self._seen_templates.add(template)
                self.reservoir.observe(query)

    def inspect(
        self, db: SimulatedDatabase, result: ExecutionResult
    ) -> list[Throttle]:
        """Run one trigger round over the window's query-log sample."""
        self.observe_queries(result.batch.sampled_queries)
        self.observe_queries(result.batch.family_examples)
        profitable = self.probe(db, self.reservoir.sample)
        if not profitable:
            return []
        knobs = tuple(sorted(name for name, _ in profitable))
        best = max(profit for _, profit in profitable)
        return [
            Throttle(
                instance_id=self.instance_id,
                workload_id=result.batch.workload_name,
                knob_class=KnobClass.ASYNC_PLANNER,
                knobs=knobs,
                reason=(
                    f"planner cost/benefit probe found {best:.1%} profit "
                    f"on knobs {', '.join(knobs)}"
                ),
                time_s=result.start_time_s + result.duration_s,
            )
        ]

    def run_episode(
        self,
        db: SimulatedDatabase,
        queries: list[Query],
        steps: int = 375,
    ) -> EpisodeResult:
        """Run one 350–400-step episode against a fixed query sample.

        The hypothetical configuration *trajectory* starts at the live
        config and follows the automata's actions; the live database is
        never modified. Rewards are the per-step profits; the reward
        curve is cumulative, which is what Fig. 6a plots per episode.
        """
        if not queries:
            raise ValueError("episode needs a non-empty query sample")
        result = EpisodeResult()
        config = db.config
        names = list(self.automata)
        cost = self._mean_cost(db, queries, config)
        best_cost = cost
        # A knob whose probes fail this many times in a row is parked for
        # the rest of the episode: the automaton stops paying penalties on
        # a (locally) converged knob, which both preserves its learned
        # action probabilities and makes episodes reward exploration
        # efficiency — an undertrained automaton parks knobs prematurely.
        park_after = 3
        consecutive_fails = {name: 0 for name in names}
        for step in range(steps):
            active = [n for n in names if consecutive_fails[n] < park_after]
            if not active:
                result.reward_curve.extend(
                    [result.total_reward] * (steps - step)
                )
                break
            name = active[step % len(active)]
            automaton = self.automata[name]
            action = automaton.choose_action()
            new_value = automaton.next_value(config[name], action)
            candidate = config.with_values({name: new_value})
            new_cost = self._mean_cost(db, queries, candidate)
            profit = (cost - new_cost) / cost if cost > 0 else 0.0
            # Hysteresis: only a strict improvement over the episode's
            # best cost counts — oscillating around the optimum (lose a
            # step, win it back) must not register as endless progress.
            improvement = (
                (best_cost - new_cost) / best_cost if best_cost > 0 else 0.0
            )
            rewarded = improvement > self.profit_threshold
            automaton.update(action, rewarded)
            automaton.record(action, config[name], new_value, profit, rewarded)
            result.steps += 1
            if rewarded:
                # Hill-climbing state transition: the MDP moves to the new
                # knob value only when the environment paid off; a losing
                # probe stays put (its cost was hypothetical — EXPLAIN,
                # not execution) and only adjusts the action probability.
                result.rewarded_steps += 1
                result.total_reward += profit
                config = candidate
                cost = new_cost
                best_cost = min(best_cost, new_cost)
                consecutive_fails[name] = 0
            else:
                # "The cost benefit estimates are then converted to
                # rewards or penalties" — a losing probe is a penalty, so
                # episodes reward policies that probe the right direction.
                result.total_reward -= abs(min(profit, 0.0))
                consecutive_fails[name] += 1
            result.reward_curve.append(result.total_reward)
        return result
