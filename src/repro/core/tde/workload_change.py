"""Workload-pattern-change detection over query templates.

§1: "Currently there are ways in literature which can suggest changes in
workload patterns [8], [19]. This works use templates (from queries) and
cluster them." The TDE's evaluation (Fig. 14) is about reacting to such
changes; this module provides the template-distribution change signal
itself, so operators can correlate throttles with pattern shifts.

The detector keeps a sliding histogram of template frequencies per window
and scores the drift between consecutive windows with the Hellinger
distance (bounded in [0, 1], defined for non-overlapping supports — a
brand-new template set scores 1).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.workloads.query import Query
from repro.workloads.templating import make_template

__all__ = ["WorkloadChange", "WorkloadChangeDetector", "hellinger_distance"]


def hellinger_distance(p: dict[str, float], q: dict[str, float]) -> float:
    """Hellinger distance between two discrete distributions in [0, 1]."""
    keys = set(p) | set(q)
    if not keys:
        return 0.0
    total = 0.0
    for key in keys:
        total += (math.sqrt(p.get(key, 0.0)) - math.sqrt(q.get(key, 0.0))) ** 2
    return math.sqrt(total / 2.0)


@dataclass(frozen=True)
class WorkloadChange:
    """One detected pattern change."""

    window: int
    distance: float
    appeared: tuple[str, ...]
    disappeared: tuple[str, ...]


class WorkloadChangeDetector:
    """Template-distribution drift detector.

    Parameters
    ----------
    threshold:
        Hellinger distance above which a window counts as a pattern
        change (0 = identical distributions, 1 = disjoint template sets).
    """

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self._previous: dict[str, float] | None = None
        self._window = 0
        self.changes: list[WorkloadChange] = []

    @staticmethod
    def _distribution(queries: list[Query]) -> dict[str, float]:
        counts: Counter[str] = Counter(
            q.template or make_template(q.text) for q in queries
        )
        total = sum(counts.values())
        if total == 0:
            return {}
        return {template: n / total for template, n in counts.items()}

    def observe_window(self, queries: list[Query]) -> WorkloadChange | None:
        """Feed one window's query sample; returns a change if detected.

        An idle (empty) window neither reports a change nor replaces the
        baseline — otherwise one quiet window would both hide a shift and
        make the next busy window look like one.
        """
        current = self._distribution(queries)
        window = self._window
        self._window += 1
        if not current:
            return None
        previous = self._previous
        self._previous = current
        if previous is None:
            return None
        distance = hellinger_distance(previous, current)
        if distance < self.threshold:
            return None
        change = WorkloadChange(
            window=window,
            distance=distance,
            appeared=tuple(sorted(set(current) - set(previous)))[:8],
            disappeared=tuple(sorted(set(previous) - set(current)))[:8],
        )
        self.changes.append(change)
        return change
