"""Throttle events — the TDE's output and the paper's evaluation metric.

A :class:`Throttle` says "this database's performance is currently limited
by incorrectly configured knobs of this class". Throttles are what trigger
tuning requests (replacing periodic polling), and *counting* them is the
paper's production-safe performance metric (§1, §5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dbsim.knobs import KnobClass

__all__ = ["Throttle", "PlanUpgradeRequest", "ThrottleLog"]


@dataclass(frozen=True)
class Throttle:
    """One detected performance throttle.

    Attributes
    ----------
    instance_id / workload_id:
        Which database, running what.
    knob_class:
        The §3 class the throttle blames.
    knobs:
        Specific knob names implicated (e.g. ``("work_mem",)``).
    reason:
        Human-readable evidence ("plan for template X spills sort to disk").
    time_s:
        Simulated detection time.
    requires_restart:
        True for non-tunable knobs (buffer pool) that can only change at
        scheduled downtime.
    """

    instance_id: str
    workload_id: str
    knob_class: KnobClass
    knobs: tuple[str, ...]
    reason: str
    time_s: float
    requires_restart: bool = False


@dataclass(frozen=True)
class PlanUpgradeRequest:
    """Escalation instead of a throttle: the VM itself is undersized (§3.1).

    Raised when the entropy filter concludes further tuning cannot stop
    the throttles (knobs at their caps, query classes evenly spread) and
    the customer should move to a bigger plan.
    """

    instance_id: str
    reason: str
    time_s: float
    entropy: float


@dataclass
class ThrottleLog:
    """Accumulates throttles and escalations across windows."""

    throttles: list[Throttle] = field(default_factory=list)
    escalations: list[PlanUpgradeRequest] = field(default_factory=list)

    def record(self, items: list[Throttle]) -> None:
        self.throttles.extend(items)

    def count_by_class(self) -> dict[KnobClass, int]:
        """Throttle counts per knob class (the Figs. 10–11 bars)."""
        out: dict[KnobClass, int] = {cls: 0 for cls in KnobClass}
        for throttle in self.throttles:
            out[throttle.knob_class] += 1
        return out

    def __len__(self) -> int:
        return len(self.throttles)
