"""The §3.3 learning automaton — the MDP {Q, A, B, N, H}.

Per async/planner knob the TDE keeps a tiny two-action learning automaton:

- **Q** — internal states: the knob values tried (the automaton's state is
  its current knob value);
- **A** — actions: increase / decrease by a unit step, each carrying its
  own probability;
- **B** — environment response: planner cost/benefit on the sampled
  queries;
- **N** — state transition: apply the chosen step (clamped to the range);
- **H** — action selection: sample from the action probabilities, then
  adjust them by a linear reward-penalty (L_RP) scheme from the response.

The automaton starts uniform ("the MDP starts with random set of actions")
and concentrates probability on the profitable direction as episodes
accumulate, which is the learning progress Fig. 6 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.dbsim.knobs import KnobDef

__all__ = ["LearningAutomaton", "AutomatonStep"]

_ACTIONS = ("increase", "decrease")


@dataclass
class AutomatonStep:
    """One automaton step: what was tried and how it went."""

    knob: str
    action: str
    old_value: float
    new_value: float
    reward: float
    rewarded: bool


class LearningAutomaton:
    """Two-action L_RP learning automaton over one knob.

    Parameters
    ----------
    knob:
        The knob definition (range gives the unit step).
    step_fraction:
        Unit step as a fraction of the knob range ("defined statically").
    lr_reward / lr_penalty:
        Linear reward-penalty learning rates.
    """

    def __init__(
        self,
        knob: KnobDef,
        step_fraction: float = 0.06,
        lr_reward: float = 0.2,
        lr_penalty: float = 0.06,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not 0.0 < step_fraction <= 0.5:
            raise ValueError("step_fraction must be in (0, 0.5]")
        self.knob = knob
        self.step = step_fraction * (knob.max_value - knob.min_value)
        self.lr_reward = lr_reward
        self.lr_penalty = lr_penalty
        self._rng = make_rng(seed)
        self._p = {action: 0.5 for action in _ACTIONS}
        self.history: list[AutomatonStep] = []

    @property
    def probabilities(self) -> dict[str, float]:
        """Current action probabilities."""
        return dict(self._p)

    def choose_action(self) -> str:
        """Sample an action from the current distribution (the H mapping)."""
        return str(
            self._rng.choice(_ACTIONS, p=[self._p[a] for a in _ACTIONS])
        )

    def next_value(self, current: float, action: str) -> float:
        """The N mapping: apply *action*'s unit step, clamped to range."""
        if action == "increase":
            return self.knob.clamp(current + self.step)
        if action == "decrease":
            return self.knob.clamp(current - self.step)
        raise ValueError(f"unknown action {action!r}")

    def update(self, action: str, rewarded: bool) -> None:
        """L_RP probability update from the environment response (B)."""
        other = "decrease" if action == "increase" else "increase"
        if rewarded:
            self._p[action] += self.lr_reward * (1.0 - self._p[action])
        else:
            self._p[action] -= self.lr_penalty * self._p[action]
        self._p[other] = 1.0 - self._p[action]

    def record(
        self, action: str, old: float, new: float, reward: float, rewarded: bool
    ) -> AutomatonStep:
        """Store one step in the automaton's history."""
        step = AutomatonStep(
            knob=self.knob.name,
            action=action,
            old_value=old,
            new_value=new,
            reward=reward,
            rewarded=rewarded,
        )
        self.history.append(step)
        return step
