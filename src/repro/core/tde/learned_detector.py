"""Learned throttle detection — the paper's §7 future work, implemented.

"In the coming future, we would like to explore more on using
reinforcement learning methods to capture the performance throttles and
making the current TDE free from static rules."

:class:`LearnedThrottleDetector` replaces the three rule-based detectors
with a single model over the window's delta-metric vector. It trains by
*imitation*: while shadowing a rule-based TDE it records
(metrics → throttle classes) pairs; once trained it predicts throttle
classes directly from metrics, with no plan probing, no baselines and no
static thresholds. The classifier is a small numpy MLP with independent
sigmoid heads per knob class (a window can throttle several classes at
once).

The ablation bench compares it against the rule engine on held-out
windows: it generalises well on classes whose signal lives in the metric
vector (memory: temp_files/temp_mb; bgwriter: checkpoint counts + write
latency) and worse on async/planner, whose rule-based signal comes from
active EXPLAIN probing the metrics don't contain — a nice illustration of
why the paper's TDE probes at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import make_rng
from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.core.tde.throttle import Throttle
from repro.dbsim.engine import ExecutionResult
from repro.dbsim.knobs import KnobClass
from repro.dbsim.metrics import METRIC_NAMES, MetricsDelta
from repro.tuners.neural import MLP, Adam

__all__ = ["LabelledWindow", "LearnedThrottleDetector"]

_CLASS_ORDER: tuple[KnobClass, ...] = (
    KnobClass.MEMORY,
    KnobClass.BGWRITER,
    KnobClass.ASYNC_PLANNER,
)


@dataclass(frozen=True)
class LabelledWindow:
    """One training pair: metric vector and the rule engine's verdict."""

    metrics: MetricsDelta
    classes: frozenset[KnobClass]


@dataclass
class _Standardiser:
    mean: np.ndarray = field(default_factory=lambda: np.zeros(0))
    std: np.ndarray = field(default_factory=lambda: np.ones(0))

    def fit(self, x: np.ndarray) -> None:
        self.mean = x.mean(axis=0)
        std = x.std(axis=0)
        self.std = np.where(std > 1e-9, std, 1.0)

    def transform(self, x: np.ndarray) -> np.ndarray:
        return np.clip((x - self.mean) / self.std, -6.0, 6.0)


class LearnedThrottleDetector:
    """Rule-free throttle classifier trained by imitating a rule TDE.

    Parameters
    ----------
    metric_names:
        Metrics forming the feature vector; defaults to everything the
        simulator emits (a learned detector is free to use planner
        metrics the OtterTune agent would not capture).
    hidden:
        Hidden width of the classifier MLP.
    threshold:
        Per-class sigmoid threshold above which a throttle is predicted.
    """

    def __init__(
        self,
        instance_id: str = "svc",
        metric_names: tuple[str, ...] = METRIC_NAMES,
        hidden: int = 32,
        threshold: float = 0.5,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.instance_id = instance_id
        self.metric_names = metric_names
        self.threshold = threshold
        self._rng = make_rng(seed)
        self._net = MLP(
            [len(metric_names), hidden, hidden, len(_CLASS_ORDER)],
            output="sigmoid",
            seed=self._rng,
        )
        self._opt = Adam(self._net.parameters(), lr=3e-3)
        self._standardiser = _Standardiser()
        self.trained = False

    # -- dataset collection -----------------------------------------------------

    @staticmethod
    def shadow(
        rule_tde: ThrottlingDetectionEngine, result: ExecutionResult
    ) -> LabelledWindow:
        """Run the rule TDE on *result* and record the labelled window."""
        report = rule_tde.inspect(result)
        return LabelledWindow(
            metrics=result.metrics,
            classes=frozenset(t.knob_class for t in report.throttles),
        )

    def _encode(self, windows: list[LabelledWindow]) -> tuple[np.ndarray, np.ndarray]:
        x = np.vstack(
            [w.metrics.as_vector(self.metric_names) for w in windows]
        )
        y = np.array(
            [
                [1.0 if cls in w.classes else 0.0 for cls in _CLASS_ORDER]
                for w in windows
            ]
        )
        return x, y

    # -- training -----------------------------------------------------------------

    def fit(
        self,
        windows: list[LabelledWindow],
        epochs: int = 300,
        batch_size: int = 32,
    ) -> float:
        """Train on labelled windows; returns the final mean BCE loss."""
        if len(windows) < 4:
            raise ValueError("need at least 4 labelled windows to train")
        x_raw, y = self._encode(windows)
        self._standardiser.fit(x_raw)
        x = self._standardiser.transform(x_raw)
        n = len(x)
        loss = float("nan")
        for _ in range(epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                pred = self._net(x[idx])
                eps = 1e-7
                loss = float(
                    -np.mean(
                        y[idx] * np.log(pred + eps)
                        + (1 - y[idx]) * np.log(1 - pred + eps)
                    )
                )
                # BCE-with-sigmoid wants dL/dz = pred − y; MLP.backward
                # multiplies by σ'(z) = pred(1−pred) itself, so feed
                # dL/dŷ = (pred − y) / (pred(1−pred)) and the product
                # collapses to the intended logits gradient.
                grad = (pred - y[idx]) / (pred * (1.0 - pred) + eps) / len(idx)
                grads, _ = self._net.backward(grad)
                self._opt.step(grads)
        self.trained = True
        return loss

    # -- inference ---------------------------------------------------------------

    def predict_classes(self, metrics: MetricsDelta) -> set[KnobClass]:
        """Throttle classes predicted for one window's metrics."""
        if not self.trained:
            raise RuntimeError("predict before fit()")
        x = self._standardiser.transform(
            metrics.as_vector(self.metric_names)[None, :]
        )
        probabilities = self._net(x)[0]
        return {
            cls
            for cls, p in zip(_CLASS_ORDER, probabilities)
            if p >= self.threshold
        }

    def inspect(self, result: ExecutionResult) -> list[Throttle]:
        """TDE-compatible inspection: throttles from predicted classes."""
        throttles = []
        for cls in sorted(self.predict_classes(result.metrics), key=lambda c: c.value):
            throttles.append(
                Throttle(
                    instance_id=self.instance_id,
                    workload_id=result.batch.workload_name,
                    knob_class=cls,
                    knobs=tuple(
                        k.name for k in result.config.catalog.by_class(cls)
                    ),
                    reason="learned detector prediction",
                    time_s=result.start_time_s + result.duration_s,
                )
            )
        return throttles

    # -- evaluation --------------------------------------------------------------

    def score(self, windows: list[LabelledWindow]) -> dict[str, float]:
        """Per-class accuracy against rule-engine labels."""
        x_raw, y = self._encode(windows)
        x = self._standardiser.transform(x_raw)
        pred = (self._net(x) >= self.threshold).astype(float)
        return {
            cls.value: float(np.mean(pred[:, i] == y[:, i]))
            for i, cls in enumerate(_CLASS_ORDER)
        }
