"""Normalized entropy over query classes, and the §3.1 throttle filter.

Queries are grouped into classes by the knob their execution stresses
(complex aggregations → working memory, index builds/bulk deletes →
maintenance memory, temp-table work → temp buffers, heavy writes → the
background-writer family, point reads → none). A hash table of class
frequencies is kept per observation window and its *normalized Shannon
entropy* (paper eq. 2) summarises how evenly the classes fire:

    η(X) = −Σ p(x_i)·log(p(x_i)) / log(n)   ∈ [0, 1]

**Terminology note.** The paper's prose (§3.1) describes entropy as "less
when ... all queries are fired with similar proportion", which inverts the
standard definition; its *decision rule*, however — escalate to a plan
upgrade when entropy is high *and* the memory knobs sit at their caps — is
exactly standard entropy semantics (an even spread over throttle classes
means tuning one knob cannot stop the throttles). We implement eq. 2 as
written and the decision rule as stated; see DESIGN.md.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.workloads.query import Query

__all__ = [
    "normalized_entropy",
    "classify_query",
    "QueryClassHistogram",
    "EntropyFilter",
    "QUERY_CLASSES",
]

#: The query classes the §3.1 hash table is keyed by.
QUERY_CLASSES: tuple[str, ...] = (
    "working_memory",
    "maintenance_memory",
    "temp_memory",
    "write_heavy",
    "point",
)

#: Thresholds (MB / KB) above which a query counts as stressing a class.
_SORT_MB_THRESHOLD = 1.0
_WRITE_KB_THRESHOLD = 8.0


def normalized_entropy(counts: Iterable[float]) -> float:
    """Paper eq. 2: Shannon entropy normalised by log(n) into [0, 1].

    *counts* are non-negative class frequencies; zero-count classes
    contribute nothing (lim p→0 of p·log p). Entropy over fewer than two
    classes — or all-zero counts — is defined as 0.
    """
    values = [c for c in counts if c > 0]
    n = len(values)
    if n <= 1:
        return 0.0
    total = float(sum(values))
    # p underflows to 0.0 for denormal counts next to huge ones; such a
    # class contributes nothing (lim p→0 of p·log p = 0).
    probabilities = [c / total for c in values]
    h = -sum(p * math.log(p) for p in probabilities if p > 0.0)
    return min(1.0, h / math.log(n))


def classify_query(query: Query) -> str:
    """The query class whose knob this query stresses most.

    Priority order follows the paper's examples: maintenance operations
    (index create/drop, bulk deletes) and temp-table work are rarer and
    more diagnostic than generic sorts, so they win ties.
    """
    fp = query.footprint
    if fp.maintenance_mb > 0.0:
        return "maintenance_memory"
    if fp.temp_mb > 0.0:
        return "temp_memory"
    if fp.sort_mb >= _SORT_MB_THRESHOLD:
        return "working_memory"
    if fp.write_kb >= _WRITE_KB_THRESHOLD:
        return "write_heavy"
    return "point"


class QueryClassHistogram:
    """The per-window hash table of query-class frequencies (§3.1)."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def observe(self, query: Query) -> str:
        """Classify and count one query; returns the class."""
        cls = classify_query(query)
        self._counts[cls] += 1
        return cls

    def observe_many(self, queries: Iterable[Query]) -> None:
        for query in queries:
            self.observe(query)

    def counts(self) -> dict[str, int]:
        """Frequencies over all defined classes (zero-filled)."""
        return {cls: self._counts.get(cls, 0) for cls in QUERY_CLASSES}

    def entropy(self) -> float:
        """Normalized entropy of the class distribution."""
        return normalized_entropy(self._counts.values())

    def frequency(self, cls: str) -> float:
        """Relative frequency of *cls* (0 if nothing observed)."""
        total = sum(self._counts.values())
        if total == 0:
            return 0.0
        return self._counts.get(cls, 0) / total

    def reset(self) -> None:
        self._counts.clear()


class EntropyFilter:
    """§3.1's escalation filter over consecutive memory throttles.

    After :attr:`trigger_count` consecutive throttles the entropy of the
    query-class histogram is evaluated:

    - entropy ≥ :attr:`entropy_threshold` **and** the implicated knobs at
      their cap → the throttles cannot be tuned away; escalate to a plan
      upgrade and suppress the tuning request;
    - otherwise → predict the throttles will subside; reset the counter
      and wait for the next :attr:`trigger_count` throttles.
    """

    def __init__(
        self, trigger_count: int = 8, entropy_threshold: float = 0.75
    ) -> None:
        if trigger_count < 1:
            raise ValueError("trigger_count must be >= 1")
        if not 0.0 <= entropy_threshold <= 1.0:
            raise ValueError("entropy_threshold must be in [0, 1]")
        self.trigger_count = trigger_count
        self.entropy_threshold = entropy_threshold
        self._consecutive = 0
        self.last_entropy: float | None = None
        self.entropy_hits = 0

    @property
    def consecutive(self) -> int:
        """Current consecutive-throttle count."""
        return self._consecutive

    def record_quiet_window(self) -> None:
        """A window without memory throttles breaks the streak."""
        self._consecutive = 0

    def should_escalate(
        self, histogram: QueryClassHistogram, knobs_at_cap: bool
    ) -> bool:
        """Record one throttle; True if it should become a plan upgrade.

        Call once per memory throttle raised. Only evaluates entropy at
        every :attr:`trigger_count`-th consecutive throttle, per §3.1's
        "if more than 8 throttles are triggered consecutively".
        """
        self._consecutive += 1
        if self._consecutive < self.trigger_count:
            return False
        self._consecutive = 0
        self.last_entropy = histogram.entropy()
        if self.last_entropy >= self.entropy_threshold and knobs_at_cap:
            self.entropy_hits += 1
            return True
        return False
