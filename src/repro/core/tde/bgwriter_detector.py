"""Background-writer throttle detection (§3.2).

The detector compares the live workload's *checkpoint pressure* —
checkpoints per unit time combined with disk write latency — against a
baseline taken from the tuner's experience:

1. the live workload A is mapped onto the most similar historical
   workload B in the shared repository (same mapping the tuner uses);
2. B's baseline is the ratio at its best-throughput sample — the
   configuration a trained tuner recommended — with disk latency read
   back from external monitoring;
3. if A's pressure exceeds B's (with tolerance), the checkpointing
   pattern is worse than the tuner knows is achievable → throttle the
   background-writer knob class.

**Deviation note.** §3.2's text literally divides checkpoints-per-unit-
time *by* disk latency; under that quotient a saturated disk (high
latency) would *suppress* throttles, inverting the detector. We score
checkpoint pressure as the *product* ``rate × latency``, which rises both
when checkpoints fire too often and when their write bursts surge the
disk — the behaviour §3.2's surrounding prose describes. See DESIGN.md.

Vacuum/garbage-collector rounds interfere with checkpoint attribution, so
latency seconds adjacent to vacuum activity are excluded, reproducing the
paper's "neglect the monitoring of checkpointing during the interval when
vacuum/garbage collectors are triggered".

With few samples the mapping is unreliable and the detector may over- or
under-fire; every throttle adds a sample, so precision improves with time
(§3.2's closing observation) — see the mapping ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tde.throttle import Throttle
from repro.dbsim.engine import ExecutionResult
from repro.dbsim.knobs import KnobClass
from repro.tuners.repository import WorkloadRepository
from repro.tuners.workload_mapping import WorkloadMapper

__all__ = ["BgwriterThrottleDetector", "checkpoint_latency_ratio"]

#: Live pressure must exceed baseline by this factor to throttle (guards
#: against monitoring noise).
_RATIO_TOLERANCE = 1.25
#: Seconds around a vacuum round excluded from latency measurement.
_VACUUM_EXCLUSION_S = 2.0
#: Floor for the baseline pressure: a perfectly-tuned system may show no
#: checkpoint writes at all in its measurement window (pressure 0), which
#: must not disable detection — 5% of the WAL volume re-written by
#: checkpoints at 1 ms latency is the weakest pressure still "calm".
_MIN_BASELINE_PRESSURE = 0.05


def checkpoint_latency_ratio(
    checkpoint_write_mb: float, wal_mb: float, disk_latency_ms: float
) -> float:
    """§3.2's checkpoint-pressure score.

    Pressure = (unabsorbed write-back volume / WAL volume) × disk
    latency, both volumes from the same window. "Unabsorbed" = whatever
    the background writer did **not** handle: checkpoint bursts plus
    synchronous backend flushes (a dirty-saturated buffer pool forcing
    backends to write is the same misconfiguration pathology). Three normalisations beyond the
    paper text (see the module docstring): the product with latency
    instead of the literal quotient; volume rather than event count (an
    idle timed checkpoint that wrote nothing is harmless); and WAL
    normalisation, which makes the score *load-invariant* — a baseline
    captured during a 12 000-rps stress session is directly comparable
    with a live 3 300-rps window, because a well-configured write-back
    path absorbs most dirty pages through the background writer at any
    offered rate, while a frantic one funnels them through expensive
    checkpoint bursts.
    """
    if disk_latency_ms <= 0:
        return 0.0
    return (checkpoint_write_mb / max(wal_mb, 1.0)) * disk_latency_ms


@dataclass
class _Baseline:
    workload_id: str
    ratio: float


class BgwriterThrottleDetector:
    """Checkpoint/latency-ratio detector backed by the tuner repository."""

    def __init__(
        self,
        instance_id: str,
        repository: WorkloadRepository,
        window_s: float = 300.0,
        ratio_tolerance: float = _RATIO_TOLERANCE,
    ) -> None:
        self.instance_id = instance_id
        self.repository = repository
        self.window_s = window_s
        self.ratio_tolerance = ratio_tolerance
        self._mapper = WorkloadMapper(repository)
        self.last_baseline: _Baseline | None = None
        self.last_live_ratio: float | None = None

    def baseline_for(self, workload_id: str) -> _Baseline | None:
        """Baseline ratio from the mapped workload's best sample.

        The best-throughput samples of the mapped workload stand for "the
        most optimal points observed ... the best recommended knob sets
        obtained using a trained GPR"; their checkpoint counts and disk
        write latency metrics give the baseline pressure. The target's own
        history participates in the mapping — the tuner's experience
        includes the live system itself.
        """
        mapping = self._mapper.map_workload(workload_id, exclude_target=False)
        source_id = mapping.best_workload_id
        if source_id is None:
            source_id = workload_id
        top = self.repository.top_samples(source_id, 3)
        if not top:
            return None
        pressures = []
        for sample in top:
            latency = sample.metrics["disk_write_latency_ms"]
            if latency <= 0:
                continue
            pressures.append(
                checkpoint_latency_ratio(
                    sample.metrics["buffers_checkpoint_mb"]
                    + sample.metrics["backend_flush_mb"],
                    sample.metrics["wal_mb"],
                    latency,
                )
            )
        if not pressures:
            return None
        baseline = max(_MIN_BASELINE_PRESSURE, sum(pressures) / len(pressures))
        return _Baseline(workload_id=source_id, ratio=baseline)

    def live_ratio(self, result: ExecutionResult) -> float:
        """The live window's pressure, vacuum slots excluded."""
        latency = self._latency_excluding_vacuum(result)
        wal_mb = float(np.sum(result.writeback.wal_write_mb_s))
        return checkpoint_latency_ratio(
            result.writeback.checkpoint_write_mb
            + result.writeback.backend_write_mb,
            wal_mb,
            latency,
        )

    def inspect(self, result: ExecutionResult) -> list[Throttle]:
        """Detect background-writer throttles for one window.

        With no disk telemetry in the window (monitoring gap) there is no
        latency to score pressure with: answer "no throttle" rather than
        fabricate a ratio from missing data.
        """
        if len(result.data_disk.write_latency) == 0:
            return []
        baseline = self.baseline_for(result.batch.workload_name)
        self.last_baseline = baseline
        if baseline is None or baseline.ratio <= 0:
            return []
        live = self.live_ratio(result)
        self.last_live_ratio = live
        if live <= baseline.ratio * self.ratio_tolerance:
            return []
        knob_names = tuple(
            k.name for k in result.config.catalog.by_class(KnobClass.BGWRITER)
        )
        return [
            Throttle(
                instance_id=self.instance_id,
                workload_id=result.batch.workload_name,
                knob_class=KnobClass.BGWRITER,
                knobs=knob_names,
                reason=(
                    f"checkpoint/latency ratio {live:.4f} exceeds baseline "
                    f"{baseline.ratio:.4f} of mapped workload "
                    f"{baseline.workload_id!r}"
                ),
                time_s=result.start_time_s + result.duration_s,
            )
        ]

    @staticmethod
    def _latency_excluding_vacuum(result: ExecutionResult) -> float:
        series = result.data_disk.write_latency
        vacuum_times = result.writeback.vacuum_times
        if not vacuum_times:
            return series.mean()
        times = series.times
        values = series.values
        keep = np.ones(len(times), dtype=bool)
        for v in vacuum_times:
            keep &= np.abs(times - v) > _VACUUM_EXCLUSION_S
        if not keep.any():
            return series.mean()
        return float(np.mean(values[keep]))
