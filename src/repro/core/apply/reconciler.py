"""The reconciler: eventual consistency for half-applied configs (§4).

Applying a recommendation touches several stores non-atomically (slave
nodes, master node, orchestrator persistence). "A reconciler process is
defined [which] keeps a watch on config of the database system running on
the Master node. If the difference in config is observed for a threshold
time-period (watcher timeout), the reconciliation occurs and the config
stored in the persistence storage is applied to all nodes."

Reconciliation itself can fail — a node may be down or its adapter apply
may crash. Each node gets a bounded number of attempts per tick (crashed
nodes are healed between attempts); a node that still cannot be restored
is reported in the action and retried at the *next* tick, so one bad node
can never wedge the reconciler in an unbounded loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.common.recording import NULL_RECORDER, Recorder
from repro.core.apply.adapters import DatabaseAdapter, adapter_for
from repro.core.apply.orchestrator import ServiceOrchestrator
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.replication import ReplicatedService

__all__ = ["ConfigIncidentLog", "ReconcileAction", "Reconciler"]


class ConfigIncidentLog(Protocol):
    """Quarantine seam the safety governor implements.

    Reconciliation restores whatever persistence holds — but persistence
    can briefly hold a config the governor just auto-reverted (the
    promotion was persisted in the same window the regression was
    observed, or the revert apply itself failed). Restoring it would
    undo the revert, so the reconciler asks the incident log first and
    applies the replacement instead.
    """

    def quarantined_replacement(
        self, instance_id: str, config: KnobConfiguration, now_s: float
    ) -> KnobConfiguration | None:
        """Replacement for quarantined *config*, or ``None`` if clean."""
        ...


@dataclass(frozen=True)
class ReconcileAction:
    """What one reconciler tick did for one instance."""

    instance_id: str
    drift_detected: bool
    reconciled: bool
    drift_age_s: float
    #: Nodes whose config the tick restored from persistence.
    nodes_restored: int = 0
    #: Node indices (slaves-first order) still failing after all attempts.
    failed_nodes: tuple[int, ...] = ()


class Reconciler:
    """Watches master configs against persistence and rolls back drift.

    Parameters
    ----------
    orchestrator:
        Source of persisted (last committed) configurations.
    watcher_timeout_s:
        Drift older than this triggers reconciliation.
    adapter:
        Fixed adapter used for restores (default: per service flavor).
    max_attempts_per_node:
        Adapter applies per node per tick before giving up until the
        next tick — the hard bound that keeps reconciliation finite.
    incident_log:
        Optional :class:`ConfigIncidentLog` (the safety governor).
        When the persisted config is under quarantine there, the tick
        re-persists and restores the incident's replacement instead of
        re-applying a just-reverted config.
    """

    def __init__(
        self,
        orchestrator: ServiceOrchestrator,
        watcher_timeout_s: float = 120.0,
        adapter: DatabaseAdapter | None = None,
        max_attempts_per_node: int = 2,
        recorder: Recorder | None = None,
        incident_log: ConfigIncidentLog | None = None,
    ) -> None:
        if watcher_timeout_s <= 0:
            raise ValueError("watcher_timeout_s must be positive")
        if max_attempts_per_node < 1:
            raise ValueError("max_attempts_per_node must be >= 1")
        self.orchestrator = orchestrator
        self.watcher_timeout_s = watcher_timeout_s
        self.max_attempts_per_node = max_attempts_per_node
        self._adapter = adapter
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.incident_log = incident_log
        self._drift_since: dict[str, float] = {}

    def tick(
        self, instance_id: str, service: ReplicatedService, now_s: float
    ) -> ReconcileAction:
        """One watch cycle for *instance_id* at simulated time *now_s*."""
        persisted = self.orchestrator.persisted_config(instance_id)
        if self.incident_log is not None:
            replacement = self.incident_log.quarantined_replacement(
                instance_id, persisted, now_s
            )
            if replacement is not None:
                # Persistence holds a config the governor reverted within
                # its quarantine window: converge on the restored config,
                # never back onto the reverted one.
                self.orchestrator.persist_config(instance_id, replacement)
                persisted = replacement
                self.recorder.event(
                    "reconcile.quarantine_swap", instance=instance_id
                )
                self.recorder.inc(
                    "repro_reconcile_quarantine_swaps_total",
                    instance=instance_id,
                )
        drifted = service.master.config != persisted or not service.configs_consistent()
        if not drifted:
            self._drift_since.pop(instance_id, None)
            return ReconcileAction(instance_id, False, False, 0.0)

        since = self._drift_since.setdefault(instance_id, now_s)
        age = now_s - since
        if age < self.watcher_timeout_s:
            return ReconcileAction(instance_id, True, False, age)

        # Timeout hit: restore persistence to every node (reload is enough
        # for the tunable knobs; restart-required drift waits for downtime).
        adapter = (
            self._adapter
            if self._adapter is not None
            else adapter_for(service.flavor)
        )
        restored = 0
        failed: list[int] = []
        for index, node in enumerate(service.nodes):
            ok = False
            for _ in range(self.max_attempts_per_node):
                if node.crashed:
                    node.heal()
                result = adapter.apply(node, persisted, mode="reload")
                if result.crashed:
                    continue
                if result.ok:
                    ok = True
                    break
            if ok:
                restored += 1
            else:
                failed.append(index)
        self.recorder.event(
            "reconcile.restore",
            instance=instance_id,
            drift_age_s=age,
            restored=restored,
            failed=len(failed),
        )
        self.recorder.inc("repro_reconciliations_total", instance=instance_id)
        if failed:
            # Partial restore: keep the drift clock running so the next
            # tick retries immediately instead of waiting a fresh timeout.
            self.recorder.inc(
                "repro_reconcile_failed_nodes_total",
                instance=instance_id,
                value=float(len(failed)),
            )
            return ReconcileAction(
                instance_id, True, False, age, restored, tuple(failed)
            )
        self._drift_since.pop(instance_id, None)
        return ReconcileAction(instance_id, True, True, age, restored)
