"""The reconciler: eventual consistency for half-applied configs (§4).

Applying a recommendation touches several stores non-atomically (slave
nodes, master node, orchestrator persistence). "A reconciler process is
defined [which] keeps a watch on config of the database system running on
the Master node. If the difference in config is observed for a threshold
time-period (watcher timeout), the reconciliation occurs and the config
stored in the persistence storage is applied to all nodes."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.apply.adapters import adapter_for
from repro.core.apply.orchestrator import ServiceOrchestrator
from repro.dbsim.replication import ReplicatedService

__all__ = ["ReconcileAction", "Reconciler"]


@dataclass(frozen=True)
class ReconcileAction:
    """What one reconciler tick did for one instance."""

    instance_id: str
    drift_detected: bool
    reconciled: bool
    drift_age_s: float


class Reconciler:
    """Watches master configs against persistence and rolls back drift."""

    def __init__(
        self,
        orchestrator: ServiceOrchestrator,
        watcher_timeout_s: float = 120.0,
    ) -> None:
        if watcher_timeout_s <= 0:
            raise ValueError("watcher_timeout_s must be positive")
        self.orchestrator = orchestrator
        self.watcher_timeout_s = watcher_timeout_s
        self._drift_since: dict[str, float] = {}

    def tick(
        self, instance_id: str, service: ReplicatedService, now_s: float
    ) -> ReconcileAction:
        """One watch cycle for *instance_id* at simulated time *now_s*."""
        persisted = self.orchestrator.persisted_config(instance_id)
        drifted = service.master.config != persisted or not service.configs_consistent()
        if not drifted:
            self._drift_since.pop(instance_id, None)
            return ReconcileAction(instance_id, False, False, 0.0)

        since = self._drift_since.setdefault(instance_id, now_s)
        age = now_s - since
        if age < self.watcher_timeout_s:
            return ReconcileAction(instance_id, True, False, age)

        # Timeout hit: restore persistence to every node (reload is enough
        # for the tunable knobs; restart-required drift waits for downtime).
        adapter = adapter_for(service.flavor)
        for node in service.nodes:
            adapter.apply(node, persisted, mode="reload")
        self._drift_since.pop(instance_id, None)
        return ReconcileAction(instance_id, True, True, age)
