"""Applying recommendations: adapters, DFA, orchestrator, reconciler (§4)."""

from repro.core.apply.adapters import (
    DatabaseAdapter,
    MySQLAdapter,
    NodeApplyResult,
    PostgresAdapter,
    adapter_for,
)
from repro.core.apply.dfa import ApplyReport, CanaryContext, DataFederationAgent
from repro.core.apply.nontunable import DowntimeDecision, NonTunableKnobPolicy
from repro.core.apply.orchestrator import (
    AlreadyRegistered,
    DowntimeWindow,
    ServiceOrchestrator,
)
from repro.core.apply.reconciler import (
    ConfigIncidentLog,
    ReconcileAction,
    Reconciler,
)
from repro.core.apply.restart import (
    ApplyStrategy,
    FullRestartStrategy,
    PeriodicReloadDriver,
    ReloadSignalStrategy,
    SocketActivationStrategy,
)

__all__ = [
    "AlreadyRegistered",
    "ApplyReport",
    "ApplyStrategy",
    "CanaryContext",
    "ConfigIncidentLog",
    "DataFederationAgent",
    "DatabaseAdapter",
    "DowntimeDecision",
    "DowntimeWindow",
    "FullRestartStrategy",
    "MySQLAdapter",
    "NodeApplyResult",
    "NonTunableKnobPolicy",
    "PeriodicReloadDriver",
    "PostgresAdapter",
    "ReconcileAction",
    "Reconciler",
    "ReloadSignalStrategy",
    "ServiceOrchestrator",
    "SocketActivationStrategy",
    "adapter_for",
]
