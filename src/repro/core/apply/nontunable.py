"""Non-tunable knob policy: buffer-pool sizing at scheduled downtime (§4).

"Non-tunable knobs" cannot change without a database restart, so they are
only adjusted during the pre-announced maintenance window. The canonical
case is the buffer pool, and §4 gives the policy this module implements:

- the optimum comes from the working page set (Curino et al. [5]); when
  the working set fits under the buffer's upper limit, size the buffer to
  it;
- when the working set exceeds the limit, look at the 99th percentile of
  the buffer values recommended since the last downtime: if it is lower
  than the current value **and** at least one entropy hit occurred (the
  tunable knobs are starved for room), reduce the buffer to make room;
  otherwise drift back up towards the average recommended value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.director.config_repository import ConfigRepository
from repro.dbsim.config import KnobConfiguration

__all__ = ["DowntimeDecision", "NonTunableKnobPolicy"]

#: Upper share of the DB memory limit the buffer pool may occupy.
_BUFFER_SHARE = 0.7


@dataclass(frozen=True)
class DowntimeDecision:
    """The policy's verdict for one downtime window."""

    buffer_knob: str
    old_value_mb: float
    new_value_mb: float
    rule: str

    @property
    def changed(self) -> bool:
        return self.new_value_mb != self.old_value_mb


class NonTunableKnobPolicy:
    """§4's scheduled-downtime buffer-pool resizing policy."""

    def __init__(
        self,
        config_repository: ConfigRepository,
        buffer_share: float = _BUFFER_SHARE,
    ) -> None:
        if not 0.0 < buffer_share <= 1.0:
            raise ValueError("buffer_share must be in (0, 1]")
        self.configs = config_repository
        self.buffer_share = buffer_share

    def decide(
        self,
        instance_id: str,
        current: KnobConfiguration,
        working_set_mb: float,
        memory_limit_mb: float,
        entropy_hits: int,
        last_downtime_s: float,
    ) -> DowntimeDecision:
        """Choose the buffer value to restart with at this downtime."""
        buffer_name = (
            "shared_buffers"
            if current.catalog.flavor == "postgres"
            else "innodb_buffer_pool_size"
        )
        knob = current.catalog.get(buffer_name)
        old = current[buffer_name]
        max_limit = self.buffer_share * memory_limit_mb

        if working_set_mb <= max_limit:
            new = knob.clamp(min(working_set_mb, max_limit))
            return DowntimeDecision(buffer_name, old, new, rule="working_set")

        p99 = self.configs.knob_percentile(
            instance_id, buffer_name, 99.0, since_s=last_downtime_s
        )
        if p99 is None:
            new = knob.clamp(min(old, max_limit))
            return DowntimeDecision(buffer_name, old, new, rule="no_history")

        if p99 < old and entropy_hits >= 1:
            # Tunable knobs are starved; shrink the buffer to make room.
            new = knob.clamp(p99)
            return DowntimeDecision(
                buffer_name, old, new, rule="reduce_p99_entropy_hit"
            )

        history = [
            v.config[buffer_name]
            for v in self.configs.history(instance_id)
            if v.timestamp_s >= last_downtime_s
        ]
        average = float(np.mean(history)) if history else old
        new = knob.clamp(min(max(average, old), max_limit))
        return DowntimeDecision(
            buffer_name, old, new, rule="increase_toward_average"
        )
