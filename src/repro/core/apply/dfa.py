"""Data Federation Agent: slave-first configuration apply (§4).

"In case of multiple nodes maintaining high availability, the
recommendations are first applied to the Slave node(s). If the process
crashes in the Slave node, the config recommendations are rejected. Thus,
it is ensured that the Master node is up ... After the config
recommendations are applied to the Master node, the recommendations are
stored in the persistence storage used by the service-orchestrator."

The DFA implements exactly that protocol against a
:class:`~repro.dbsim.replication.ReplicatedService`, healing any slave it
crashed and reporting rejection instead of propagating the failure.

Per-node applies are failure-hardened: a *transient* adapter failure
(``ok=False, crashed=False`` — connection refused, API flake) is retried
with exponential backoff up to ``max_attempts`` times within a
``apply_deadline_s`` budget of simulated seconds. Both bounds are hard —
there is no unbounded retry loop anywhere in the apply path. A *crash*
is never retried: §4's protocol treats it as a definitive rejection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.monitoring import MonitoringAgent
from repro.common.recording import NULL_RECORDER, Recorder
from repro.core.apply.adapters import DatabaseAdapter, NodeApplyResult, adapter_for
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import DatabaseCrashed, SimulatedDatabase
from repro.dbsim.replication import ReplicatedService
from repro.workloads.generator import WorkloadBatch

__all__ = ["ApplyReport", "CanaryContext", "DataFederationAgent"]


@dataclass
class CanaryContext:
    """Inputs for a canary-on-slave evaluation (safe online tuning).

    When passed to :meth:`DataFederationAgent.apply`, the first slave
    becomes a canary: it replays *batch* under the incumbent config,
    then under the candidate, and the candidate is only promoted to the
    remaining nodes if its throughput reaches ``threshold`` times the
    incumbent's. Both replays' telemetry is ingested into *monitor*
    (the §2 external-monitoring seam) and the throughput comparison is
    read back from that series, so the decision flows through the same
    pipeline every other observer uses. Replaying the same batch twice
    on the same node makes the comparison self-calibrating: cold-cache
    and background-writer state affect both runs alike.
    """

    batch: WorkloadBatch
    monitor: MonitoringAgent | None = None
    threshold: float = 0.85


@dataclass
class ApplyReport:
    """Outcome of one fleet-wide apply attempt."""

    applied: bool
    rejected_at: str = ""
    error: str = ""
    skipped_restart_required: tuple[str, ...] = ()
    nodes_updated: int = 0
    healed_slaves: list[int] = field(default_factory=list)
    #: Total adapter calls across nodes, retries included.
    attempts: int = 0
    #: Simulated seconds spent waiting in retry backoff.
    backoff_s: float = 0.0
    #: True when the apply was abandoned on the deadline, not a crash.
    deadline_exceeded: bool = False
    #: True when a canary phase ran on the first slave.
    canary_evaluated: bool = False
    #: True when the canary comparison rejected the candidate.
    canary_rejected: bool = False
    #: Canary throughput under the incumbent config (tps).
    canary_baseline_tps: float = 0.0
    #: Canary throughput under the candidate config (tps).
    canary_tps: float = 0.0


class DataFederationAgent:
    """Applies recommendations to all nodes of a service, slave-first.

    Parameters
    ----------
    adapter:
        Fixed adapter to use (default: resolve per service flavor).
    max_attempts:
        Adapter calls per node before giving up on transient failures.
    backoff_s:
        First retry's backoff in simulated seconds; doubles per retry.
    apply_deadline_s:
        Budget of simulated backoff seconds for one fleet-wide apply;
        exceeding it abandons the apply with ``deadline_exceeded``.
    recorder:
        Observability seam (:mod:`repro.common.recording`): each apply
        opens a ``dfa.apply`` span, retries emit ``dfa.retry`` events and
        outcomes land in the metrics registry. Default: no-op.
    """

    def __init__(
        self,
        adapter: DatabaseAdapter | None = None,
        max_attempts: int = 3,
        backoff_s: float = 2.0,
        apply_deadline_s: float = 60.0,
        recorder: Recorder | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff_s <= 0:
            raise ValueError("backoff_s must be positive")
        if apply_deadline_s <= 0:
            raise ValueError("apply_deadline_s must be positive")
        self._adapter = adapter
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.apply_deadline_s = apply_deadline_s
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    def _resolve_adapter(self, service: ReplicatedService) -> DatabaseAdapter:
        if self._adapter is not None:
            return self._adapter
        return adapter_for(service.flavor)

    def _apply_node(
        self,
        adapter: DatabaseAdapter,
        node: SimulatedDatabase,
        config: KnobConfiguration,
        mode: str,
        report: ApplyReport,
        node_name: str,
        instance_id: str,
    ) -> NodeApplyResult:
        """One node's apply with bounded retry on transient failures."""
        result = adapter.apply(node, config, mode=mode)
        report.attempts += 1
        attempt = 1
        while (
            not result.ok
            and not result.crashed
            and attempt < self.max_attempts
            and report.backoff_s < self.apply_deadline_s
        ):
            report.backoff_s += self.backoff_s * 2.0 ** (attempt - 1)
            self.recorder.event(
                "dfa.retry",
                instance=instance_id,
                node=node_name,
                attempt=attempt,
                error=result.error,
            )
            result = adapter.apply(node, config, mode=mode)
            report.attempts += 1
            attempt += 1
        return result

    def apply(
        self,
        service: ReplicatedService,
        config: KnobConfiguration,
        mode: str = "reload",
        instance_id: str = "",
        canary: CanaryContext | None = None,
    ) -> ApplyReport:
        """Apply *config* slave-first; reject on any slave crash.

        A crashed slave is healed (restarted with its previous
        configuration) before returning, so rejection leaves the service
        in its pre-apply state. Transient failures are retried per node
        (see class docstring); running out of attempts or deadline
        abandons the apply the same way a slave crash does, rolling
        already-updated slaves back.

        With a :class:`CanaryContext` (and at least one slave), the
        first slave is evaluated as a canary before anything else is
        touched; a candidate that fails the throughput comparison is
        rejected with ``rejected_at="canary"`` and the canary slave is
        restored to the incumbent config. Without slaves the canary
        phase is skipped (there is nothing to sacrifice).

        *instance_id* only labels trace spans and metrics — the service
        itself carries no identity, so callers that have one pass it in.
        """
        with self.recorder.span(
            "dfa.apply", instance=instance_id, mode=mode
        ) as span:
            report = self._apply(service, config, mode, instance_id, canary)
            span.set(
                applied=report.applied,
                rejected_at=report.rejected_at,
                attempts=report.attempts,
                nodes_updated=report.nodes_updated,
            )
            if report.canary_evaluated:
                span.set(
                    canary_rejected=report.canary_rejected,
                    canary_baseline_tps=report.canary_baseline_tps,
                    canary_tps=report.canary_tps,
                )
        outcome = (
            "applied"
            if report.applied
            else ("deadline" if report.deadline_exceeded else "rejected")
        )
        self.recorder.inc(
            "repro_applies_total", instance=instance_id, outcome=outcome
        )
        if report.canary_rejected:
            self.recorder.inc(
                "repro_canary_rejections_total", instance=instance_id
            )
        if report.backoff_s > 0.0:
            self.recorder.observe(
                "repro_apply_backoff_seconds", report.backoff_s
            )
        return report

    def _canary(
        self,
        adapter: DatabaseAdapter,
        service: ReplicatedService,
        config: KnobConfiguration,
        mode: str,
        report: ApplyReport,
        canary: CanaryContext,
        instance_id: str,
    ) -> bool:
        """Evaluate *config* on the first slave; True means promote.

        The incumbent replay runs first (the slave already carries that
        config), the candidate replay second; ordering is fixed so the
        comparison is deterministic. Any crash — during the apply or
        either replay — is a definitive rejection, mirroring §4's
        slave-crash semantics; the slave is healed and restored.
        """
        node = service.slaves[0]
        previous = service.master.config
        report.canary_evaluated = True

        def replay() -> float | None:
            try:
                result = node.run(canary.batch)
            except DatabaseCrashed:
                return None
            if canary.monitor is not None:
                canary.monitor.ingest(result)
                return canary.monitor.throughput.values[-1]
            return result.throughput

        baseline_tps = replay()
        if baseline_tps is None:
            node.heal()
            report.healed_slaves.append(0)
            report.rejected_at = "canary"
            report.error = "canary slave crashed replaying the incumbent"
            return False
        report.canary_baseline_tps = baseline_tps

        result = self._apply_node(
            adapter, node, config, mode, report, "slave0", instance_id
        )
        if result.crashed or not result.ok:
            if result.crashed:
                node.heal()
                report.healed_slaves.append(0)
            report.rejected_at = "slave0"
            report.error = result.error
            report.deadline_exceeded = not result.crashed
            return False
        report.skipped_restart_required = result.skipped_restart_required

        candidate_tps = replay()
        if candidate_tps is None:
            node.heal()
            report.healed_slaves.append(0)
            adapter.apply(node, previous, mode="reload")
            report.rejected_at = "canary"
            report.error = "canary slave crashed under the candidate config"
            return False
        report.canary_tps = candidate_tps

        if candidate_tps < canary.threshold * baseline_tps:
            report.canary_rejected = True
            report.rejected_at = "canary"
            report.error = (
                f"canary regression: {candidate_tps:.1f} tps < "
                f"{canary.threshold:.2f} x {baseline_tps:.1f} tps"
            )
            self.recorder.event(
                "dfa.canary_reject",
                instance=instance_id,
                baseline_tps=baseline_tps,
                candidate_tps=candidate_tps,
            )
            adapter.apply(node, previous, mode="reload")
            return False
        report.nodes_updated += 1
        return True

    def _apply(
        self,
        service: ReplicatedService,
        config: KnobConfiguration,
        mode: str,
        instance_id: str,
        canary: CanaryContext | None = None,
    ) -> ApplyReport:
        adapter = self._resolve_adapter(service)
        report = ApplyReport(applied=False)
        previous = service.master.config
        canaried = canary is not None and bool(service.slaves)
        if canaried and canary is not None:
            if not self._canary(
                adapter, service, config, mode, report, canary, instance_id
            ):
                return report
        for index, slave in enumerate(service.slaves):
            if canaried and index == 0:
                continue  # the canary slave already carries the candidate
            result = self._apply_node(
                adapter, slave, config, mode, report, f"slave{index}", instance_id
            )
            if result.crashed or not result.ok:
                if result.crashed:
                    slave.heal()
                    report.healed_slaves.append(index)
                report.rejected_at = f"slave{index}"
                report.error = result.error
                report.deadline_exceeded = not result.crashed
                # Roll earlier slaves back so rejection leaves the whole
                # service on its pre-apply configuration (the reconciler
                # would converge them eventually; do it now).
                for updated in service.slaves[:index]:
                    adapter.apply(updated, previous, mode="reload")
                return report
            report.nodes_updated += 1
            report.skipped_restart_required = result.skipped_restart_required

        result = self._apply_node(
            adapter, service.master, config, mode, report, "master", instance_id
        )
        if result.crashed or not result.ok:
            if result.crashed:
                # Master down: heal it and report; the reconciler will
                # restore slave configs from persistence.
                service.master.heal()
            report.rejected_at = "master"
            report.error = result.error
            report.deadline_exceeded = not result.crashed
            return report
        report.nodes_updated += 1
        report.skipped_restart_required = result.skipped_restart_required
        report.applied = True
        return report
