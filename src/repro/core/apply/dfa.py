"""Data Federation Agent: slave-first configuration apply (§4).

"In case of multiple nodes maintaining high availability, the
recommendations are first applied to the Slave node(s). If the process
crashes in the Slave node, the config recommendations are rejected. Thus,
it is ensured that the Master node is up ... After the config
recommendations are applied to the Master node, the recommendations are
stored in the persistence storage used by the service-orchestrator."

The DFA implements exactly that protocol against a
:class:`~repro.dbsim.replication.ReplicatedService`, healing any slave it
crashed and reporting rejection instead of propagating the failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.apply.adapters import DatabaseAdapter, adapter_for
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.replication import ReplicatedService

__all__ = ["ApplyReport", "DataFederationAgent"]


@dataclass
class ApplyReport:
    """Outcome of one fleet-wide apply attempt."""

    applied: bool
    rejected_at: str = ""
    error: str = ""
    skipped_restart_required: tuple[str, ...] = ()
    nodes_updated: int = 0
    healed_slaves: list[int] = field(default_factory=list)


class DataFederationAgent:
    """Applies recommendations to all nodes of a service, slave-first."""

    def __init__(self, adapter: DatabaseAdapter | None = None) -> None:
        self._adapter = adapter

    def _resolve_adapter(self, service: ReplicatedService) -> DatabaseAdapter:
        if self._adapter is not None:
            return self._adapter
        return adapter_for(service.flavor)

    def apply(
        self,
        service: ReplicatedService,
        config: KnobConfiguration,
        mode: str = "reload",
    ) -> ApplyReport:
        """Apply *config* slave-first; reject on any slave crash.

        A crashed slave is healed (restarted with its previous
        configuration) before returning, so rejection leaves the service
        in its pre-apply state.
        """
        adapter = self._resolve_adapter(service)
        report = ApplyReport(applied=False)
        previous = service.master.config
        for index, slave in enumerate(service.slaves):
            result = adapter.apply(slave, config, mode=mode)
            if result.crashed:
                slave.heal()
                report.healed_slaves.append(index)
                report.rejected_at = f"slave{index}"
                report.error = result.error
                # Roll earlier slaves back so rejection leaves the whole
                # service on its pre-apply configuration (the reconciler
                # would converge them eventually; do it now).
                for updated in service.slaves[:index]:
                    adapter.apply(updated, previous, mode="reload")
                return report
            report.nodes_updated += 1
            report.skipped_restart_required = result.skipped_restart_required

        result = adapter.apply(service.master, config, mode=mode)
        if result.crashed:
            # Master down: heal it and report; the reconciler will restore
            # slave configs from persistence.
            service.master.heal()
            report.rejected_at = "master"
            report.error = result.error
            return report
        report.nodes_updated += 1
        report.skipped_restart_required = result.skipped_restart_required
        report.applied = True
        return report
