"""Apply strategies: reload signals vs socket activation (§4, Fig. 7).

Two ways to make a running database pick up new knob values without a
visible outage:

- **Socket activation** (systemd): restart the process while systemd holds
  the listening socket; requests are cached, not refused — "however this
  method only caches the requests but causes a lot of jitter and
  performance degradation".
- **Reload signals** (SIGHUP / SET GLOBAL): apply tunable knobs in place —
  "we observe very minimal jitter in the performance of the database",
  even at a reload every 20 seconds (Fig. 7).

:class:`PeriodicReloadDriver` reproduces the Fig. 7 protocol: run a
workload while firing the chosen strategy at a fixed frequency and
collect the IOPS series for comparison.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.common.timeseries import TimeSeries
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import ExecutionResult, SimulatedDatabase
from repro.workloads.generator import WorkloadGenerator

__all__ = [
    "ApplyStrategy",
    "ReloadSignalStrategy",
    "SocketActivationStrategy",
    "FullRestartStrategy",
    "PeriodicReloadDriver",
]


class ApplyStrategy(abc.ABC):
    """How configuration changes reach a running node."""

    name: str

    @abc.abstractmethod
    def apply(self, node: SimulatedDatabase, config: KnobConfiguration) -> None:
        """Push *config* to *node*."""


class ReloadSignalStrategy(ApplyStrategy):
    """SIGHUP-style reload: tunable knobs only, minimal jitter."""

    name = "reload_signal"

    def apply(self, node: SimulatedDatabase, config: KnobConfiguration) -> None:
        node.apply_config(config, mode="reload")


class SocketActivationStrategy(ApplyStrategy):
    """Restart behind a systemd socket: all knobs, cached-request jitter."""

    name = "socket_activation"

    def apply(self, node: SimulatedDatabase, config: KnobConfiguration) -> None:
        node.apply_config(config, mode="socket")


class FullRestartStrategy(ApplyStrategy):
    """Plain restart: all knobs, full downtime (scheduled windows only)."""

    name = "full_restart"

    def apply(self, node: SimulatedDatabase, config: KnobConfiguration) -> None:
        node.apply_config(config, mode="restart")


@dataclass
class ReloadRunReport:
    """Outcome of one periodic-reload run."""

    iops: TimeSeries
    throughput_tps: list[float] = field(default_factory=list)
    reloads_fired: int = 0

    @property
    def mean_tps(self) -> float:
        if not self.throughput_tps:
            return 0.0
        return sum(self.throughput_tps) / len(self.throughput_tps)


class PeriodicReloadDriver:
    """Fig. 7 harness: workload + periodic config re-apply.

    Runs *workload* on *db* in windows of ``reload_period_s`` seconds,
    re-applying the node's own current configuration through *strategy*
    at every window boundary (a no-op change — the point is the apply
    mechanism's QoS cost, not new knob values).
    """

    def __init__(
        self,
        db: SimulatedDatabase,
        workload: WorkloadGenerator,
        strategy: ApplyStrategy | None,
        reload_period_s: float = 20.0,
    ) -> None:
        if reload_period_s <= 0:
            raise ValueError("reload_period_s must be positive")
        self.db = db
        self.workload = workload
        self.strategy = strategy
        self.reload_period_s = reload_period_s

    def run(self, total_duration_s: float) -> ReloadRunReport:
        """Run for *total_duration_s*, returning the stitched IOPS series."""
        if total_duration_s <= 0:
            raise ValueError("total_duration_s must be positive")
        report = ReloadRunReport(iops=TimeSeries("data.iops", "ops/s"))
        elapsed = 0.0
        while elapsed < total_duration_s:
            window = min(self.reload_period_s, total_duration_s - elapsed)
            result: ExecutionResult = self.db.run(
                self.workload.batch(window, start_time_s=self.db.clock_s)
            )
            report.iops.extend(iter(result.data_disk.iops))
            report.throughput_tps.append(result.throughput)
            elapsed += window
            if self.strategy is not None and elapsed < total_duration_s:
                self.strategy.apply(self.db, self.db.config)
                report.reloads_fired += 1
        return report
