"""DFA adapters: per-DBMS connectors used to apply configurations.

"The DFA has multiple adapter implementations to get connected to various
kinds of database services" (§2). An adapter knows how to push a
configuration to one node of one DBMS flavor via the chosen apply method,
and reports crashes instead of raising, so the DFA's slave-first protocol
can react.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import DatabaseCrashed, SimulatedDatabase

__all__ = ["NodeApplyResult", "DatabaseAdapter", "PostgresAdapter", "MySQLAdapter", "adapter_for"]


@dataclass(frozen=True)
class NodeApplyResult:
    """Outcome of applying a config to one node."""

    ok: bool
    crashed: bool
    skipped_restart_required: tuple[str, ...]
    error: str = ""


class DatabaseAdapter(abc.ABC):
    """Connector for one DBMS flavor."""

    flavor: str

    def apply(
        self,
        node: SimulatedDatabase,
        config: KnobConfiguration,
        mode: str = "reload",
    ) -> NodeApplyResult:
        """Apply *config* to *node*; never raises on crash."""
        if node.flavor != self.flavor:
            raise ValueError(
                f"{type(self).__name__} cannot drive a {node.flavor!r} node"
            )
        try:
            outcome = node.apply_config(config, mode=mode)
        except DatabaseCrashed as exc:
            return NodeApplyResult(
                ok=False, crashed=True, skipped_restart_required=(), error=str(exc)
            )
        return NodeApplyResult(
            ok=True,
            crashed=False,
            skipped_restart_required=tuple(outcome.skipped_restart_required),
        )

    def read_config(self, node: SimulatedDatabase) -> KnobConfiguration:
        """Current configuration of *node* (the reconciler's watch input)."""
        return node.config


class PostgresAdapter(DatabaseAdapter):
    """Adapter for PostgreSQL-flavoured nodes (SIGHUP reload semantics)."""

    flavor = "postgres"


class MySQLAdapter(DatabaseAdapter):
    """Adapter for MySQL-flavoured nodes (SET GLOBAL reload semantics)."""

    flavor = "mysql"


def adapter_for(flavor: str) -> DatabaseAdapter:
    """Adapter instance for *flavor*."""
    if flavor == "postgres":
        return PostgresAdapter()
    if flavor == "mysql":
        return MySQLAdapter()
    raise ValueError(f"no adapter for DBMS flavor {flavor!r}")
