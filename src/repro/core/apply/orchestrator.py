"""Service Orchestrator: lifecycle, credentials, persisted configs (§2, §4).

The orchestrator "is responsible for performing all life-cycle operations
of service instances and maintains credentials"; on any re-deployment it
"must re-deploy the system with the updated config of the database"
retrieved from its persistence storage. It also owns the scheduled
maintenance downtime windows during which restart-required (non-tunable)
knobs may change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.provisioner import Credentials, ServiceDeployment
from repro.common.recording import NULL_RECORDER, Recorder
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import DatabaseCrashed

__all__ = ["AlreadyRegistered", "DowntimeWindow", "ServiceOrchestrator"]


class AlreadyRegistered(ValueError):
    """Raised when ``register`` would clobber a known instance's state.

    Registering resets the persisted configuration to whatever the
    deployment's master currently runs — for an instance the orchestrator
    already manages that silently discards the persisted (tuned) config
    the reconciler and redeploy path depend on. Use :meth:`adopt` when
    re-adoption is genuinely intended.
    """


@dataclass(frozen=True)
class DowntimeWindow:
    """A pre-announced maintenance window."""

    start_s: float
    duration_s: float

    def contains(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.start_s + self.duration_s


class ServiceOrchestrator:
    """Per-landscape orchestrator over provisioned deployments."""

    def __init__(
        self,
        downtime_period_s: float = 7 * 86_400.0,
        recorder: Recorder | None = None,
    ) -> None:
        self.downtime_period_s = downtime_period_s
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._deployments: dict[str, ServiceDeployment] = {}
        self._persisted: dict[str, KnobConfiguration] = {}
        self._last_downtime_s: dict[str, float] = {}

    # -- lifecycle ---------------------------------------------------------------

    def register(self, deployment: ServiceDeployment) -> None:
        """Adopt a new deployment; its current config becomes the persisted one.

        Raises :class:`AlreadyRegistered` for an instance id the
        orchestrator already manages: overwriting would silently replace
        the persisted (tuned) configuration with whatever the master node
        happens to run right now. Re-adoption must be explicit — see
        :meth:`adopt`.
        """
        if deployment.instance_id in self._deployments:
            raise AlreadyRegistered(
                f"instance {deployment.instance_id!r} is already registered; "
                "use adopt() to replace it explicitly"
            )
        self.adopt(deployment)

    def adopt(self, deployment: ServiceDeployment) -> None:
        """(Re-)adopt a deployment, resetting its persisted config.

        Unlike :meth:`register` this is idempotent: it is the explicit
        path for taking over an instance after a migration or a manual
        rebuild, where discarding the old persisted config is the point.
        """
        self._deployments[deployment.instance_id] = deployment
        self._persisted[deployment.instance_id] = (
            deployment.service.master.config
        )
        self._last_downtime_s.setdefault(deployment.instance_id, 0.0)
        self.recorder.event(
            "orchestrator.adopt",
            instance=deployment.instance_id,
            flavor=deployment.service.flavor,
        )

    def deployment(self, instance_id: str) -> ServiceDeployment:
        try:
            return self._deployments[instance_id]
        except KeyError:
            raise KeyError(f"unknown instance {instance_id!r}") from None

    def credentials(self, instance_id: str) -> Credentials:
        """Credentials the DFA fetches before hitting TDE APIs (§2)."""
        return self.deployment(instance_id).credentials

    # -- persisted configuration -------------------------------------------------

    def persist_config(
        self, instance_id: str, config: KnobConfiguration
    ) -> None:
        """Store the config future re-deployments must come up with."""
        self.deployment(instance_id)  # validate the id
        self._persisted[instance_id] = config

    def persisted_config(self, instance_id: str) -> KnobConfiguration:
        """The config a re-deployment would apply."""
        try:
            return self._persisted[instance_id]
        except KeyError:
            raise KeyError(f"no persisted config for {instance_id!r}") from None

    def redeploy(self, instance_id: str) -> None:
        """Restart every node with the persisted config (update/patch path).

        A crash during redeploy (config no longer fits the VM) heals the
        node back up on its previous config rather than leaving it down.
        """
        deployment = self.deployment(instance_id)
        config = self.persisted_config(instance_id)
        healed = 0
        for node in deployment.service.nodes:
            try:
                node.apply_config(config, mode="restart")
            except DatabaseCrashed:
                node.heal()
                healed += 1
        self.recorder.event(
            "orchestrator.redeploy",
            instance=instance_id,
            nodes=len(deployment.service.nodes),
            healed=healed,
        )

    # -- downtime windows -----------------------------------------------------------

    def downtime_due(self, instance_id: str, now_s: float) -> bool:
        """Whether the next scheduled downtime has arrived."""
        last = self._last_downtime_s.get(instance_id, 0.0)
        return now_s - last >= self.downtime_period_s

    def record_downtime(self, instance_id: str, now_s: float) -> None:
        """Mark a downtime as taken."""
        self.deployment(instance_id)
        self._last_downtime_s[instance_id] = now_s
        self.recorder.event("orchestrator.downtime", instance=instance_id)
        self.recorder.inc("repro_downtimes_total", instance=instance_id)

    def last_downtime_s(self, instance_id: str) -> float:
        return self._last_downtime_s.get(instance_id, 0.0)
