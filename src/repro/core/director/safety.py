"""SafetyGovernor: safe online tuning (OnlineTune-style) for the director.

Production tuners cannot treat every recommendation as trusted: a
mis-trained surrogate (or an adversarial tuner — see
:mod:`repro.faults`) can emit a configuration that tanks the master the
moment the DFA promotes it. Following "Towards Dynamic and Safe
Configuration Tuning for Cloud Databases" (OnlineTune), the governor
constrains online tuning three ways:

1. **Safe-region bounding** — every candidate's distance from the
   incumbent configuration, measured in the tuners' normalised
   ``[0, 1]^d`` knob space (:func:`~repro.tuners.base.config_to_vector`),
   is clamped to a per-move *step budget*. An oversized jump is cut to a
   step along the same direction; the remainder waits for later moves
   (the tuner re-recommends from the new incumbent), so a pathological
   recommendation degrades into a sequence of small, observable,
   revertable steps.
2. **Canary-on-slave** — the bounded candidate is not promoted blind:
   the DFA's slave-first protocol (§4) gains a canary phase that
   replays the window's workload on one slave under the candidate and
   only proceeds if throughput clears a regression threshold (see
   :class:`~repro.core.apply.dfa.CanaryContext`).
3. **Auto-revert** — after master promotion the governor watches the
   next windows; an observed regression below its rolling
   *anchor* (best recently observed throughput, decayed so the bar
   tracks workload drift) restores the anchor's configuration — the
   empirical last-known-good — records a :class:`SafetyIncident`, and
   quarantines the reverted config so the reconciler does not
   immediately re-apply it from persistence.

Everything is deterministic: the governor draws no randomness, keeps no
wall-clock state, and with no governor wired (the default) every output
of the service is byte-identical to the ungoverned build.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.recording import NULL_RECORDER, Recorder
from repro.core.director.config_repository import ConfigRepository
from repro.dbsim.config import KnobConfiguration
from repro.tuners.base import config_to_vector, vector_to_config

__all__ = [
    "REVERT_SOURCE",
    "SAFETY_METRIC_FAMILIES",
    "GovernorPolicy",
    "BoundedMove",
    "SafetyIncident",
    "RevertDecision",
    "SafetyGovernor",
]

#: Source tag on configurations the governor stores after an auto-revert
#: (the director's last-known-good fallback then serves the restored
#: config, not the reverted one).
REVERT_SOURCE = "governor-revert"

#: The governor's metric family names and help strings, exported through
#: the Prometheus renderer and described up front on trace registries so
#: ``repro trace --metrics`` surfaces them even before a sample lands.
SAFETY_METRIC_FAMILIES: dict[str, str] = {
    "repro_safety_violations_total": (
        "Recommendations that exceeded the governor step budget and were "
        "clamped to the safe region."
    ),
    "repro_canary_rejections_total": (
        "Candidate configs rejected by the canary-slave evaluation."
    ),
    "repro_reverts_total": (
        "Master configs auto-reverted after an observed regression."
    ),
}

#: Deltas below this (normalised knob units) count as "unchanged": they
#: are float round-trip noise, not real moves, and are never rewritten.
_EPSILON = 1e-9


@dataclass(frozen=True)
class GovernorPolicy:
    """Tunable thresholds of the safety governor.

    Parameters
    ----------
    step_budget:
        Maximum per-move L-inf distance from the incumbent in normalised
        knob space. Oversized candidates are cut to this budget.
    canary_threshold:
        The canary slave must achieve at least this fraction of its
        incumbent-config throughput for the candidate to be promoted.
    revert_threshold:
        Observed master throughput below this fraction of the rolling
        anchor triggers an auto-revert while a promotion is under watch.
    watch_windows:
        Monitoring windows a promoted config stays under watch.
    quarantine_s:
        Simulated seconds a reverted config stays quarantined: while
        fresh, reconciliation consults the incident log and restores the
        incident's replacement instead of re-applying the reverted one.
    anchor_decay:
        Per-window decay of the throughput anchor, so the revert bar
        tracks genuine workload drift instead of a stale historic peak.
    """

    step_budget: float = 0.2
    canary_threshold: float = 0.85
    revert_threshold: float = 0.9
    watch_windows: int = 2
    quarantine_s: float = 1800.0
    anchor_decay: float = 0.998

    def __post_init__(self) -> None:
        if not 0.0 < self.step_budget <= 1.0:
            raise ValueError("step_budget must be in (0, 1]")
        if not 0.0 < self.canary_threshold <= 1.0:
            raise ValueError("canary_threshold must be in (0, 1]")
        if not 0.0 < self.revert_threshold <= 1.0:
            raise ValueError("revert_threshold must be in (0, 1]")
        if self.watch_windows < 1:
            raise ValueError("watch_windows must be >= 1")
        if self.quarantine_s <= 0:
            raise ValueError("quarantine_s must be positive")
        if not 0.0 < self.anchor_decay <= 1.0:
            raise ValueError("anchor_decay must be in (0, 1]")


@dataclass(frozen=True)
class BoundedMove:
    """Result of bounding one candidate to the safe region."""

    config: KnobConfiguration
    #: Whether the candidate exceeded the budget and was cut.
    clamped: bool
    #: The candidate's original L-inf distance from the incumbent.
    distance: float
    #: Budget-sized moves the full candidate would decompose into.
    stages: int


@dataclass(frozen=True)
class SafetyIncident:
    """One auto-revert: what was reverted, what was restored, and why."""

    instance_id: str
    time_s: float
    reverted_config: KnobConfiguration
    restored_config: KnobConfiguration
    observed_tps: float
    anchor_tps: float


@dataclass(frozen=True)
class RevertDecision:
    """The governor's instruction to restore a last-known-good config."""

    config: KnobConfiguration
    incident: SafetyIncident


@dataclass
class _InstanceState:
    """Per-instance watch state; all simulated-time, no wall clock."""

    anchor_tps: float = 0.0
    anchor_config: KnobConfiguration | None = None
    watching: bool = False
    watched_windows: int = 0
    promoted_config: KnobConfiguration | None = None


class SafetyGovernor:
    """Bounds, watches and reverts online configuration moves.

    Parameters
    ----------
    configs:
        The director's :class:`ConfigRepository`; restored configs are
        stored here under :data:`REVERT_SOURCE` so the last-known-good
        fallback path serves them.
    policy:
        Thresholds (default :class:`GovernorPolicy`).
    recorder:
        Observability seam: clamps and reverts emit events and count
        into the :data:`SAFETY_METRIC_FAMILIES` counters.
    """

    def __init__(
        self,
        configs: ConfigRepository,
        policy: GovernorPolicy | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        self.configs = configs
        self.policy = policy if policy is not None else GovernorPolicy()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.clamps = 0
        self.canary_rejections = 0
        self.reverts = 0
        self.incidents: list[SafetyIncident] = []
        self._states: dict[str, _InstanceState] = {}

    # -- safe-region bounding ---------------------------------------------------

    def bound(
        self,
        instance_id: str,
        incumbent: KnobConfiguration,
        candidate: KnobConfiguration,
        now_s: float,
    ) -> BoundedMove:
        """Clamp *candidate* to the step budget around *incumbent*.

        Distance is L-inf in the normalised knob space, so one knob
        jumping across its whole range is as violating as all of them
        doing so. An oversized move is scaled along its own direction to
        land exactly on the budget; knobs the candidate did not change
        are carried over untouched (no float round-trip noise).
        """
        budget = self.policy.step_budget
        incumbent_vec = config_to_vector(incumbent)
        delta = config_to_vector(candidate) - incumbent_vec
        distance = float(np.max(np.abs(delta))) if delta.size else 0.0
        if distance <= budget + _EPSILON:
            return BoundedMove(
                candidate,
                clamped=False,
                distance=distance,
                stages=1 if distance > _EPSILON else 0,
            )
        scale = budget / distance
        raw = vector_to_config(incumbent_vec + delta * scale, incumbent.catalog)
        updates = {
            knob.name: raw[knob.name]
            for i, knob in enumerate(incumbent.catalog)
            if abs(delta[i]) > _EPSILON
        }
        bounded = incumbent.with_values(updates)
        stages = int(math.ceil(distance / budget))
        self.clamps += 1
        self.recorder.event(
            "governor.clamp",
            instance=instance_id,
            distance=distance,
            stages=stages,
        )
        self.recorder.inc(
            "repro_safety_violations_total", instance=instance_id
        )
        return BoundedMove(bounded, clamped=True, distance=distance, stages=stages)

    # -- promotion watch + auto-revert -------------------------------------------

    def note_promotion(
        self, instance_id: str, config: KnobConfiguration, now_s: float
    ) -> None:
        """A candidate landed on the master: watch the next windows."""
        state = self._state(instance_id)
        state.watching = True
        state.watched_windows = 0
        state.promoted_config = config

    def note_canary_rejection(self, instance_id: str) -> None:
        """Bookkeeping hook: the DFA's canary rejected a candidate."""
        self.canary_rejections += 1

    def revert_failed(self, instance_id: str) -> None:
        """A revert apply did not land: keep the instance under watch."""
        state = self._state(instance_id)
        state.watching = True
        state.watched_windows = 0

    def observe_window(
        self,
        instance_id: str,
        master_config: KnobConfiguration,
        throughput: float,
        now_s: float,
    ) -> RevertDecision | None:
        """Feed one window's observed throughput; maybe order a revert.

        Call once per monitoring window *before* the window's tuning
        decision, with the throughput achieved under *master_config*.
        Returns a :class:`RevertDecision` when a watched promotion
        regressed below ``revert_threshold`` of the rolling anchor —
        the caller applies ``decision.config`` (and reports back via
        :meth:`revert_failed` if that apply fails).
        """
        state = self._state(instance_id)
        decision: RevertDecision | None = None
        if state.watching:
            anchor_config = state.anchor_config
            if (
                anchor_config is not None
                and throughput
                < self.policy.revert_threshold * state.anchor_tps
            ):
                incident = SafetyIncident(
                    instance_id=instance_id,
                    time_s=now_s,
                    reverted_config=master_config,
                    restored_config=anchor_config,
                    observed_tps=throughput,
                    anchor_tps=state.anchor_tps,
                )
                self.incidents.append(incident)
                self.reverts += 1
                self.configs.store(
                    instance_id, anchor_config, REVERT_SOURCE, now_s
                )
                self.recorder.event(
                    "governor.revert",
                    instance=instance_id,
                    observed_tps=throughput,
                    anchor_tps=state.anchor_tps,
                )
                self.recorder.inc(
                    "repro_reverts_total", instance=instance_id
                )
                state.watching = False
                state.watched_windows = 0
                state.promoted_config = None
                decision = RevertDecision(
                    config=anchor_config, incident=incident
                )
            else:
                state.watched_windows += 1
                if state.watched_windows >= self.policy.watch_windows:
                    self.recorder.event(
                        "governor.accept", instance=instance_id
                    )
                    state.watching = False
                    state.watched_windows = 0
                    state.promoted_config = None
        # Rolling anchor: the best recently observed throughput, decayed
        # per window; the config that set the watermark is the empirical
        # last-known-good a revert restores.
        decayed = state.anchor_tps * self.policy.anchor_decay
        if throughput >= decayed or state.anchor_config is None:
            state.anchor_tps = throughput
            state.anchor_config = master_config
        else:
            state.anchor_tps = decayed
        return decision

    # -- incident log / quarantine -------------------------------------------------

    def quarantined_replacement(
        self, instance_id: str, config: KnobConfiguration, now_s: float
    ) -> KnobConfiguration | None:
        """The restored config to use instead of quarantined *config*.

        Consulted by the reconciler before restoring from persistence: a
        config reverted within the last ``quarantine_s`` simulated
        seconds must not be re-applied, so the incident's restored
        config is handed back as the replacement. ``None`` means
        *config* is not under quarantine.
        """
        for incident in reversed(self.incidents):
            if incident.instance_id != instance_id:
                continue
            if now_s - incident.time_s > self.policy.quarantine_s:
                continue
            if incident.reverted_config == config:
                return incident.restored_config
        return None

    def watching(self, instance_id: str) -> bool:
        """Whether *instance_id* has a promotion under watch."""
        state = self._states.get(instance_id)
        return state.watching if state is not None else False

    def _state(self, instance_id: str) -> _InstanceState:
        state = self._states.get(instance_id)
        if state is None:
            state = _InstanceState()
            self._states[instance_id] = state
        return state
