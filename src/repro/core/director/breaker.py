"""Per-tuner-instance circuit breakers for the config director.

A tuner deployment that keeps failing must stop receiving requests —
routing every tuning request into a dead GPR deployment and waiting for
it to time out would stall the whole fleet's recommendation pipeline.
The breaker is the classic three-state machine, driven entirely by
*simulated* time (request timestamps), never the wall clock:

- **closed** — requests flow; consecutive failures are counted.
- **open** — tripped after ``failure_threshold`` consecutive failures;
  the instance is out of the balancer rotation for ``cooldown_s``.
- **half-open** — the cooldown elapsed; the instance re-enters rotation
  for one trial request. Success closes the breaker, failure re-opens
  it immediately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["BreakerState", "BreakerPolicy", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/recovery parameters shared by a director's breakers."""

    failure_threshold: int = 3
    cooldown_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")


@dataclass
class CircuitBreaker:
    """Failure bookkeeping for one tuner instance."""

    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at_s: float = 0.0
    times_tripped: int = 0

    def record_failure(self, now_s: float) -> bool:
        """Count one failure; returns True when the breaker (re)trips."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # The trial request failed: straight back to open.
            self._trip(now_s)
            return True
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip(now_s)
            return True
        return False

    def record_success(self) -> None:
        """A served request closes the breaker and clears the count."""
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0

    def try_half_open(self, now_s: float) -> bool:
        """Move open → half-open once the cooldown has elapsed."""
        if (
            self.state is BreakerState.OPEN
            and now_s - self.opened_at_s >= self.policy.cooldown_s
        ):
            self.state = BreakerState.HALF_OPEN
            return True
        return False

    @property
    def allows_requests(self) -> bool:
        """Whether the instance should be in the balancer rotation."""
        return self.state is not BreakerState.OPEN

    def _trip(self, now_s: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at_s = now_s
        self.times_tripped += 1
