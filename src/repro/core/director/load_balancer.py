"""Load balancing of tuning requests across tuner instances (§2).

"The config director performs load balancing of recommendation request
tasks across multiple tuner instances." Tuner instances differ hugely in
recommendation cost (a GPR retrain vs an actor forward pass), so the
balancer tracks each instance's outstanding work in estimated seconds and
routes every request to the least-loaded instance.

Instances can be taken *out of rotation* (``healthy = False``) — the
config director's circuit breaker does this for instances whose
deployments keep failing — and :meth:`LeastLoadedBalancer.pick` only ever
considers in-rotation instances, raising the typed
:class:`NoHealthyTuners` error when none remain so the director can fall
back instead of crashing on ``min()`` of an empty sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

from repro.tuners.base import Tuner

__all__ = ["NoHealthyTuners", "TunerInstance", "LeastLoadedBalancer"]


class NoHealthyTuners(RuntimeError):
    """Every tuner instance is out of rotation (or excluded)."""


@dataclass
class TunerInstance:
    """One deployed tuner with its load accounting."""

    instance_id: str
    tuner: Tuner
    outstanding_s: float = 0.0
    requests_served: int = 0
    #: In-rotation flag: the circuit breaker clears it when the instance's
    #: deployment keeps failing and restores it after the cooldown.
    healthy: bool = True

    def busy_fraction(self, capacity_s: float) -> float:
        """Outstanding work relative to *capacity_s* of queue budget."""
        if capacity_s <= 0:
            raise ValueError("capacity_s must be positive")
        return self.outstanding_s / capacity_s


class LeastLoadedBalancer:
    """Routes each request to the tuner instance with least queued work."""

    def __init__(self, instances: list[TunerInstance]) -> None:
        if not instances:
            raise ValueError("need at least one tuner instance")
        ids = [inst.instance_id for inst in instances]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate tuner instance ids")
        self.instances = list(instances)
        self._by_id = {inst.instance_id: inst for inst in self.instances}

    def pick(self, exclude: Collection[str] = ()) -> TunerInstance:
        """The in-rotation instance that would finish a new request soonest.

        Raises :class:`NoHealthyTuners` when every instance is out of
        rotation or excluded — a typed error the director catches to
        serve its last-known-good fallback.
        """
        candidates = [
            inst
            for inst in self.instances
            if inst.healthy and inst.instance_id not in exclude
        ]
        if not candidates:
            raise NoHealthyTuners(
                "no tuner instance in rotation "
                f"({len(self.instances)} registered, "
                f"{len(self.healthy_instances())} healthy, "
                f"{len(tuple(exclude))} excluded)"
            )
        return min(candidates, key=lambda inst: inst.outstanding_s)

    def assign(self) -> TunerInstance:
        """Pick an instance and charge it its recommendation cost."""
        instance = self.pick()
        instance.outstanding_s += instance.tuner.recommendation_cost_s()
        instance.requests_served += 1
        return instance

    def drain(self, elapsed_s: float) -> None:
        """Let *elapsed_s* of queued work complete on every instance."""
        if elapsed_s < 0:
            raise ValueError("elapsed_s must be >= 0")
        for instance in self.instances:
            instance.outstanding_s = max(0.0, instance.outstanding_s - elapsed_s)

    # -- rotation management ---------------------------------------------------

    def get(self, instance_id: str) -> TunerInstance:
        """Instance by id (KeyError on unknown ids)."""
        try:
            return self._by_id[instance_id]
        except KeyError:
            raise KeyError(f"unknown tuner instance {instance_id!r}") from None

    def healthy_instances(self) -> list[TunerInstance]:
        """Instances currently in rotation."""
        return [inst for inst in self.instances if inst.healthy]

    def set_health(self, instance_id: str, healthy: bool) -> None:
        """Move an instance in or out of rotation."""
        self.get(instance_id).healthy = healthy

    # -- aggregate accounting ---------------------------------------------------

    def total_outstanding_s(self) -> float:
        """Queued work across all instances."""
        return sum(inst.outstanding_s for inst in self.instances)

    def saturated(self, capacity_s: float) -> bool:
        """Whether every instance has more than *capacity_s* queued."""
        return all(
            inst.outstanding_s > capacity_s for inst in self.instances
        )
