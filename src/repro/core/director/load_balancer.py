"""Load balancing of tuning requests across tuner instances (§2).

"The config director performs load balancing of recommendation request
tasks across multiple tuner instances." Tuner instances differ hugely in
recommendation cost (a GPR retrain vs an actor forward pass), so the
balancer tracks each instance's outstanding work in estimated seconds and
routes every request to the least-loaded instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tuners.base import Tuner

__all__ = ["TunerInstance", "LeastLoadedBalancer"]


@dataclass
class TunerInstance:
    """One deployed tuner with its load accounting."""

    instance_id: str
    tuner: Tuner
    outstanding_s: float = 0.0
    requests_served: int = 0

    def busy_fraction(self, capacity_s: float) -> float:
        """Outstanding work relative to *capacity_s* of queue budget."""
        if capacity_s <= 0:
            raise ValueError("capacity_s must be positive")
        return self.outstanding_s / capacity_s


class LeastLoadedBalancer:
    """Routes each request to the tuner instance with least queued work."""

    def __init__(self, instances: list[TunerInstance]) -> None:
        if not instances:
            raise ValueError("need at least one tuner instance")
        ids = [inst.instance_id for inst in instances]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate tuner instance ids")
        self.instances = list(instances)

    def pick(self) -> TunerInstance:
        """The instance that would finish a new request soonest."""
        return min(self.instances, key=lambda inst: inst.outstanding_s)

    def assign(self) -> TunerInstance:
        """Pick an instance and charge it its recommendation cost."""
        instance = self.pick()
        instance.outstanding_s += instance.tuner.recommendation_cost_s()
        instance.requests_served += 1
        return instance

    def drain(self, elapsed_s: float) -> None:
        """Let *elapsed_s* of queued work complete on every instance."""
        if elapsed_s < 0:
            raise ValueError("elapsed_s must be >= 0")
        for instance in self.instances:
            instance.outstanding_s = max(0.0, instance.outstanding_s - elapsed_s)

    def total_outstanding_s(self) -> float:
        """Queued work across all instances."""
        return sum(inst.outstanding_s for inst in self.instances)

    def saturated(self, capacity_s: float) -> bool:
        """Whether every instance has more than *capacity_s* queued."""
        return all(
            inst.outstanding_s > capacity_s for inst in self.instances
        )
