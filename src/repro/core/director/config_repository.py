"""Config data repository: versioned per-instance configuration history.

The config director stores every recommendation it forwards (§2: "while
simultaneously storing it into the config data repository"). The history
also backs the §4 non-tunable-knob policy, which needs "the 99th
percentile of this knob obtained during all last recommendations before
the last scheduled downtime".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import percentile
from repro.dbsim.config import KnobConfiguration

__all__ = ["ConfigVersion", "ConfigRepository"]


@dataclass(frozen=True)
class ConfigVersion:
    """One stored configuration version."""

    instance_id: str
    config: KnobConfiguration
    source: str
    timestamp_s: float
    version: int


class ConfigRepository:
    """Append-only config history per service instance."""

    def __init__(self) -> None:
        self._history: dict[str, list[ConfigVersion]] = {}

    def store(
        self,
        instance_id: str,
        config: KnobConfiguration,
        source: str,
        timestamp_s: float,
    ) -> ConfigVersion:
        """Append a new version for *instance_id*."""
        versions = self._history.setdefault(instance_id, [])
        entry = ConfigVersion(
            instance_id=instance_id,
            config=config,
            source=source,
            timestamp_s=timestamp_s,
            version=len(versions) + 1,
        )
        versions.append(entry)
        return entry

    def latest(self, instance_id: str) -> ConfigVersion | None:
        """Most recent version, or ``None`` if nothing stored."""
        versions = self._history.get(instance_id)
        return versions[-1] if versions else None

    def history(self, instance_id: str) -> list[ConfigVersion]:
        """Full version history (oldest first)."""
        return list(self._history.get(instance_id, []))

    def knob_percentile(
        self,
        instance_id: str,
        knob_name: str,
        q: float,
        since_s: float = 0.0,
    ) -> float | None:
        """Percentile of *knob_name* over versions since *since_s*.

        ``None`` when no versions qualify — callers must handle the
        no-history case explicitly (§4's downtime policy falls back to
        keeping the current value).
        """
        values = [
            v.config[knob_name]
            for v in self._history.get(instance_id, [])
            if v.timestamp_s >= since_s
        ]
        if not values:
            return None
        return percentile(values, q)

    def __len__(self) -> int:
        return sum(len(v) for v in self._history.values())
