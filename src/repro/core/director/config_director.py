"""The config director (§2): routing, bookkeeping, downtime deferral.

The config director receives metric data and tuning requests from the
service instances' TDEs, load-balances recommendation work across tuner
instances, stores every recommendation in the config repository, and
splits recommendations into a reload-able part (forwarded immediately to
the apply pipeline) and a restart-required part (held for the instance's
next scheduled maintenance downtime, per §4's non-tunable-knob handling).

It also keeps the tuning-request counters that are the paper's scalability
evidence (Fig. 9 plots requests per minute across the fleet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.director.config_repository import ConfigRepository
from repro.core.director.load_balancer import LeastLoadedBalancer
from repro.dbsim.config import KnobConfiguration
from repro.tuners.base import Recommendation, TuningRequest

__all__ = ["SplitRecommendation", "ConfigDirector"]


@dataclass
class SplitRecommendation:
    """A recommendation split into now-appliable and downtime parts."""

    recommendation: Recommendation
    reloadable: KnobConfiguration
    deferred_knobs: dict[str, float] = field(default_factory=dict)

    @property
    def has_deferred(self) -> bool:
        return bool(self.deferred_knobs)


class ConfigDirector:
    """Routes tuning requests and manages configuration state."""

    def __init__(
        self,
        balancer: LeastLoadedBalancer,
        config_repository: ConfigRepository | None = None,
    ) -> None:
        self.balancer = balancer
        self.configs = (
            config_repository if config_repository is not None else ConfigRepository()
        )
        self.request_times: list[float] = []
        self._pending_downtime: dict[str, dict[str, float]] = {}
        self._knob_floors: dict[str, dict[str, float]] = {}

    # -- request handling -----------------------------------------------------

    def handle_tuning_request(self, request: TuningRequest) -> SplitRecommendation:
        """Route *request* to a tuner and split the recommendation.

        The director remembers per-instance *floors* for knobs that memory
        throttles implicated: a later recommendation — produced by a tuner
        whose surrogate is indifferent to a knob — must not regress below
        a value a previous throttle forced up, or the same throttle
        re-fires forever.
        """
        self.request_times.append(request.timestamp_s)
        self._raise_floors(request)
        instance = self.balancer.assign()
        recommendation = instance.tuner.recommend(request)
        recommendation.config = self._apply_floors(
            request.instance_id, recommendation.config
        )
        self.configs.store(
            request.instance_id,
            recommendation.config,
            recommendation.source,
            request.timestamp_s,
        )
        return self._split(request.config, recommendation)

    def _raise_floors(self, request: TuningRequest) -> None:
        if request.throttle_class != "memory" or not request.throttle_knobs:
            return
        floors = self._knob_floors.setdefault(request.instance_id, {})
        for name in request.throttle_knobs:
            if name not in request.config.catalog:
                continue
            knob = request.config.catalog.get(name)
            # Only tunable *memory* knobs get floors: throttle_knobs may
            # union knobs from co-occurring non-memory throttles, and
            # ratcheting a planner knob upward would be nonsense.
            if knob.restart_required or knob.knob_class.value != "memory":
                continue
            floors[name] = max(
                floors.get(name, 0.0), knob.clamp(2.0 * request.config[name])
            )

    def _apply_floors(self, instance_id: str, config: KnobConfiguration):
        floors = self._knob_floors.get(instance_id)
        if not floors:
            return config
        updates = {
            name: floor
            for name, floor in floors.items()
            if config[name] < floor
        }
        return config.with_values(updates) if updates else config

    def _split(
        self, current: KnobConfiguration, recommendation: Recommendation
    ) -> SplitRecommendation:
        deferred_names = recommendation.restart_required_changes(current)
        deferred = {
            name: recommendation.config[name] for name in deferred_names
        }
        if deferred:
            pending = self._pending_downtime.setdefault(
                recommendation.instance_id, {}
            )
            pending.update(deferred)
        reload_values = recommendation.config.as_dict()
        for name in deferred:
            reload_values[name] = current[name]
        reloadable = KnobConfiguration(current.catalog, reload_values)
        return SplitRecommendation(
            recommendation=recommendation,
            reloadable=reloadable,
            deferred_knobs=deferred,
        )

    # -- downtime management -----------------------------------------------------

    def pending_downtime_changes(self, instance_id: str) -> dict[str, float]:
        """Restart-required knob values waiting for the next downtime."""
        return dict(self._pending_downtime.get(instance_id, {}))

    def consume_downtime_changes(self, instance_id: str) -> dict[str, float]:
        """Pop (and return) the pending downtime changes for an instance."""
        return self._pending_downtime.pop(instance_id, {})

    # -- Fig. 9 accounting -----------------------------------------------------------

    def requests_per_minute(
        self, window_start_s: float, window_end_s: float
    ) -> float:
        """Mean tuning requests per minute inside a time window."""
        if window_end_s <= window_start_s:
            raise ValueError("window_end_s must exceed window_start_s")
        count = sum(
            1 for t in self.request_times if window_start_s <= t < window_end_s
        )
        return count / ((window_end_s - window_start_s) / 60.0)

    @property
    def total_requests(self) -> int:
        return len(self.request_times)
