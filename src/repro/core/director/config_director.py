"""The config director (§2): routing, bookkeeping, downtime deferral.

The config director receives metric data and tuning requests from the
service instances' TDEs, load-balances recommendation work across tuner
instances, stores every recommendation in the config repository, and
splits recommendations into a reload-able part (forwarded immediately to
the apply pipeline) and a restart-required part (held for the instance's
next scheduled maintenance downtime, per §4's non-tunable-knob handling).

It also keeps the tuning-request counters that are the paper's scalability
evidence (Fig. 9 plots requests per minute across the fleet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.recording import NULL_RECORDER, Recorder
from repro.core.director.breaker import BreakerPolicy, CircuitBreaker
from repro.core.director.config_repository import ConfigRepository
from repro.core.director.load_balancer import (
    LeastLoadedBalancer,
    NoHealthyTuners,
    TunerInstance,
)
from repro.dbsim.config import KnobConfiguration
from repro.tuners.base import Recommendation, TunerUnavailable, TuningRequest
from repro.tuners.knob_selection import SelectionPolicy
from repro.tuners.surrogate import SurrogatePolicy

__all__ = ["SplitRecommendation", "ConfigDirector"]

#: Source tag on recommendations served from the config repository while
#: every tuner instance is tripped or unreachable.
FALLBACK_SOURCE = "last-known-good"


@dataclass
class SplitRecommendation:
    """A recommendation split into now-appliable and downtime parts."""

    recommendation: Recommendation
    reloadable: KnobConfiguration
    deferred_knobs: dict[str, float] = field(default_factory=dict)

    @property
    def has_deferred(self) -> bool:
        return bool(self.deferred_knobs)


class ConfigDirector:
    """Routes tuning requests and manages configuration state."""

    def __init__(
        self,
        balancer: LeastLoadedBalancer,
        config_repository: ConfigRepository | None = None,
        breaker_policy: BreakerPolicy | None = None,
        recorder: Recorder | None = None,
        surrogate: SurrogatePolicy | None = None,
        selection: SelectionPolicy | None = None,
    ) -> None:
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.balancer = balancer
        self.configs = (
            config_repository if config_repository is not None else ConfigRepository()
        )
        self.breaker_policy = (
            breaker_policy if breaker_policy is not None else BreakerPolicy()
        )
        self.breakers: dict[str, CircuitBreaker] = {}
        self.fallbacks_served = 0
        self.request_times: list[float] = []
        self._pending_downtime: dict[str, dict[str, float]] = {}
        self._knob_floors: dict[str, dict[str, float]] = {}
        # Surrogate screening is opt-in per tuner: candidate-set tuners
        # adopt the policy, others (RL forward-pass) decline. With no
        # policy (the default) nothing is configured and every output is
        # byte-identical to builds without the surrogate tier.
        self.surrogate_policy = surrogate
        self.surrogate_tuners: list[str] = []
        if surrogate is not None:
            for instance in self.balancer.instances:
                if instance.tuner.configure_surrogate(surrogate):
                    self.surrogate_tuners.append(instance.instance_id)
        # Dynamic knob selection follows the same opt-in contract: each
        # tuner either adopts the policy (and tunes inside a per-workload
        # active subspace) or declines. ``None`` (the default) configures
        # nothing and leaves every output byte-identical.
        self.selection_policy = selection
        self.selection_tuners: list[str] = []
        if selection is not None:
            for instance in self.balancer.instances:
                if instance.tuner.configure_selection(selection):
                    self.selection_tuners.append(instance.instance_id)

    # -- request handling -----------------------------------------------------

    def handle_tuning_request(self, request: TuningRequest) -> SplitRecommendation:
        """Route *request* to a tuner and split the recommendation.

        The director remembers per-instance *floors* for knobs that memory
        throttles implicated: a later recommendation — produced by a tuner
        whose surrogate is indifferent to a knob — must not regress below
        a value a previous throttle forced up, or the same throttle
        re-fires forever.

        Routing is failure-hardened: a tuner raising
        :class:`~repro.tuners.base.TunerUnavailable` counts against its
        circuit breaker (tripping takes the instance out of rotation for
        the breaker cooldown) and the request is retried on the remaining
        instances — at most once each, never an unbounded loop. When no
        instance can serve, the director answers from the config
        repository's last-known-good version instead of failing the
        service instance.
        """
        self.request_times.append(request.timestamp_s)
        self.recorder.inc(
            "repro_tuning_requests_total", instance=request.instance_id
        )
        self._raise_floors(request)
        now = request.timestamp_s
        self._refresh_breakers(now)
        with self.recorder.span(
            "director.route",
            instance=request.instance_id,
            workload=request.workload_id,
            throttle_class=request.throttle_class,
        ) as span:
            tried: set[str] = set()
            # Bounded retry: every registered instance is tried at most once.
            for _ in range(len(self.balancer.instances)):
                try:
                    instance = self.balancer.pick(exclude=tried)
                except NoHealthyTuners:
                    break
                # Charge the queue before recommending (assign() semantics —
                # the cost model may shift once the surrogate refits) and
                # refund if the instance turns out to be unreachable.
                cost = instance.tuner.recommendation_cost_s()
                instance.outstanding_s += cost
                instance.requests_served += 1
                try:
                    with self.recorder.span(
                        "tuner.recommend",
                        instance=request.instance_id,
                        duration_s=cost,
                        tuner=instance.instance_id,
                        source=instance.tuner.name,
                    ):
                        recommendation = instance.tuner.recommend(request)
                except TunerUnavailable:
                    instance.outstanding_s = max(
                        0.0, instance.outstanding_s - cost
                    )
                    instance.requests_served -= 1
                    tried.add(instance.instance_id)
                    self.recorder.event(
                        "director.failover",
                        instance=request.instance_id,
                        tuner=instance.instance_id,
                    )
                    self.recorder.inc(
                        "repro_tuner_failures_total", tuner=instance.instance_id
                    )
                    self._record_failure(instance, now)
                    continue
                self.recorder.observe("repro_recommendation_cost_seconds", cost)
                self._breaker_for(instance.instance_id).record_success()
                recommendation.config = self._apply_floors(
                    request.instance_id, recommendation.config
                )
                self.configs.store(
                    request.instance_id,
                    recommendation.config,
                    recommendation.source,
                    request.timestamp_s,
                )
                split = self._split(request.config, recommendation)
                span.set(
                    source=recommendation.source,
                    tuner=instance.instance_id,
                    deferred=len(split.deferred_knobs),
                )
                return split
            split = self._serve_fallback(request)
            span.set(source=FALLBACK_SOURCE, deferred=len(split.deferred_knobs))
            return split

    # -- circuit breaking --------------------------------------------------------

    def _breaker_for(self, tuner_instance_id: str) -> CircuitBreaker:
        breaker = self.breakers.get(tuner_instance_id)
        if breaker is None:
            breaker = CircuitBreaker(policy=self.breaker_policy)
            self.breakers[tuner_instance_id] = breaker
        return breaker

    def _record_failure(self, instance: TunerInstance, now_s: float) -> None:
        if self._breaker_for(instance.instance_id).record_failure(now_s):
            self.balancer.set_health(instance.instance_id, False)
            self.recorder.event("breaker.open", tuner=instance.instance_id)
            self.recorder.inc(
                "repro_breaker_trips_total", tuner=instance.instance_id
            )

    def _refresh_breakers(self, now_s: float) -> None:
        """Let cooled-down breakers re-admit their instances (half-open)."""
        for tuner_instance_id, breaker in self.breakers.items():
            if breaker.try_half_open(now_s):
                self.balancer.set_health(tuner_instance_id, True)
                self.recorder.event("breaker.half_open", tuner=tuner_instance_id)

    def breaker_trips(self) -> int:
        """Total times any tuner instance's breaker tripped."""
        return sum(b.times_tripped for b in self.breakers.values())

    def _serve_fallback(self, request: TuningRequest) -> SplitRecommendation:
        """Answer from the config repository while the breakers are open.

        The last-known-good version is the most recent recommendation the
        director itself stored for the instance; with no history at all
        the fallback simply holds the current configuration. Either way
        the service instance gets a valid (possibly stale) answer instead
        of an error from deep inside the tuning layer.
        """
        self.fallbacks_served += 1
        self.recorder.event("director.fallback", instance=request.instance_id)
        self.recorder.inc("repro_fallbacks_served_total")
        latest = self.configs.latest(request.instance_id)
        config = latest.config if latest is not None else request.config
        recommendation = Recommendation(
            instance_id=request.instance_id,
            config=self._apply_floors(request.instance_id, config),
            source=FALLBACK_SOURCE,
        )
        return self._split(request.config, recommendation)

    # -- floor management --------------------------------------------------------

    def _raise_floors(self, request: TuningRequest) -> None:
        if request.throttle_class != "memory" or not request.throttle_knobs:
            return
        floors = self._knob_floors.setdefault(request.instance_id, {})
        for name in request.throttle_knobs:
            if name not in request.config.catalog:
                continue
            knob = request.config.catalog.get(name)
            # Only tunable *memory* knobs get floors: throttle_knobs may
            # union knobs from co-occurring non-memory throttles, and
            # ratcheting a planner knob upward would be nonsense.
            if knob.restart_required or knob.knob_class.value != "memory":
                continue
            floors[name] = max(
                floors.get(name, 0.0), knob.clamp(2.0 * request.config[name])
            )

    def _apply_floors(self, instance_id: str, config: KnobConfiguration):
        floors = self._knob_floors.get(instance_id)
        if not floors:
            return config
        updates = {
            name: floor
            for name, floor in floors.items()
            if config[name] < floor
        }
        return config.with_values(updates) if updates else config

    def _split(
        self, current: KnobConfiguration, recommendation: Recommendation
    ) -> SplitRecommendation:
        deferred_names = recommendation.restart_required_changes(current)
        deferred = {
            name: recommendation.config[name] for name in deferred_names
        }
        if deferred:
            pending = self._pending_downtime.setdefault(
                recommendation.instance_id, {}
            )
            pending.update(deferred)
        reload_values = recommendation.config.as_dict()
        for name in deferred:
            reload_values[name] = current[name]
        reloadable = KnobConfiguration(current.catalog, reload_values)
        return SplitRecommendation(
            recommendation=recommendation,
            reloadable=reloadable,
            deferred_knobs=deferred,
        )

    # -- downtime management -----------------------------------------------------

    def pending_downtime_changes(self, instance_id: str) -> dict[str, float]:
        """Restart-required knob values waiting for the next downtime."""
        return dict(self._pending_downtime.get(instance_id, {}))

    def consume_downtime_changes(self, instance_id: str) -> dict[str, float]:
        """Pop (and return) the pending downtime changes for an instance."""
        return self._pending_downtime.pop(instance_id, {})

    # -- Fig. 9 accounting -----------------------------------------------------------

    def requests_per_minute(
        self, window_start_s: float, window_end_s: float
    ) -> float:
        """Mean tuning requests per minute inside a time window."""
        if window_end_s <= window_start_s:
            raise ValueError("window_end_s must exceed window_start_s")
        count = sum(
            1 for t in self.request_times if window_start_s <= t < window_end_s
        )
        return count / ((window_end_s - window_start_s) / 60.0)

    @property
    def total_requests(self) -> int:
        return len(self.request_times)
