"""Config director layer: routing, load balancing, config persistence."""

from repro.core.director.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.core.director.config_director import (
    FALLBACK_SOURCE,
    ConfigDirector,
    SplitRecommendation,
)
from repro.core.director.config_repository import ConfigRepository, ConfigVersion
from repro.core.director.load_balancer import (
    LeastLoadedBalancer,
    NoHealthyTuners,
    TunerInstance,
)

__all__ = [
    "FALLBACK_SOURCE",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ConfigDirector",
    "ConfigRepository",
    "ConfigVersion",
    "LeastLoadedBalancer",
    "NoHealthyTuners",
    "SplitRecommendation",
    "TunerInstance",
]
