"""Config director layer: routing, load balancing, config persistence."""

from repro.core.director.config_director import ConfigDirector, SplitRecommendation
from repro.core.director.config_repository import ConfigRepository, ConfigVersion
from repro.core.director.load_balancer import LeastLoadedBalancer, TunerInstance

__all__ = [
    "ConfigDirector",
    "ConfigRepository",
    "ConfigVersion",
    "LeastLoadedBalancer",
    "SplitRecommendation",
    "TunerInstance",
]
