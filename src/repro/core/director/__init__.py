"""Config director layer: routing, load balancing, config persistence."""

from repro.core.director.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.core.director.config_director import (
    FALLBACK_SOURCE,
    ConfigDirector,
    SplitRecommendation,
)
from repro.core.director.config_repository import ConfigRepository, ConfigVersion
from repro.core.director.load_balancer import (
    LeastLoadedBalancer,
    NoHealthyTuners,
    TunerInstance,
)
from repro.core.director.safety import (
    REVERT_SOURCE,
    SAFETY_METRIC_FAMILIES,
    BoundedMove,
    GovernorPolicy,
    RevertDecision,
    SafetyGovernor,
    SafetyIncident,
)

__all__ = [
    "FALLBACK_SOURCE",
    "REVERT_SOURCE",
    "SAFETY_METRIC_FAMILIES",
    "BoundedMove",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ConfigDirector",
    "ConfigRepository",
    "ConfigVersion",
    "GovernorPolicy",
    "LeastLoadedBalancer",
    "NoHealthyTuners",
    "RevertDecision",
    "SafetyGovernor",
    "SafetyIncident",
    "SplitRecommendation",
    "TunerInstance",
]
