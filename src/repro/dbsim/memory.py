"""Memory model: buffer pool hit ratio, working-area spills, swap pressure.

This is the causal mechanism behind the paper's memory-knob throttles
(§3.1): each query family declares how much working-area memory its sorts,
maintenance operations and temporary tables demand; whatever does not fit
in the corresponding knob's allowance spills to disk. The TDE later reads
those spills out of EXPLAIN-style plans and raises memory throttles.

The §4 budget constraint also lives here: if the buffer pool plus the
per-connection working areas exceed the VM's database memory limit, the
process swaps and everything slows down by :func:`swap_factor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.hardware import VMType
from repro.dbsim.config import KnobConfiguration
from repro.workloads.generator import WorkloadBatch
from repro.workloads.query import QueryFootprint

__all__ = [
    "WorkingAreaKnobs",
    "working_area_knobs",
    "SpillReport",
    "buffer_hit_ratio",
    "compute_spills",
    "swap_factor",
    "HOT_FRACTION",
]

import math

#: Fraction of the loaded data that is "hot" (the actual working page set
#: of Curino et al. [5], which the paper's gauging approach estimates).
HOT_FRACTION = 0.35


@dataclass(frozen=True)
class WorkingAreaKnobs:
    """Which knobs bound each working-area category, per DBMS flavor."""

    sort: tuple[str, ...]
    maintenance: tuple[str, ...]
    temp: tuple[str, ...]


def working_area_knobs(flavor: str) -> WorkingAreaKnobs:
    """Knob names backing sorts, maintenance and temp tables for *flavor*.

    PostgreSQL: ``work_mem`` / ``maintenance_work_mem`` / ``temp_buffers``.
    MySQL: sorts and joins share ``sort_buffer_size`` + ``join_buffer_size``
    (the paper names both as TPCC's hot knobs), maintenance maps to
    ``key_buffer_size`` and temp tables to ``tmp_table_size``.
    """
    if flavor == "postgres":
        return WorkingAreaKnobs(
            sort=("work_mem",),
            maintenance=("maintenance_work_mem",),
            temp=("temp_buffers",),
        )
    if flavor == "mysql":
        return WorkingAreaKnobs(
            sort=("sort_buffer_size", "join_buffer_size"),
            maintenance=("key_buffer_size",),
            temp=("tmp_table_size",),
        )
    raise ValueError(f"unknown DBMS flavor {flavor!r}")


@dataclass
class SpillReport:
    """Working-area accounting for one executed batch.

    ``memory_used_mb`` / ``disk_used_mb`` reproduce the Fig. 2 columns:
    how much of the demand fit in memory vs went to disk (peak per
    execution, and total spilled volume for the I/O model).
    """

    memory_used_mb: float = 0.0
    disk_used_mb: float = 0.0
    spill_read_write_mb: float = 0.0
    spilled_families: dict[str, float] = field(default_factory=dict)
    spilled_categories: set[str] = field(default_factory=set)
    temp_files: int = 0

    @property
    def any_spill(self) -> bool:
        """Whether any family spilled to disk in this batch."""
        return bool(self.spilled_families)


def buffer_hit_ratio(buffer_mb: float, data_size_gb: float) -> float:
    """Buffer-pool hit ratio given the pool size and loaded data volume.

    Saturating-exponential curve against the hot working set: a pool equal
    to the working set achieves ~0.93, a pool a tenth that size ~0.25.
    """
    if buffer_mb <= 0:
        return 0.0
    working_set_mb = max(1.0, data_size_gb * 1024.0 * HOT_FRACTION)
    return 0.98 * (1.0 - math.exp(-3.0 * buffer_mb / working_set_mb))


def _category_demand(footprint: QueryFootprint, category: str) -> float:
    if category == "sort":
        return footprint.sort_mb
    if category == "maintenance":
        return footprint.maintenance_mb
    if category == "temp":
        return footprint.temp_mb
    raise ValueError(f"unknown working-area category {category!r}")


def compute_spills(
    batch: WorkloadBatch, config: KnobConfiguration
) -> SpillReport:
    """Working-area accounting: demand vs knob allowance per family.

    For each family and each working-area category, executions get
    ``min(demand, allowance)`` MB of memory; the excess spills, costing
    ``2 × excess`` MB of disk traffic (write the run, read it back — how
    external merge sorts behave).
    """
    knobs = working_area_knobs(config.catalog.flavor)
    allowance = {
        "sort": sum(config[name] for name in knobs.sort),
        "maintenance": sum(config[name] for name in knobs.maintenance),
        "temp": sum(config[name] for name in knobs.temp),
    }
    report = SpillReport()
    peak_memory = 0.0
    peak_disk = 0.0
    for name, count in batch.counts.items():
        if count == 0:
            continue
        footprint = batch.families[name].footprint
        family_spill = 0.0
        for category in ("sort", "maintenance", "temp"):
            demand = _category_demand(footprint, category)
            if demand <= 0.0:
                continue
            in_memory = min(demand, allowance[category])
            excess = demand - in_memory
            peak_memory = max(peak_memory, in_memory)
            if excess > 0.0:
                peak_disk = max(peak_disk, excess)
                family_spill += excess
                report.spilled_categories.add(category)
                report.spill_read_write_mb += 2.0 * excess * count
                report.temp_files += count
        if family_spill > 0.0:
            report.spilled_families[name] = family_spill
    report.memory_used_mb = peak_memory
    report.disk_used_mb = peak_disk
    return report


def swap_factor(
    config: KnobConfiguration, vm: VMType, active_connections: int
) -> float:
    """Slowdown multiplier (≥ 1) from exceeding the DB memory limit.

    1.0 while the footprint fits; grows steeply (the OS is paging the
    buffer pool) once it does not.
    """
    limit = vm.db_memory_limit_mb
    footprint = config.memory_footprint_mb(active_connections)
    if footprint <= limit:
        return 1.0
    excess_fraction = (footprint - limit) / limit
    return 1.0 + 6.0 * excess_fraction
