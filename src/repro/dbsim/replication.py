"""Master/slave replicated service instances.

§4's apply protocol requires a high-availability topology: recommendations
are applied to the slave node(s) first; if the process crashes there, the
recommendation is rejected while the master keeps serving. A
:class:`ReplicatedService` is a master :class:`SimulatedDatabase` plus
replicas sharing flavor/VM/data size, with config equality checks the
reconciler uses to detect drift.
"""

from __future__ import annotations

import numpy as np

from repro.common.hardware import VMType
from repro.common.rng import derive_rng, make_rng
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import ExecutionResult, SimulatedDatabase
from repro.workloads.generator import WorkloadBatch

__all__ = ["ReplicatedService"]


class ReplicatedService:
    """A service instance: one master and ``replicas`` slaves.

    All nodes share the VM type and data size; only the master executes
    workload (read replicas are out of scope for the paper's experiments —
    the slaves exist to absorb risky config applies first).
    """

    def __init__(
        self,
        flavor: str = "postgres",
        vm: str | VMType = "m4.large",
        data_size_gb: float = 20.0,
        replicas: int = 1,
        active_connections: int = 20,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        rng = make_rng(seed)
        self.master = SimulatedDatabase(
            flavor,
            vm,
            data_size_gb,
            active_connections,
            seed=derive_rng(rng, "master"),
        )
        self.slaves = [
            SimulatedDatabase(
                flavor,
                vm,
                data_size_gb,
                active_connections,
                seed=derive_rng(rng, f"slave{i}"),
            )
            for i in range(replicas)
        ]

    @property
    def flavor(self) -> str:
        return self.master.flavor

    @property
    def nodes(self) -> list[SimulatedDatabase]:
        """Slaves first, master last — the §4 apply order."""
        return [*self.slaves, self.master]

    @property
    def config(self) -> KnobConfiguration:
        """The master's live configuration."""
        return self.master.config

    def run(self, batch: WorkloadBatch) -> ExecutionResult:
        """Execute *batch* on the master."""
        return self.master.run(batch)

    def configs_consistent(self) -> bool:
        """Whether every node runs the same configuration."""
        return all(node.config == self.master.config for node in self.slaves)

    def any_crashed(self) -> bool:
        """Whether any node is down."""
        return any(node.crashed for node in self.nodes)
