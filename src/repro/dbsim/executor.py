"""Per-query service-time model and batch-level throughput/latency.

The executor is analytic: a query family's service time is built from CPU
work (tuples examined, sort volume), buffer-pool misses served at disk
bandwidth, working-area spill I/O, WAL/commit waits that stretch with
current disk write latency, a planner distance penalty and an Amdahl
parallel speedup. Batch throughput then follows from comparing total
demand against the VM's CPU-seconds, with an M/M/c-flavoured latency
inflation near saturation.

These are the levers the paper's knobs pull: give a sort more
``work_mem`` → less spill I/O → smaller service time → more throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.hardware import VMType
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.memory import SpillReport, working_area_knobs
from repro.dbsim.planner import PlannerModel
from repro.workloads.generator import WorkloadBatch
from repro.workloads.query import QueryFootprint

__all__ = [
    "ExecutionSummary",
    "ServiceTimeCache",
    "family_service_time_ms",
    "run_batch",
]

_CPU_MS_PER_ROW = 0.0004
_CPU_MS_BASE = 0.03
_CPU_MS_PER_SORT_MB = 0.9
_COMMIT_WAIT_FACTOR = 0.35
_SCHEDULER_EFFICIENCY = 0.9


@dataclass(slots=True)
class ExecutionSummary:
    """Throughput/latency outcome of one batch."""

    total_queries: int
    offered_tps: float
    achieved_tps: float
    avg_latency_ms: float
    cpu_utilisation: float
    demand_cpu_ms: float


def _spill_mb_per_exec(
    footprint: QueryFootprint, config: KnobConfiguration
) -> float:
    """Disk MB (write + read-back) one execution spills."""
    knobs = working_area_knobs(config.catalog.flavor)
    allowance = {
        "sort": sum(config[n] for n in knobs.sort),
        "maintenance": sum(config[n] for n in knobs.maintenance),
        "temp": sum(config[n] for n in knobs.temp),
    }
    demand = {
        "sort": footprint.sort_mb,
        "maintenance": footprint.maintenance_mb,
        "temp": footprint.temp_mb,
    }
    spill = sum(max(0.0, demand[c] - allowance[c]) for c in demand)
    return 2.0 * spill


def family_service_time_ms(
    footprint: QueryFootprint,
    config: KnobConfiguration,
    vm: VMType,
    hit_ratio: float,
    planner: PlannerModel,
    commit_latency_ms: float,
    data_latency_factor: float = 1.0,
    swap: float = 1.0,
) -> float:
    """Service time (ms) of one execution of a family.

    ``commit_latency_ms`` is the WAL device's write latency (commits fsync
    the log, which §3.2 keeps on its own disk); ``data_latency_factor``
    (≥ 1) is the data device's queueing inflation — checkpoint bursts and
    backend flushes make buffer misses and spill I/O slower.
    """
    cpu_ms = (
        _CPU_MS_BASE
        + footprint.rows_examined * _CPU_MS_PER_ROW
        + footprint.sort_mb * _CPU_MS_PER_SORT_MB
    )
    miss_mb = (footprint.read_kb / 1024.0) * (1.0 - hit_ratio)
    read_ms = miss_mb / vm.disk.throughput_mb_s * 1000.0 * data_latency_factor
    spill_ms = (
        _spill_mb_per_exec(footprint, config)
        / vm.disk.throughput_mb_s
        * 1000.0
        * data_latency_factor
    )
    commit_ms = 0.0
    if footprint.write_kb > 0.0:
        commit_ms = _COMMIT_WAIT_FACTOR * commit_latency_ms
    multiplier = planner.time_multiplier(config, footprint)
    return ((cpu_ms + read_ms + spill_ms) * multiplier + commit_ms) * swap


class ServiceTimeCache:
    """Cross-window memo for the static parts of a family's service time.

    A family's service time splits into *static* terms — CPU cost, the
    page-miss volume per unit of miss ratio, the spill volume (a walk over
    the working-area knobs) and the planner distance multiplier — which
    depend only on the footprint and the live configuration, and *dynamic*
    terms (buffer hit ratio, commit latency, data-disk latency inflation,
    swap factor) that move every window. The memo stores the static terms
    per ``(workload, family)`` and replays the dynamic arithmetic on every
    call with the exact expressions of :func:`family_service_time_ms`, so
    a hit is bit-identical to the uncached computation.

    The key assumes what :func:`run_batch` guarantees: within one config
    epoch a family's footprint, configuration, VM and planner are fixed.
    The owning database bumps ``config_epoch`` on every apply/restart/
    heal, which flushes the memo.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._epoch: int | None = None
        self._store: dict[tuple[str, str], tuple[float, float, float, bool, float]] = {}

    def service_time_ms(
        self,
        epoch: int,
        workload_name: str,
        family_name: str,
        footprint: QueryFootprint,
        config: KnobConfiguration,
        vm: VMType,
        hit_ratio: float,
        planner: PlannerModel,
        commit_latency_ms: float,
        data_latency_factor: float,
        swap: float,
    ) -> float:
        """Memoised :func:`family_service_time_ms` (see class docstring)."""
        if epoch != self._epoch:
            self._store.clear()
            self._epoch = epoch
        key = (workload_name, family_name)
        parts = self._store.get(key)
        if parts is None:
            self.misses += 1
            parts = (
                _CPU_MS_BASE
                + footprint.rows_examined * _CPU_MS_PER_ROW
                + footprint.sort_mb * _CPU_MS_PER_SORT_MB,
                footprint.read_kb / 1024.0,
                _spill_mb_per_exec(footprint, config),
                footprint.write_kb > 0.0,
                planner.time_multiplier(config, footprint),
            )
            self._store[key] = parts
        else:
            self.hits += 1
        cpu_ms, read_mb, spill_mb, has_commit, multiplier = parts
        miss_mb = read_mb * (1.0 - hit_ratio)
        read_ms = miss_mb / vm.disk.throughput_mb_s * 1000.0 * data_latency_factor
        spill_ms = spill_mb / vm.disk.throughput_mb_s * 1000.0 * data_latency_factor
        commit_ms = 0.0
        if has_commit:
            commit_ms = _COMMIT_WAIT_FACTOR * commit_latency_ms
        return ((cpu_ms + read_ms + spill_ms) * multiplier + commit_ms) * swap


def run_batch(
    batch: WorkloadBatch,
    config: KnobConfiguration,
    vm: VMType,
    hit_ratio: float,
    planner: PlannerModel,
    spill: SpillReport,
    commit_latency_ms: float,
    data_latency_factor: float = 1.0,
    swap: float = 1.0,
    cache: ServiceTimeCache | None = None,
    config_epoch: int = 0,
) -> ExecutionSummary:
    """Throughput and mean latency of *batch* under *config*.

    Demand is summed per family; achieved throughput is capped by the
    VM's CPU-seconds. Latency inflates as utilisation approaches 1
    (queueing) — mild below 70% utilisation, steep beyond. Passing a
    :class:`ServiceTimeCache` (with the owning database's
    ``config_epoch``) memoises the per-family service times across
    windows.
    """
    del spill  # spill effects enter via family service times
    total_queries = batch.total_queries
    if total_queries == 0:
        return ExecutionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)

    demand_ms = 0.0
    for name, count in batch.counts.items():
        if count == 0:
            continue
        if cache is not None:
            service = cache.service_time_ms(
                config_epoch,
                batch.workload_name,
                name,
                batch.families[name].footprint,
                config,
                vm,
                hit_ratio,
                planner,
                commit_latency_ms,
                data_latency_factor,
                swap,
            )
        else:
            service = family_service_time_ms(
                batch.families[name].footprint,
                config,
                vm,
                hit_ratio,
                planner,
                commit_latency_ms,
                data_latency_factor,
                swap,
            )
        demand_ms += service * count

    capacity_ms = vm.vcpus * batch.duration_s * 1000.0 * _SCHEDULER_EFFICIENCY
    utilisation = min(1.0, demand_ms / capacity_ms) if capacity_ms > 0 else 1.0
    achieved_fraction = min(1.0, capacity_ms / demand_ms) if demand_ms > 0 else 1.0
    achieved_tps = total_queries * achieved_fraction / batch.duration_s
    base_latency = demand_ms / total_queries
    queueing = 1.0 + 3.0 * utilisation**4
    return ExecutionSummary(
        total_queries=total_queries,
        offered_tps=batch.requested_rps,
        achieved_tps=achieved_tps,
        avg_latency_ms=base_latency * queueing,
        cpu_utilisation=utilisation,
        demand_cpu_ms=demand_ms,
    )
