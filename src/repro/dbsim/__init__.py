"""The relational-database substrate.

An analytical simulator of a PostgreSQL-9.6-like / MySQL-5.6-like service
instance: knob catalogs in the paper's three throttle classes, a buffer
pool and working-area memory model (with disk spills), a background
writer/checkpointer whose bursts surface as disk-latency peaks, a planner
cost model with a latent per-workload optimum, and pg_stat-style delta
metrics for the tuners.
"""

from repro.dbsim.bgwriter import CheckpointEvent, WriteBackParams, WriteBackScheduler
from repro.dbsim.config import KnobConfiguration, MemoryBudgetError
from repro.dbsim.engine import (
    ApplyOutcome,
    DatabaseCrashed,
    ExecutionResult,
    SimulatedDatabase,
)
from repro.dbsim.knobs import (
    KnobCatalog,
    KnobClass,
    KnobDef,
    KnobUnit,
    catalog_for,
    mysql_catalog,
    postgres_catalog,
)
from repro.dbsim.memory import (
    SpillReport,
    buffer_hit_ratio,
    compute_spills,
    swap_factor,
    working_area_knobs,
)
from repro.dbsim.metrics import METRIC_NAMES, OTTERTUNE_METRICS, MetricsDelta
from repro.dbsim.planner import PlanEstimate, PlannerModel, latent_optimum
from repro.dbsim.replication import ReplicatedService
from repro.dbsim.storage import DiskSimulator, DiskTraffic, DiskWindowResult

__all__ = [
    "ApplyOutcome",
    "CheckpointEvent",
    "DatabaseCrashed",
    "DiskSimulator",
    "DiskTraffic",
    "DiskWindowResult",
    "ExecutionResult",
    "KnobCatalog",
    "KnobClass",
    "KnobConfiguration",
    "KnobDef",
    "KnobUnit",
    "METRIC_NAMES",
    "MemoryBudgetError",
    "MetricsDelta",
    "OTTERTUNE_METRICS",
    "PlanEstimate",
    "PlannerModel",
    "ReplicatedService",
    "SimulatedDatabase",
    "SpillReport",
    "WriteBackParams",
    "WriteBackScheduler",
    "buffer_hit_ratio",
    "catalog_for",
    "compute_spills",
    "latent_optimum",
    "mysql_catalog",
    "postgres_catalog",
    "swap_factor",
    "working_area_knobs",
]
