"""Knob configurations: validated knob→value mappings.

A :class:`KnobConfiguration` binds a :class:`~repro.dbsim.knobs.KnobCatalog`
to concrete values, validating ranges and exposing the §4 memory-budget
check ``A + B + C + D < X`` (buffer pool plus per-connection working areas
must fit in the memory granted to the database process).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.dbsim.knobs import KnobCatalog, KnobClass

__all__ = [
    "KnobConfiguration",
    "MemoryBudgetError",
    "effective_sessions",
    "fit_values_to_budget",
    "fit_values_to_budget_frozen",
]

#: Fraction of active connections assumed to run memory-hungry operations
#: (sorts, index builds) simultaneously. Charging every connection its full
#: working area would make almost the whole knob space infeasible; real
#: capacity planning uses a concurrency discount like this.
_CONCURRENCY_FACTOR = 0.25


def effective_sessions(active_connections: int) -> float:
    """Concurrent memory-hungry sessions implied by *active_connections*."""
    if active_connections < 1:
        raise ValueError("active_connections must be >= 1")
    return max(1.0, active_connections * _CONCURRENCY_FACTOR)


class MemoryBudgetError(ValueError):
    """Raised when a configuration cannot fit in the process memory budget."""


class KnobConfiguration:
    """Immutable-by-convention mapping of knob name to value.

    Use :meth:`with_values` to derive modified configurations; detectors
    and tuners never mutate a configuration in place.
    """

    def __init__(
        self, catalog: KnobCatalog, values: Mapping[str, float] | None = None
    ) -> None:
        self.catalog = catalog
        self._values = catalog.defaults()
        self._hash: int | None = None
        if values:
            for name, value in values.items():
                knob = catalog.get(name)
                if not knob.min_value <= value <= knob.max_value:
                    raise ValueError(
                        f"{name}={value} outside [{knob.min_value}, {knob.max_value}]"
                    )
                self._values[name] = float(value)

    def __getitem__(self, name: str) -> float:
        self.catalog.get(name)  # raise a flavour-aware KeyError if unknown
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnobConfiguration):
            return NotImplemented
        return (
            self.catalog.flavor == other.catalog.flavor
            and self._values == other._values
        )

    def __hash__(self) -> int:
        # Configurations are immutable by convention and hashed hot (they
        # key the planner's per-config caches), so compute once.
        if self._hash is None:
            self._hash = hash(
                (self.catalog.flavor, tuple(sorted(self._values.items())))
            )
        return self._hash

    def as_dict(self) -> dict[str, float]:
        """Copy of all knob values."""
        return dict(self._values)

    def with_values(self, updates: Mapping[str, float]) -> "KnobConfiguration":
        """A new configuration with *updates* applied (and validated)."""
        merged = dict(self._values)
        merged.update(updates)
        return KnobConfiguration(self.catalog, merged)

    def clamped(self, updates: Mapping[str, float]) -> "KnobConfiguration":
        """Like :meth:`with_values` but clamping out-of-range values."""
        merged = dict(self._values)
        for name, value in updates.items():
            merged[name] = self.catalog.get(name).clamp(value)
        return KnobConfiguration(self.catalog, merged)

    def diff(self, other: "KnobConfiguration") -> dict[str, tuple[float, float]]:
        """Knobs whose values differ, as ``{name: (self_value, other_value)}``."""
        out: dict[str, tuple[float, float]] = {}
        for name, value in self._values.items():
            other_value = other._values.get(name)
            if other_value is not None and other_value != value:
                out[name] = (value, other_value)
        return out

    # -- memory budget (§4: A + B + C + D < X) --------------------------------

    def buffer_pool_mb(self) -> float:
        """The non-tunable buffer-pool knob's value (A in the §4 equation)."""
        name = (
            "shared_buffers"
            if self.catalog.flavor == "postgres"
            else "innodb_buffer_pool_size"
        )
        return self._values[name]

    def working_area_mb(self) -> float:
        """Sum of the tunable memory knobs (B + C + D …)."""
        total = 0.0
        for knob in self.catalog.memory_budget_knobs():
            if not knob.restart_required:
                total += self._values[knob.name]
        return total

    def memory_footprint_mb(self, active_connections: int = 1) -> float:
        """Estimated process footprint with *active_connections* sessions.

        The buffer pool is shared; working areas are charged per
        *effective* concurrent session (see :func:`effective_sessions`),
        matching how PostgreSQL's ``work_mem`` family multiplies under
        concurrency.
        """
        return (
            self.buffer_pool_mb()
            + self._restart_memory_mb()
            + self.working_area_mb() * effective_sessions(active_connections)
        )

    def _restart_memory_mb(self) -> float:
        return sum(
            self._values[k.name]
            for k in self.catalog.memory_budget_knobs()
            if k.restart_required and k.name != self._buffer_name()
        )

    def _buffer_name(self) -> str:
        return (
            "shared_buffers"
            if self.catalog.flavor == "postgres"
            else "innodb_buffer_pool_size"
        )

    def check_memory_budget(
        self, memory_limit_mb: float, active_connections: int = 1
    ) -> None:
        """Raise :class:`MemoryBudgetError` if the footprint exceeds the limit."""
        footprint = self.memory_footprint_mb(active_connections)
        if footprint >= memory_limit_mb:
            raise MemoryBudgetError(
                f"configured memory {footprint:.0f} MB >= limit "
                f"{memory_limit_mb:.0f} MB "
                f"(buffer {self.buffer_pool_mb():.0f} MB + working areas "
                f"{self.working_area_mb():.0f} MB x {active_connections})"
            )

    def fitted_to_budget(
        self,
        memory_limit_mb: float,
        active_connections: int = 1,
        headroom: float = 0.95,
        buffer_share: float = 0.7,
    ) -> "KnobConfiguration":
        """A copy repaired to fit the §4 memory budget.

        Policy: the buffer pool may take at most ``buffer_share`` of the
        budget (shrunk if above); the tunable working-area knobs are then
        scaled down uniformly until the per-session charge fits in the
        remainder. Knob minimums are always respected, so an impossibly
        small budget yields the closest legal configuration rather than an
        exception.
        """
        budget = memory_limit_mb * headroom
        sessions = effective_sessions(active_connections)
        updates: dict[str, float] = {}

        buffer_name = self._buffer_name()
        buffer_knob = self.catalog.get(buffer_name)
        buffer_mb = min(self.buffer_pool_mb(), buffer_share * budget)
        buffer_mb = buffer_knob.clamp(buffer_mb)
        if buffer_mb != self.buffer_pool_mb():
            updates[buffer_name] = buffer_mb

        allowed = max(0.0, budget - buffer_mb)
        shrinkable = [
            k
            for k in self.catalog.memory_budget_knobs()
            if k.name != buffer_name
        ]
        # Per-MB charge against the budget: working areas multiply per
        # effective session, restart-required pools (wal_buffers) count once.
        weight = {
            k.name: (1.0 if k.restart_required else sessions) for k in shrinkable
        }
        values = {k.name: self._values[k.name] for k in shrinkable}
        # Uniform scaling can undershoot when some knobs clamp at their
        # minimum; iterate, redistributing the shortfall onto the knobs
        # that still have headroom above their floors.
        for _ in range(6):
            charge = sum(values[n] * weight[n] for n in values)
            if charge <= allowed:
                break
            reducible = sum(
                (values[k.name] - k.min_value) * weight[k.name] for k in shrinkable
            )
            if reducible <= 1e-12:
                break
            shrink = min(1.0, (charge - allowed) / reducible)
            for knob in shrinkable:
                excess = values[knob.name] - knob.min_value
                values[knob.name] = knob.clamp(
                    values[knob.name] - excess * shrink
                )
        for name, value in values.items():
            if value != self._values[name]:
                updates[name] = value
        if not updates:
            return self
        return self.with_values(updates)

    def values_for_class(self, knob_class: KnobClass) -> dict[str, float]:
        """Values of the knobs belonging to *knob_class*."""
        return {
            k.name: self._values[k.name] for k in self.catalog.by_class(knob_class)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        changed = {
            n: v for n, v in self._values.items()
            if v != self.catalog.get(n).default
        }
        return f"KnobConfiguration({self.catalog.flavor}, changed={changed})"


def _budget_fit_arrays(
    catalog: KnobCatalog,
) -> tuple[int, float, float, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Catalog indices/bounds used by :func:`fit_values_to_budget`.

    Returns ``(buffer_idx, buffer_min, buffer_max, shrink_idx, shrink_min,
    shrink_max, restart_mask)`` where the shrink arrays cover the
    memory-budget knobs except the buffer pool, in catalog order (the
    order the scalar repair iterates them in). Cached on the catalog.
    """
    arrays = getattr(catalog, "_budget_fit_cache", None)
    if arrays is None:
        names = catalog.names()
        buffer_name = (
            "shared_buffers"
            if catalog.flavor == "postgres"
            else "innodb_buffer_pool_size"
        )
        buffer_knob = catalog.get(buffer_name)
        shrinkable = [
            k for k in catalog.memory_budget_knobs() if k.name != buffer_name
        ]
        arrays = (
            names.index(buffer_name),
            buffer_knob.min_value,
            buffer_knob.max_value,
            np.array([names.index(k.name) for k in shrinkable], dtype=int),
            np.array([k.min_value for k in shrinkable], dtype=float),
            np.array([k.max_value for k in shrinkable], dtype=float),
            np.array([k.restart_required for k in shrinkable], dtype=bool),
        )
        catalog._budget_fit_cache = arrays
    return arrays


def fit_values_to_budget(
    values: np.ndarray,
    catalog: KnobCatalog,
    memory_limit_mb: float,
    active_connections: int = 1,
    headroom: float = 0.95,
    buffer_share: float = 0.7,
) -> np.ndarray:
    """Batched :meth:`KnobConfiguration.fitted_to_budget` over value rows.

    *values* is an (n, d) matrix of knob values in catalog order; the
    result applies the exact same repair policy row by row — buffer pool
    capped at ``buffer_share`` of the budget, then the working-area knobs
    scaled down iteratively (respecting their floors) until the
    per-session charge fits — without materialising a single
    :class:`KnobConfiguration`. The per-row arithmetic mirrors the scalar
    method operation for operation, including the knob iteration order of
    the charge sums, so a repaired row matches the scalar repair bitwise.
    """
    (
        buffer_idx,
        buffer_min,
        buffer_max,
        shrink_idx,
        shrink_min,
        shrink_max,
        restart_mask,
    ) = _budget_fit_arrays(catalog)
    out = np.array(values, dtype=float, copy=True)
    if out.ndim != 2 or out.shape[1] != len(catalog):
        raise ValueError("values must be (n, d) in catalog order")
    budget = memory_limit_mb * headroom
    sessions = effective_sessions(active_connections)
    weights = np.where(restart_mask, 1.0, sessions)

    buffer_mb = np.minimum(out[:, buffer_idx], buffer_share * budget)
    buffer_mb = np.clip(buffer_mb, buffer_min, buffer_max)
    out[:, buffer_idx] = buffer_mb
    allowed = np.maximum(0.0, budget - buffer_mb)

    work = out[:, shrink_idx]  # (n, k) copy via fancy indexing
    active = np.ones(len(out), dtype=bool)
    for _ in range(6):
        # Accumulate in knob order so the float sums match the scalar
        # method's sequential sums exactly.
        charge = np.zeros(len(out))
        reducible = np.zeros(len(out))
        for k in range(work.shape[1]):
            charge += work[:, k] * weights[k]
            reducible += (work[:, k] - shrink_min[k]) * weights[k]
        active &= charge > allowed
        active &= reducible > 1e-12
        if not active.any():
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            shrink = np.minimum(1.0, (charge - allowed) / reducible)
        rows = np.where(active)[0]
        excess = work[rows] - shrink_min
        work[rows] = np.clip(
            work[rows] - excess * shrink[rows, None], shrink_min, shrink_max
        )
    out[:, shrink_idx] = work
    return out


def fit_values_to_budget_frozen(
    values: np.ndarray,
    catalog: KnobCatalog,
    memory_limit_mb: float,
    frozen: np.ndarray,
    active_connections: int = 1,
    headroom: float = 0.95,
    buffer_share: float = 0.7,
) -> np.ndarray:
    """Budget repair that never moves the *frozen* catalog columns.

    The dynamic knob selector projects repair onto its active subspace:
    inactive knobs are carried byte-identically from the incumbent (which
    already runs inside the budget), so they contribute their memory
    charge here but are held fixed while only the unfrozen working-area
    knobs absorb the shrink. *frozen* is a ``(d,)`` boolean mask in
    catalog order. Same iterative policy as
    :func:`fit_values_to_budget`; with an all-``False`` mask the two
    agree bitwise.
    """
    (
        buffer_idx,
        buffer_min,
        buffer_max,
        shrink_idx,
        shrink_min,
        shrink_max,
        restart_mask,
    ) = _budget_fit_arrays(catalog)
    frozen = np.asarray(frozen, dtype=bool)
    if frozen.shape != (len(catalog),):
        raise ValueError("frozen must be a (d,) mask in catalog order")
    out = np.array(values, dtype=float, copy=True)
    if out.ndim != 2 or out.shape[1] != len(catalog):
        raise ValueError("values must be (n, d) in catalog order")
    budget = memory_limit_mb * headroom
    sessions = effective_sessions(active_connections)
    weights = np.where(restart_mask, 1.0, sessions)

    if not frozen[buffer_idx]:
        buffer_mb = np.minimum(out[:, buffer_idx], buffer_share * budget)
        buffer_mb = np.clip(buffer_mb, buffer_min, buffer_max)
        out[:, buffer_idx] = buffer_mb
    else:
        buffer_mb = out[:, buffer_idx]
    allowed = np.maximum(0.0, budget - buffer_mb)

    work = out[:, shrink_idx]  # (n, k) copy via fancy indexing
    movable = ~frozen[shrink_idx]
    active = np.ones(len(out), dtype=bool)
    for _ in range(6):
        charge = np.zeros(len(out))
        reducible = np.zeros(len(out))
        for k in range(work.shape[1]):
            charge += work[:, k] * weights[k]
            if movable[k]:
                reducible += (work[:, k] - shrink_min[k]) * weights[k]
        active &= charge > allowed
        active &= reducible > 1e-12
        if not active.any():
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            shrink = np.minimum(1.0, (charge - allowed) / reducible)
        rows = np.where(active)[0]
        excess = work[rows] - shrink_min
        repaired = np.clip(
            work[rows] - excess * shrink[rows, None], shrink_min, shrink_max
        )
        # Frozen columns bypass even the clip so their bytes never move.
        work[rows] = np.where(movable[None, :], repaired, work[rows])
    out[:, shrink_idx] = work
    return out
