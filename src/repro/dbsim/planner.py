"""Query planner cost model and the async/planner knob response surface.

§3.3's premise: for a given workload there exists a latent optimum for the
async/planner-estimate knobs, it is *not* the hardware-derived recommended
static setting, and moving towards it improves both the planner's
cost/benefit estimates and real execution time. We realise that premise
directly: each (flavor, workload) pair gets a deterministic latent optimum
drawn from the knob ranges; execution time and EXPLAIN cost share the same
distance-to-optimum penalty, so the TDE's MDP — which probes EXPLAIN
cost/benefit — learns something that transfers to real performance.

Parallelism is modelled separately via Amdahl's law over the worker-count
knob, with a contention penalty when more workers are requested than the
VM has cores — the "requested workers are not available" failure mode the
paper describes.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass

import numpy as np

from repro.common.hardware import VMType
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.knobs import KnobClass, KnobDef
from repro.dbsim.memory import compute_spills, working_area_knobs
from repro.workloads.query import Query, QueryFootprint

__all__ = ["PlanEstimate", "PlannerModel", "latent_optimum"]

_CPU_TUPLE_COST = 0.01
_PAGE_KB = 8.0
#: Nominal per-page I/O cost used in EXPLAIN totals (blend of sequential
#: and random fetches; kept knob-independent so costs stay comparable).
_NOMINAL_PAGE_COST = 2.0
#: Knobs treated as worker-count knobs (Amdahl) rather than cost constants.
_PARALLEL_KNOBS = {"max_parallel_workers_per_gather", "innodb_thread_concurrency"}


def _hash_unit(*parts: str) -> float:
    """Deterministic float in [0, 1) from string parts."""
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@functools.lru_cache(maxsize=4096)
def _latent_optimum_cached(flavor: str, workload_name: str, knob_name: str,
                           min_value: float, max_value: float) -> float:
    span = max_value - min_value
    base_u = _hash_unit(flavor, knob_name)
    workload_u = _hash_unit(flavor, workload_name, knob_name)
    u = 0.7 * base_u + 0.3 * workload_u
    return min_value + span * (0.1 + 0.8 * u)


def latent_optimum(
    flavor: str, workload_name: str, knob: KnobDef
) -> float:
    """The latent optimal value of *knob* for *workload_name*.

    The optimum is mostly a property of the engine and substrate (a
    flavor-level base drawn once per knob) with a workload-specific
    deviation on top: planner cost constants that are right for one
    workload are *roughly* right for another on the same hardware, which
    is what lets tuner experience transfer across workloads — while §3.3's
    observation that "the optimality changes with respect to change in
    workload pattern" still holds through the deviation term. Both draws
    are deterministic and stay inside the central 80% of the knob range so
    the optimum is always reachable by tuning and never sits on a cap.
    """
    return _latent_optimum_cached(
        flavor, workload_name, knob.name, knob.min_value, knob.max_value
    )


@dataclass(frozen=True, slots=True)
class PlanEstimate:
    """EXPLAIN-style output for one query under one configuration."""

    query_family: str
    total_cost: float
    uses_disk_sort: bool
    uses_disk_maintenance: bool
    uses_disk_temp: bool
    planned_workers: int

    @property
    def uses_disk(self) -> bool:
        """Whether any executor node spills to disk."""
        return self.uses_disk_sort or self.uses_disk_maintenance or self.uses_disk_temp

    def spilled_categories(self) -> set[str]:
        """Working-area categories this plan spills in."""
        out: set[str] = set()
        if self.uses_disk_sort:
            out.add("sort")
        if self.uses_disk_maintenance:
            out.add("maintenance")
        if self.uses_disk_temp:
            out.add("temp")
        return out


class PlannerModel:
    """Planner response surface for one (flavor, workload) pair."""

    def __init__(self, flavor: str, workload_name: str, vm: VMType) -> None:
        self.flavor = flavor
        self.workload_name = workload_name
        self.vm = vm
        # Per-config memos: configurations are immutable and change only
        # on apply, while these quantities are read per query at fleet
        # scale. Keys are the configurations themselves (cached hash).
        self._distance_cache: dict[KnobConfiguration, float] = {}
        self._multiplier_cache: dict[tuple, float] = {}
        self._allowance_cache: dict[
            KnobConfiguration, tuple[float, float, float]
        ] = {}

    def cost_knobs(self, config: KnobConfiguration) -> list[KnobDef]:
        """The planner-estimate knobs (excluding worker-count knobs)."""
        return [
            k
            for k in config.catalog.by_class(KnobClass.ASYNC_PLANNER)
            if k.name not in _PARALLEL_KNOBS
        ]

    def distance(self, config: KnobConfiguration) -> float:
        """Mean normalised distance of the planner knobs from the optimum."""
        cached = self._distance_cache.get(config)
        if cached is not None:
            return cached
        knobs = self.cost_knobs(config)
        if not knobs:
            return 0.0
        total = 0.0
        for knob in knobs:
            optimum = latent_optimum(self.flavor, self.workload_name, knob)
            span = knob.max_value - knob.min_value
            total += abs(config[knob.name] - optimum) / span
        result = total / len(knobs)
        self._distance_cache[config] = result
        return result

    def penalty(self, config: KnobConfiguration, sensitivity: float) -> float:
        """Execution-time multiplier (≥ 1) from planner misestimates.

        Quadratic in the normalised distance: a mildly wrong cost constant
        barely matters, but estimates far from the optimum flip join
        orders and scan choices, and real plan regressions cost multiples
        (scale calibrated so a fully-sensitive query at maximum distance
        runs ~4× slower).
        """
        d = self.distance(config)
        return 1.0 + sensitivity * (1.2 * d + 2.8 * d * d)

    def requested_workers(self, config: KnobConfiguration) -> int:
        """Parallel workers the configuration asks for per query."""
        if self.flavor == "postgres":
            return int(config["max_parallel_workers_per_gather"])
        concurrency = int(config["innodb_thread_concurrency"])
        return self.vm.vcpus if concurrency == 0 else min(concurrency, self.vm.vcpus)

    def parallel_speedup(
        self, config: KnobConfiguration, parallel_fraction: float
    ) -> float:
        """Amdahl speedup (≥ ~1) of a query with *parallel_fraction*.

        Workers beyond ``vcpus - 1`` do not help and add a contention
        penalty, so the worker knob has an interior optimum.
        """
        if parallel_fraction <= 0.0:
            return 1.0
        requested = self.requested_workers(config)
        usable = max(0, min(requested, self.vm.vcpus - 1))
        speedup = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / (1.0 + usable))
        oversubscription = max(0, requested - (self.vm.vcpus - 1))
        contention = 1.0 + 0.08 * oversubscription
        return speedup / contention

    def time_multiplier(
        self, config: KnobConfiguration, footprint: QueryFootprint
    ) -> float:
        """Combined planner-penalty / parallel-speedup execution multiplier."""
        # sensitivity/parallel_fraction are family constants (jitter never
        # touches them), so this key stays tiny per configuration.
        key = (config, footprint.planner_sensitivity, footprint.parallel_fraction)
        cached = self._multiplier_cache.get(key)
        if cached is not None:
            return cached
        penalty = self.penalty(config, footprint.planner_sensitivity)
        speedup = self.parallel_speedup(config, footprint.parallel_fraction)
        result = penalty / speedup
        self._multiplier_cache[key] = result
        return result

    def explain(
        self,
        query: Query,
        config: KnobConfiguration,
        rng: np.random.Generator | None = None,
        noise: float = 0.03,
    ) -> PlanEstimate:
        """EXPLAIN *query*: estimated cost plus disk-usage flags.

        The estimated cost is a (noisy) affine image of the execution
        model's predicted time under *config* — §3.3's premise is exactly
        that the planner's cost/benefit probes are informative about real
        performance, so the cost must share the execution surface rather
        than use the cost-constant knobs directly (a raw ``EXPLAIN`` total
        is not comparable across different cost constants; a predicted
        runtime is). Disk flags come from comparing the query's
        working-area demands against the current knob allowances, exactly
        like reading "Sort Method: external merge" out of a real plan.
        """
        fp = query.footprint
        pages = fp.read_kb / _PAGE_KB
        io_cost = pages * _NOMINAL_PAGE_COST
        cpu_cost = fp.rows_examined * _CPU_TUPLE_COST + fp.sort_mb * 2.0
        cost = (cpu_cost + io_cost) * self.time_multiplier(config, fp)
        if rng is not None and noise > 0.0:
            cost *= float(rng.lognormal(0.0, noise))
        allowances = self._allowance_cache.get(config)
        if allowances is None:
            knobs = working_area_knobs(self.flavor)
            allowances = (
                sum(config[n] for n in knobs.sort),
                sum(config[n] for n in knobs.maintenance),
                sum(config[n] for n in knobs.temp),
            )
            self._allowance_cache[config] = allowances
        sort_allowance, maint_allowance, temp_allowance = allowances
        return PlanEstimate(
            query_family=query.family,
            total_cost=float(cost),
            uses_disk_sort=fp.sort_mb > sort_allowance,
            uses_disk_maintenance=fp.maintenance_mb > maint_allowance,
            uses_disk_temp=fp.temp_mb > temp_allowance,
            planned_workers=(
                self.requested_workers(config) if fp.parallel_fraction > 0 else 0
            ),
        )

def spill_categories_for_batch(batch, config: KnobConfiguration) -> set[str]:
    """Convenience: which working-area categories spill for *batch*."""
    return compute_spills(batch, config).spilled_categories
