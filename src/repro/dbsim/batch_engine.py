"""Columnar multi-member window stepping for fleet-scale experiments.

:class:`MemberBatch` steps *many* :class:`~repro.dbsim.engine.SimulatedDatabase`
instances through one window with batched numpy operations instead of a
Python loop over members. The per-second write-back simulation runs as one
loop over window seconds updating ``(members,)`` state vectors, and the
disk model evaluates utilisation/latency on ``(members, seconds)``
matrices; only the parts that are inherently per-member stay per-member —
RNG jitter draws (each member owns a keyed substream whose draw order is
a frozen contract), batch costing through the per-database service-time
memo, EXPLAIN sampling and metric assembly.

Bit-identical output to ``[db.run(batch) for db, batch in ...]`` is the
hard invariant, kept by three rules:

1. **Same float expressions, same order.** Every vectorized statement
   mirrors the scalar engine's arithmetic element-for-element: IEEE-754
   double ops are identical whether issued on scalars or elementwise on
   arrays, and accumulators are updated in the same sequence. Reductions
   (per-member means/sums) run over contiguous rows, where numpy's
   pairwise summation matches the 1-D case.
2. **Per-member RNG streams.** Members never share a generator, so
   phase-reordering work *across* members (generate all batches, then
   step all members) consumes every stream in exactly the order the
   serial loop would.
3. **Fallback for exceptional windows.** Members with pending restart
   stalls, cold caches, injected disk degradation, history retention or a
   deviating window length take the scalar ``db.run`` path for that
   window; a crashed member makes the whole window run the serial loop so
   partial-advance crash semantics stay exact. Faults and chaos therefore
   never meet the vectorized path.

Scalars that land in result objects are converted to Python floats —
``repr`` parity with the scalar engine requires no ``np.float64`` leaks.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dbsim.bgwriter import CheckpointEvent, WriteBackParams, WriteBackResult
from repro.dbsim.bgwriter import _WAL_AMPLIFICATION
from repro.dbsim.engine import (
    ExecutionResult,
    SimulatedDatabase,
    _PAGE_KB_BY_FLAVOR,
    _SEQUENTIAL_BLOCK_KB,
)
from repro.dbsim.executor import run_batch
from repro.dbsim.memory import buffer_hit_ratio, compute_spills, swap_factor
from repro.dbsim.planner import PlannerModel
from repro.dbsim.storage import _MAX_UTILISATION, DiskWindowResult
from repro.common.timeseries import TimeSeries
from repro.workloads.generator import WorkloadBatch

__all__ = ["MemberBatch"]

#: Members vectorized per chunk. Bounds transient matrix memory at
#: ``chunk × window_seconds`` doubles (~5 MB per matrix at 2048 × 300)
#: while keeping the per-second loop's vector width large.
_CHUNK_MEMBERS = 2048


class MemberBatch:
    """Columnar window stepper over a fixed roster of databases.

    Parameters
    ----------
    databases:
        The member databases in canonical member order. The roster is
        fixed for the lifetime of the batch; per-config derived columns
        (write-back parameters, hit ratio, swap factor) are cached per
        member and refreshed when that member's ``config_epoch`` moves.
    """

    def __init__(self, databases: Sequence[SimulatedDatabase]) -> None:
        self._dbs = list(databases)
        n = len(self._dbs)
        # Config-derived columns, refreshed per member on epoch change.
        self._epochs = [-1] * n
        self._bg_rate = np.zeros(n)
        self._interval = np.zeros(n)
        self._wal_limit = np.zeros(n)
        self._forced = np.full(n, np.inf)
        self._has_forced = np.zeros(n, dtype=bool)
        self._dirty_cap = np.zeros(n)
        self._spread_s: list[float] = [1.0] * n
        self._hit0: list[float] = [0.0] * n
        self._swap: list[float] = [1.0] * n
        # VM/device columns — fixed for a database's lifetime.
        self._throughput = np.array(
            [db.vm.disk.throughput_mb_s for db in self._dbs]
        )
        self._max_iops = np.array([db.vm.disk.max_iops for db in self._dbs])
        self._base_latency = np.array(
            [db.vm.disk.base_latency_ms for db in self._dbs]
        )
        self._page_mb = np.array(
            [_PAGE_KB_BY_FLAVOR[db.flavor] / 1024.0 for db in self._dbs]
        )
        self._vac_interval = np.array(
            [db._scheduler.vacuum_interval_s for db in self._dbs]
        )
        self._vac_write = np.array(
            [db._scheduler.vacuum_write_mb for db in self._dbs]
        )

    def __len__(self) -> int:
        return len(self._dbs)

    def _refresh_static(self, m: int) -> None:
        """Recompute member *m*'s config-derived columns (epoch moved)."""
        db = self._dbs[m]
        params = WriteBackParams.from_config(db.config)
        buffer_mb = db.config.buffer_pool_mb()
        self._bg_rate[m] = params.bg_flush_mb_s
        self._interval[m] = params.checkpoint_interval_s
        self._wal_limit[m] = params.wal_limit_mb
        forced = params.forced_dirty_limit_mb
        has_forced = forced is not None and forced > 0.0
        self._has_forced[m] = has_forced
        self._forced[m] = forced if has_forced else np.inf  # type: ignore[assignment]
        self._dirty_cap[m] = 0.9 * buffer_mb
        self._spread_s[m] = max(
            1.0, params.checkpoint_interval_s * params.spread_fraction
        )
        self._hit0[m] = buffer_hit_ratio(buffer_mb, db.data_size_gb)
        self._swap[m] = swap_factor(db.config, db.vm, db.active_connections)
        self._epochs[m] = db.config_epoch

    @staticmethod
    def _eligible(db: SimulatedDatabase, batch: WorkloadBatch, window_t: int) -> bool:
        """Whether this member's window can run on the vectorized path."""
        return (
            max(1, int(round(batch.duration_s))) == window_t
            and db._pending_stall_s == 0.0
            and db._cold_windows == 0
            and db._data_disk.degradation == 1.0
            and db._wal_disk.degradation == 1.0
            and not db.keep_history
        )

    def step_window(
        self, batches: Sequence[WorkloadBatch]
    ) -> list[ExecutionResult]:
        """Step every member through its batch; results in member order.

        Equivalent to ``[db.run(b) for db, b in zip(databases, batches)]``
        bit-for-bit, including which exception is raised when a member is
        down.
        """
        dbs = self._dbs
        if len(batches) != len(dbs):
            raise ValueError("one batch per member required")
        if not dbs:
            return []
        if any(db.crashed for db in dbs):
            # Serial semantics: members before the crashed one advance,
            # then DatabaseCrashed propagates from the dead member.
            return [db.run(batch) for db, batch in zip(dbs, batches)]
        window_t = max(1, int(round(batches[0].duration_s)))
        results: list[ExecutionResult | None] = [None] * len(dbs)
        vector_members: list[int] = []
        for m, (db, batch) in enumerate(zip(dbs, batches)):
            if self._eligible(db, batch, window_t):
                vector_members.append(m)
            else:
                results[m] = db.run(batch)
        for lo in range(0, len(vector_members), _CHUNK_MEMBERS):
            self._step_chunk(
                vector_members[lo : lo + _CHUNK_MEMBERS],
                batches,
                window_t,
                results,
            )
        return results  # type: ignore[return-value]

    # -- the vectorized window -------------------------------------------------

    def _step_chunk(
        self,
        idx: list[int],
        batches: Sequence[WorkloadBatch],
        window_t: int,
        results: list[ExecutionResult | None],
    ) -> None:
        dbs = self._dbs
        n = len(idx)
        t_count = window_t

        # --- scalar prologue: planners, spills, per-batch demand -------------
        spills = []
        dirty_list = []
        for m in idx:
            db = dbs[m]
            batch = batches[m]
            planner = db._planners.get(batch.workload_name)
            if planner is None:
                planner = PlannerModel(db.flavor, batch.workload_name, db.vm)
                db._planners[batch.workload_name] = planner
            db._planner = planner
            if db.config_epoch != self._epochs[m]:
                self._refresh_static(m)
            spills.append(compute_spills(batch, db.config))
            dirty_list.append(
                sum(
                    count * batch.families[name].footprint.write_kb / 1024.0
                    for name, count in batch.counts.items()
                )
            )

        sel = np.asarray(idx)
        bg_rate = self._bg_rate[sel]
        interval = self._interval[sel]
        wal_limit = self._wal_limit[sel]
        forced = self._forced[sel]
        has_forced = self._has_forced[sel]
        dirty_cap = self._dirty_cap[sel]
        throughput = self._throughput[sel][:, None]
        max_iops = self._max_iops[sel][:, None]
        base_latency = self._base_latency[sel][:, None]
        page_mb = self._page_mb[sel]
        vac_interval = self._vac_interval[sel]
        vac_write = self._vac_write[sel]
        clock = np.array([dbs[m].clock_s for m in idx])

        # --- write-back: one loop over seconds, vectors over members ---------
        schedulers = [dbs[m]._scheduler for m in idx]
        backlog = np.array([s.dirty_backlog_mb for s in schedulers])
        wal_since = np.array([s.wal_since_checkpoint_mb for s in schedulers])
        since_cp = np.array([s.since_checkpoint_s for s in schedulers])
        since_vac = np.array([s.since_vacuum_s for s in schedulers])
        act_rate = np.array([s._active_rate_mb_s for s in schedulers])
        act_rem = np.array([s._active_remaining_s for s in schedulers])

        dirty_rate = np.array(dirty_list) / t_count
        wal_rate = dirty_rate * _WAL_AMPLIFICATION
        data_writes_tm = np.zeros((t_count, n))  # (seconds, members)
        bg_total = np.zeros(n)
        backend_total = np.zeros(n)
        ckpt_total = np.zeros(n)
        vac_total = np.zeros(n)
        events: list[list[CheckpointEvent]] = [[] for _ in idx]
        vac_times: list[list[float]] = [[] for _ in idx]

        for i in range(t_count):
            backlog += dirty_rate
            wal_since += wal_rate
            since_cp += 1.0
            since_vac += 1.0
            col = data_writes_tm[i]

            # Background writer trickle.
            bg_flush = np.minimum(backlog, bg_rate)
            backlog -= bg_flush
            col += bg_flush
            bg_total += bg_flush

            # Backends flush whatever overflows the dirty cap. Non-positive
            # overflow contributes an exact +0.0, matching the skipped
            # branch of the scalar loop.
            overflow = np.maximum(backlog - dirty_cap, 0.0)
            np.minimum(backlog, dirty_cap, out=backlog)
            col += overflow
            backend_total += overflow

            # Checkpoint triggers are sparse: handle firing members in
            # member order with scalar Python floats, same priority chain
            # as ``WriteBackScheduler._checkpoint_kind``.
            requested = wal_since >= wal_limit
            forced_trig = has_forced & (backlog >= forced)
            timed = since_cp >= interval
            firing = (act_rem <= 0.0) & (requested | forced_trig | timed)
            if firing.any():
                for j in np.nonzero(firing)[0]:
                    kind = (
                        "requested"
                        if requested[j]
                        else ("forced" if forced_trig[j] else "timed")
                    )
                    spread_s = self._spread_s[idx[j]]
                    write_mb = float(backlog[j])
                    events[j].append(
                        CheckpointEvent(
                            float(clock[j] + i), kind, write_mb, spread_s
                        )
                    )
                    act_rate[j] = write_mb / spread_s
                    act_rem[j] = spread_s
                    backlog[j] = 0.0
                    wal_since[j] = 0.0
                    since_cp[j] = 0.0

            # Active checkpoint spread (inactive members contribute +0.0).
            step = np.minimum(1.0, act_rem)
            burst = act_rate * step
            col += burst
            ckpt_total += burst
            act_rem -= step

            # Vacuum rounds.
            vac_due = since_vac >= vac_interval
            if vac_due.any():
                add = np.where(vac_due, vac_write, 0.0)
                col += add
                vac_total += add
                since_vac[vac_due] = 0.0
                for j in np.nonzero(vac_due)[0]:
                    vac_times[j].append(float(clock[j] + i))

        for k, sched in enumerate(schedulers):
            sched.dirty_backlog_mb = float(backlog[k])
            sched.wal_since_checkpoint_mb = float(wal_since[k])
            sched.since_checkpoint_s = float(since_cp[k])
            sched.since_vacuum_s = float(since_vac[k])
            sched._active_rate_mb_s = float(act_rate[k])
            sched._active_remaining_s = float(act_rem[k])

        data_writes = np.ascontiguousarray(data_writes_tm.T)  # (members, seconds)
        wal_writes = np.empty((n, t_count))
        wal_writes[:] = wal_rate[:, None]  # constant rows == 0.0 + wal_rate

        # --- traffic + both disks on (members, seconds) matrices -------------
        hit = [self._hit0[m] for m in idx]
        swap = [self._swap[m] for m in idx]
        total_read = np.array(
            [
                sum(
                    count * batches[m].families[name].footprint.read_kb / 1024.0
                    for name, count in batches[m].counts.items()
                )
                for m in idx
            ]
        )
        spill_rw = np.array([s.spill_read_write_mb for s in spills])
        miss_mb_s = total_read * (1.0 - np.array(hit)) / t_count
        spill_half = (spill_rw / 2.0) / t_count
        seq_mb = _SEQUENTIAL_BLOCK_KB / 1024.0
        read_mb = np.empty((n, t_count))
        read_mb[:] = (miss_mb_s + spill_half)[:, None]
        write_mb = data_writes + spill_half[:, None]
        read_iops = np.empty((n, t_count))
        read_iops[:] = (miss_mb_s / page_mb + spill_half / seq_mb)[:, None]
        write_iops = write_mb / seq_mb

        data_iops = read_iops + write_iops
        data_util = np.minimum(
            np.maximum(
                (read_mb + write_mb) / throughput, data_iops / max_iops
            ),
            _MAX_UTILISATION,
        )
        data_wlat = base_latency * (1.0 + data_util / (1.0 - data_util))
        scaled = data_util * 0.85
        data_rlat = base_latency * (1.0 + scaled / (1.0 - scaled))

        wal_iops = wal_writes / seq_mb
        wal_util = np.minimum(
            np.maximum(wal_writes / throughput, wal_iops / max_iops),
            _MAX_UTILISATION,
        )
        wal_wlat = base_latency * (1.0 + wal_util / (1.0 - wal_util))
        scaled = wal_util * 0.85
        wal_rlat = base_latency * (1.0 + scaled / (1.0 - scaled))

        # Monitoring jitter: four lognormal draws per member, in the exact
        # order the scalar engine makes them (data write, data read, WAL
        # write, WAL read) from the member's own stream.
        for k, m in enumerate(idx):
            rng = dbs[m]._rng
            data_wlat[k] *= rng.lognormal(0.0, 0.05, size=t_count)
            data_rlat[k] *= rng.lognormal(0.0, 0.05, size=t_count)
            wal_wlat[k] *= rng.lognormal(0.0, 0.05, size=t_count)
            wal_rlat[k] *= rng.lognormal(0.0, 0.05, size=t_count)

        # --- scalar epilogue: costing, EXPLAIN, metrics, results -------------
        arange_t = np.arange(t_count, dtype=float)
        for k, m in enumerate(idx):
            db = dbs[m]
            batch = batches[m]
            times = db.clock_s + arange_t
            data_result = DiskWindowResult(
                read_latency=TimeSeries.from_window(
                    "data.read_latency_ms", "ms", times, data_rlat[k]
                ),
                write_latency=TimeSeries.from_window(
                    "data.write_latency_ms", "ms", times, data_wlat[k]
                ),
                iops=TimeSeries.from_window(
                    "data.iops", "ops/s", times, data_iops[k]
                ),
                mean_utilisation=float(np.mean(data_util[k])),
            )
            wal_result = DiskWindowResult(
                read_latency=TimeSeries.from_window(
                    "wal.read_latency_ms", "ms", times, wal_rlat[k]
                ),
                write_latency=TimeSeries.from_window(
                    "wal.write_latency_ms", "ms", times, wal_wlat[k]
                ),
                iops=TimeSeries.from_window(
                    "wal.iops", "ops/s", times, wal_iops[k]
                ),
                mean_utilisation=float(np.mean(wal_util[k])),
            )
            writeback = WriteBackResult(
                data_write_mb_s=data_writes[k].copy(),
                wal_write_mb_s=wal_writes[k].copy(),
                events=events[k],
                bgwriter_write_mb=float(bg_total[k]),
                checkpoint_write_mb=float(ckpt_total[k]),
                vacuum_write_mb=float(vac_total[k]),
                backend_write_mb=float(backend_total[k]),
                vacuum_times=vac_times[k],
            )
            commit_latency = float(np.mean(wal_wlat[k]))
            data_latency_factor = max(
                1.0, float(np.mean(data_wlat[k])) / db.vm.disk.base_latency_ms
            )
            summary = run_batch(
                batch,
                db.config,
                db.vm,
                hit[k],
                db._planner,
                spills[k],
                commit_latency,
                data_latency_factor,
                swap[k],
                cache=db._service_cache,
                config_epoch=db.config_epoch,
            )
            plans = db.explain_many(batch.sampled_queries[:32])
            metrics = db._assemble_metrics(
                batch,
                summary,
                spills[k],
                writeback,
                data_result,
                hit[k],
                swap[k],
                plans,
            )
            results[m] = ExecutionResult(
                batch=batch,
                config=db.config,
                start_time_s=db.clock_s,
                duration_s=float(t_count),
                summary=summary,
                metrics=metrics,
                data_disk=data_result,
                wal_disk=wal_result,
                writeback=writeback,
                spill=spills[k],
                hit_ratio=hit[k],
                swap=swap[k],
                plan_estimates=plans,
            )
            db.clock_s += t_count
            db._reloads_this_window = 0
