"""Disk model: latency and IOPS time series from per-second I/O demand.

The storage device is an M/M/1-flavoured queue over a
:class:`~repro.cloud.vm.DiskKind` profile: latency rises hyperbolically
with utilisation, which is what turns checkpoint write bursts into the
disk-latency peaks of Fig. 5 that the background-writer detector measures
the spacing of.

Per §3.2 the paper moves WAL/statistics/log writers to a *separate* disk so
the production-data disk only sees backend reads, background-writer/
checkpoint flushes and vacuum — :class:`DiskSimulator` therefore exposes a
``data`` device and a ``wal`` device, and callers route traffic
accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.hardware import DiskKind
from repro.common.timeseries import TimeSeries

__all__ = ["DiskTraffic", "DiskWindowResult", "DiskSimulator"]

_MAX_UTILISATION = 0.97


@dataclass
class DiskTraffic:
    """Per-second I/O demand over a window (arrays, MB/s and IOPS)."""

    read_mb_s: np.ndarray
    write_mb_s: np.ndarray
    read_iops: np.ndarray
    write_iops: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.read_mb_s),
            len(self.write_mb_s),
            len(self.read_iops),
            len(self.write_iops),
        }
        if len(lengths) != 1:
            raise ValueError("traffic arrays must share one length")

    @property
    def seconds(self) -> int:
        return len(self.read_mb_s)

    @staticmethod
    def zeros(seconds: int) -> "DiskTraffic":
        """Zero-demand traffic over *seconds*."""
        return DiskTraffic(
            read_mb_s=np.zeros(seconds),
            write_mb_s=np.zeros(seconds),
            read_iops=np.zeros(seconds),
            write_iops=np.zeros(seconds),
        )


@dataclass
class DiskWindowResult:
    """Simulated device behaviour over one window."""

    read_latency: TimeSeries
    write_latency: TimeSeries
    iops: TimeSeries
    mean_utilisation: float


class DiskSimulator:
    """One storage device with queueing-based latency.

    Parameters
    ----------
    kind:
        Device profile (SSD/HDD) giving base latency, bandwidth, IOPS cap.
    name:
        Series-name prefix, e.g. ``"data"`` or ``"wal"``.
    """

    def __init__(self, kind: DiskKind, name: str = "data") -> None:
        self.kind = kind
        self.name = name
        #: Multiplier on service latency — 1.0 is a healthy device; fault
        #: injection raises it to model a degrading VM disk. Multiplied in
        #: only when != 1.0 so the healthy path stays byte-identical.
        self.degradation = 1.0

    def _utilisation(self, traffic: DiskTraffic) -> np.ndarray:
        bandwidth_util = (traffic.read_mb_s + traffic.write_mb_s) / self.kind.throughput_mb_s
        iops_util = (traffic.read_iops + traffic.write_iops) / self.kind.max_iops
        util = np.maximum(bandwidth_util, iops_util)
        return np.minimum(util, _MAX_UTILISATION)

    def latency_ms(self, utilisation: np.ndarray) -> np.ndarray:
        """Per-second latency from utilisation via M/M/1 waiting factor."""
        return self.kind.base_latency_ms * (1.0 + utilisation / (1.0 - utilisation))

    def simulate(
        self,
        traffic: DiskTraffic,
        start_time_s: float = 0.0,
        rng: np.random.Generator | None = None,
        noise: float = 0.05,
    ) -> DiskWindowResult:
        """Run the device over *traffic*, returning latency/IOPS series.

        Writes queue behind the full demand; reads see a slightly lower
        effective utilisation (reads get priority in real devices'
        schedulers). Optional multiplicative noise models measurement
        jitter in the external monitoring agent.
        """
        util = self._utilisation(traffic)
        write_lat = self.latency_ms(util)
        read_lat = self.latency_ms(util * 0.85)
        if self.degradation != 1.0:
            write_lat = write_lat * self.degradation
            read_lat = read_lat * self.degradation
        total_iops = traffic.read_iops + traffic.write_iops
        if rng is not None and noise > 0.0:
            jitter = rng.lognormal(0.0, noise, size=traffic.seconds)
            write_lat = write_lat * jitter
            read_lat = read_lat * rng.lognormal(0.0, noise, size=traffic.seconds)

        read_series = TimeSeries(f"{self.name}.read_latency_ms", "ms")
        write_series = TimeSeries(f"{self.name}.write_latency_ms", "ms")
        iops_series = TimeSeries(f"{self.name}.iops", "ops/s")
        times = start_time_s + np.arange(traffic.seconds, dtype=float)
        read_series.extend_arrays(times, read_lat)
        write_series.extend_arrays(times, write_lat)
        iops_series.extend_arrays(times, total_iops)
        return DiskWindowResult(
            read_latency=read_series,
            write_latency=write_series,
            iops=iops_series,
            mean_utilisation=float(np.mean(util)) if traffic.seconds else 0.0,
        )
