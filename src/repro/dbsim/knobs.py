"""Knob definitions and the PostgreSQL-like / MySQL-like catalogs.

The paper's TDE categorises relational-database configuration knobs into
three classes (§3): **memory** knobs (bounded by VM resources; several
require a restart), **background-writer** knobs (checkpointing and dirty
page write-back) and **async/planner-estimate** knobs (parallelism and
optimiser cost constants). Each :class:`KnobDef` carries its class, its
tunable range, whether changing it requires a database restart
("non-tunable" in the paper's terms) and its default.

Catalogs follow PostgreSQL 9.6 and MySQL 5.6 — the versions evaluated in
§5 — restricted to the knobs the paper's detectors actually reason about.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

__all__ = [
    "KnobClass",
    "KnobUnit",
    "KnobDef",
    "KnobCatalog",
    "postgres_catalog",
    "mysql_catalog",
    "catalog_for",
]


class KnobClass(enum.Enum):
    """The paper's three throttle classes of §3."""

    MEMORY = "memory"
    BGWRITER = "background_writer"
    ASYNC_PLANNER = "async_planner"


class KnobUnit(enum.Enum):
    """Unit of a knob value, for display and validation."""

    MEGABYTES = "MB"
    SECONDS = "s"
    MILLISECONDS = "ms"
    PAGES = "pages"
    COUNT = "count"
    RATIO = "ratio"
    COST = "cost"


@dataclass(frozen=True)
class KnobDef:
    """One tunable configuration parameter.

    ``restart_required`` marks the paper's "non-tunable knobs": parameters
    that can only change across a database restart and are therefore only
    applied during scheduled maintenance downtime (§4).
    """

    name: str
    knob_class: KnobClass
    unit: KnobUnit
    default: float
    min_value: float
    max_value: float
    restart_required: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.min_value <= self.default <= self.max_value:
            raise ValueError(
                f"{self.name}: default {self.default} outside "
                f"[{self.min_value}, {self.max_value}]"
            )

    def clamp(self, value: float) -> float:
        """Clamp *value* into the knob's legal range."""
        return min(self.max_value, max(self.min_value, value))

    @property
    def log_scale(self) -> bool:
        """Whether the knob is ratio-scaled (tuners should log-transform).

        A buffer of 16 MB and one of 3 GB are worlds apart while 60 GB and
        63 GB are equivalent; any knob spanning two-plus orders of
        magnitude gets log-scale treatment in the normalised tuning space
        (standard practice in configuration tuners).
        """
        return self.min_value > 0 and self.max_value / self.min_value >= 64.0


class KnobCatalog:
    """An ordered, named collection of :class:`KnobDef`.

    Provides lookups by name and by class, and knows which knobs count
    against the database process's memory budget (the ``A + B + C + D < X``
    constraint of §4).
    """

    def __init__(self, flavor: str, knobs: list[KnobDef]) -> None:
        self.flavor = flavor
        self._knobs: dict[str, KnobDef] = {}
        self._transform_arrays: (
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        for knob in knobs:
            if knob.name in self._knobs:
                raise ValueError(f"duplicate knob {knob.name}")
            self._knobs[knob.name] = knob

    def __contains__(self, name: str) -> bool:
        return name in self._knobs

    def __iter__(self) -> Iterator[KnobDef]:
        return iter(self._knobs.values())

    def __len__(self) -> int:
        return len(self._knobs)

    def get(self, name: str) -> KnobDef:
        """Knob definition by name (KeyError with flavor context)."""
        try:
            return self._knobs[name]
        except KeyError:
            raise KeyError(f"unknown {self.flavor} knob {name!r}") from None

    def names(self) -> list[str]:
        """All knob names, catalog order."""
        return list(self._knobs)

    def by_class(self, knob_class: KnobClass) -> list[KnobDef]:
        """Knobs belonging to *knob_class*, catalog order."""
        return [k for k in self._knobs.values() if k.knob_class == knob_class]

    def defaults(self) -> dict[str, float]:
        """Mapping of every knob to its default value."""
        return {k.name: k.default for k in self._knobs.values()}

    def memory_budget_knobs(self) -> list[KnobDef]:
        """Knobs whose values are MB charged to the process memory budget."""
        return [
            k
            for k in self._knobs.values()
            if k.knob_class is KnobClass.MEMORY and k.unit is KnobUnit.MEGABYTES
        ]

    def restart_required_knobs(self) -> list[KnobDef]:
        """The paper's non-tunable knobs."""
        return [k for k in self._knobs.values() if k.restart_required]

    def vector_transform_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-catalog ``(mins, maxs, log_mask, spans)`` arrays, cached.

        The batched vector<->value transforms in :mod:`repro.tuners.base`
        are called with thousands of candidate rows per recommendation;
        rebuilding these little arrays from the knob definitions on every
        call would dominate the transform. Catalogs are immutable after
        construction, so the cache never invalidates.
        """
        arrays = self._transform_arrays
        if arrays is None:
            knobs = list(self._knobs.values())
            mins = np.array([k.min_value for k in knobs], dtype=float)
            maxs = np.array([k.max_value for k in knobs], dtype=float)
            log_mask = np.array([k.log_scale for k in knobs], dtype=bool)
            arrays = (mins, maxs, log_mask, maxs - mins)
            self._transform_arrays = arrays
        return arrays


def postgres_catalog() -> KnobCatalog:
    """Knob catalog modelled on PostgreSQL 9.6."""
    mb = KnobUnit.MEGABYTES
    return KnobCatalog(
        "postgres",
        [
            # -- memory class -------------------------------------------------
            KnobDef(
                "shared_buffers", KnobClass.MEMORY, mb, 128, 16, 65_536,
                restart_required=True,
                description="Buffer pool; the paper's canonical non-tunable knob.",
            ),
            KnobDef(
                "work_mem", KnobClass.MEMORY, mb, 4, 1, 4_096,
                description="Per-operation working area for sorts/hashes/joins.",
            ),
            KnobDef(
                "maintenance_work_mem", KnobClass.MEMORY, mb, 64, 8, 8_192,
                description="Working area for index builds, VACUUM, bulk deletes.",
            ),
            KnobDef(
                "temp_buffers", KnobClass.MEMORY, mb, 8, 1, 2_048,
                description="Per-session temporary-table buffers.",
            ),
            KnobDef(
                "wal_buffers", KnobClass.MEMORY, mb, 16, 1, 1_024,
                restart_required=True,
                description="WAL staging buffers.",
            ),
            # -- background-writer class --------------------------------------
            KnobDef(
                "checkpoint_timeout", KnobClass.BGWRITER, KnobUnit.SECONDS,
                300, 30, 3_600,
                description="Maximum time between automatic checkpoints.",
            ),
            KnobDef(
                "max_wal_size", KnobClass.BGWRITER, mb, 1_024, 64, 16_384,
                description="WAL volume that forces a requested checkpoint.",
            ),
            KnobDef(
                "checkpoint_completion_target", KnobClass.BGWRITER,
                KnobUnit.RATIO, 0.5, 0.1, 0.9,
                description="Fraction of the interval to spread checkpoint I/O over.",
            ),
            KnobDef(
                "bgwriter_delay", KnobClass.BGWRITER, KnobUnit.MILLISECONDS,
                200, 10, 10_000,
                description="Sleep between background-writer rounds.",
            ),
            KnobDef(
                "bgwriter_lru_maxpages", KnobClass.BGWRITER, KnobUnit.PAGES,
                100, 0, 1_000,
                description="Dirty pages written per background-writer round.",
            ),
            # -- async / planner-estimate class -------------------------------
            KnobDef(
                "effective_cache_size", KnobClass.ASYNC_PLANNER, mb,
                4_096, 128, 131_072,
                description="Planner's belief about OS+DB cache size.",
            ),
            KnobDef(
                "random_page_cost", KnobClass.ASYNC_PLANNER, KnobUnit.COST,
                4.0, 0.5, 10.0,
                description="Planner cost of a non-sequential page fetch.",
            ),
            KnobDef(
                "effective_io_concurrency", KnobClass.ASYNC_PLANNER,
                KnobUnit.COUNT, 1, 0, 64,
                description="Concurrent async I/O requests the planner assumes.",
            ),
            KnobDef(
                "max_parallel_workers_per_gather", KnobClass.ASYNC_PLANNER,
                KnobUnit.COUNT, 2, 0, 16,
                description="Parallel workers one query may use.",
            ),
        ],
    )


def mysql_catalog() -> KnobCatalog:
    """Knob catalog modelled on MySQL 5.6 / InnoDB."""
    mb = KnobUnit.MEGABYTES
    return KnobCatalog(
        "mysql",
        [
            # -- memory class -------------------------------------------------
            KnobDef(
                "innodb_buffer_pool_size", KnobClass.MEMORY, mb,
                128, 16, 65_536,
                restart_required=True,
                description="InnoDB buffer pool; non-tunable in 5.6.",
            ),
            KnobDef(
                "sort_buffer_size", KnobClass.MEMORY, mb, 0.25, 0.03, 1_024,
                description="Per-session sort buffer (paper: TPCC's hot knob).",
            ),
            KnobDef(
                "join_buffer_size", KnobClass.MEMORY, mb, 0.25, 0.125, 1_024,
                description="Per-join buffer for unindexed joins.",
            ),
            KnobDef(
                "key_buffer_size", KnobClass.MEMORY, mb, 8, 1, 8_192,
                description="MyISAM key cache; index-build working memory.",
            ),
            KnobDef(
                "tmp_table_size", KnobClass.MEMORY, mb, 16, 1, 4_096,
                description="In-memory temporary table ceiling.",
            ),
            # -- background-writer class --------------------------------------
            KnobDef(
                "innodb_log_file_size", KnobClass.BGWRITER, mb, 48, 4, 4_096,
                restart_required=True,
                description="Redo log size; bounds checkpoint age.",
            ),
            KnobDef(
                "innodb_io_capacity", KnobClass.BGWRITER, KnobUnit.COUNT,
                200, 100, 20_000,
                description="Background flushing IOPS budget.",
            ),
            KnobDef(
                "innodb_lru_scan_depth", KnobClass.BGWRITER, KnobUnit.PAGES,
                1_024, 100, 16_384,
                description="Pages the page cleaner scans per second.",
            ),
            KnobDef(
                "innodb_flush_neighbors", KnobClass.BGWRITER, KnobUnit.COUNT,
                1, 0, 2,
                description="Flush contiguous dirty neighbours (HDD era).",
            ),
            KnobDef(
                "innodb_max_dirty_pages_pct", KnobClass.BGWRITER,
                KnobUnit.RATIO, 0.75, 0.0, 0.99,
                description="Dirty-page fraction that forces aggressive flushing.",
            ),
            # -- async / planner-estimate class -------------------------------
            KnobDef(
                "optimizer_search_depth", KnobClass.ASYNC_PLANNER,
                KnobUnit.COUNT, 62, 0, 62,
                description="Join-order search depth.",
            ),
            KnobDef(
                "eq_range_index_dive_limit", KnobClass.ASYNC_PLANNER,
                KnobUnit.COUNT, 10, 0, 1_000,
                description="Equality ranges estimated by index dives.",
            ),
            KnobDef(
                "innodb_thread_concurrency", KnobClass.ASYNC_PLANNER,
                KnobUnit.COUNT, 0, 0, 64,
                description="Concurrent threads inside InnoDB (0 = unlimited).",
            ),
            KnobDef(
                "innodb_read_ahead_threshold", KnobClass.ASYNC_PLANNER,
                KnobUnit.PAGES, 56, 0, 64,
                description="Sequential accesses that trigger read-ahead.",
            ),
        ],
    )


def catalog_for(flavor: str) -> KnobCatalog:
    """Catalog for *flavor* ("postgres" or "mysql")."""
    if flavor == "postgres":
        return postgres_catalog()
    if flavor == "mysql":
        return mysql_catalog()
    raise ValueError(f"unknown DBMS flavor {flavor!r}")
