"""The simulated relational database service instance.

:class:`SimulatedDatabase` is the substrate standing in for PostgreSQL 9.6
/ MySQL 5.6 in the paper's evaluation. It composes the memory, storage,
write-back, planner and executor models into a single
``run(batch) → ExecutionResult`` step, and exposes the management surface
AutoDBaaS needs: EXPLAIN for the TDE, config apply via reload or restart
(with the §4 crash-on-bad-config behaviour replication relies on), and a
cumulative clock so multi-window experiments are continuous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.hardware import VMType, vm_type
from repro.common.rng import make_rng
from repro.dbsim.bgwriter import WriteBackResult, WriteBackScheduler
from repro.dbsim.config import KnobConfiguration, MemoryBudgetError
from repro.dbsim.executor import ExecutionSummary, ServiceTimeCache, run_batch
from repro.dbsim.knobs import catalog_for
from repro.dbsim.memory import SpillReport, buffer_hit_ratio, compute_spills, swap_factor
from repro.dbsim.metrics import MetricsDelta
from repro.dbsim.planner import PlanEstimate, PlannerModel
from repro.dbsim.storage import DiskSimulator, DiskTraffic, DiskWindowResult
from repro.workloads.generator import WorkloadBatch
from repro.workloads.query import Query, QueryType

__all__ = ["ApplyOutcome", "DatabaseCrashed", "ExecutionResult", "SimulatedDatabase"]

#: Page sizes per flavor (PostgreSQL 8 KB, InnoDB 16 KB).
_PAGE_KB_BY_FLAVOR = {"postgres": 8.0, "mysql": 16.0}
#: Write-back and spill I/O is coalesced into blocks of this size.
_SEQUENTIAL_BLOCK_KB = 64.0
#: Seconds of unavailability a full process restart costs.
RESTART_DOWNTIME_S = 12.0
#: Post-restart buffer-pool warm-up: hit-ratio multipliers for the first
#: windows after the pool comes back empty.
_COLD_CACHE_FACTORS = (0.3, 0.8)
#: Socket activation keeps the port open but caches requests; the drain
#: afterwards causes "a lot of jitter" (§4) — modelled as degraded seconds.
SOCKET_ACTIVATION_JITTER_S = 6.0


class DatabaseCrashed(RuntimeError):
    """The database process died (e.g. restart with an over-budget config)."""


@dataclass
class ApplyOutcome:
    """Result of applying a configuration."""

    applied: dict[str, float]
    skipped_restart_required: list[str]
    restarted: bool


@dataclass
class ExecutionResult:
    """Everything observable from one executed window."""

    batch: WorkloadBatch
    config: KnobConfiguration
    start_time_s: float
    duration_s: float
    summary: ExecutionSummary
    metrics: MetricsDelta
    data_disk: DiskWindowResult
    wal_disk: DiskWindowResult
    writeback: WriteBackResult
    spill: SpillReport
    hit_ratio: float
    swap: float
    plan_estimates: list[PlanEstimate] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.summary.achieved_tps

    @property
    def latency_ms(self) -> float:
        return self.summary.avg_latency_ms


class SimulatedDatabase:
    """One database service instance on one VM.

    Parameters
    ----------
    flavor:
        ``"postgres"`` or ``"mysql"``.
    vm:
        VM type name or :class:`~repro.cloud.vm.VMType`.
    data_size_gb:
        Loaded data volume.
    active_connections:
        Concurrent sessions charged per-connection working areas.
    seed:
        Seed for all stochastic behaviour of this instance.
    """

    def __init__(
        self,
        flavor: str = "postgres",
        vm: str | VMType = "m4.large",
        data_size_gb: float = 20.0,
        active_connections: int = 20,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.flavor = flavor
        self.catalog = catalog_for(flavor)
        self.vm = vm_type(vm) if isinstance(vm, str) else vm
        self.data_size_gb = data_size_gb
        self.active_connections = active_connections
        self._rng = make_rng(seed)
        self.config = KnobConfiguration(self.catalog)
        #: Bumped on every config apply (reload/restart/socket) and heal;
        #: derived per-config state (the executor's service-time memo) is
        #: keyed on it and recomputes only when it moves.
        self.config_epoch = 0
        self._service_cache = ServiceTimeCache()
        self.clock_s = 0.0
        self.crashed = False
        self._scheduler = WriteBackScheduler()
        self._data_disk = DiskSimulator(self.vm.disk, "data")
        self._wal_disk = DiskSimulator(self.vm.disk, "wal")
        self._planner = PlannerModel(flavor, "generic", self.vm)
        # Planner models are pure functions of (flavor, workload, vm);
        # reuse one per workload so their per-config memos survive
        # across windows instead of dying with a fresh model every run.
        self._planners: dict[str, PlannerModel] = {"generic": self._planner}
        self._pending_stall_s = 0.0
        self._reloads_this_window = 0
        self._cold_windows = 0
        self.history: list[ExecutionResult] = []
        self.keep_history = False

    # -- configuration management ---------------------------------------------

    def apply_config(
        self, new_config: KnobConfiguration, mode: str = "reload"
    ) -> ApplyOutcome:
        """Apply *new_config* via ``"reload"``, ``"restart"`` or ``"socket"``.

        ``reload`` (SIGHUP-style) applies only knobs that do not require a
        restart and adds negligible jitter. ``restart`` applies everything
        at the cost of :data:`RESTART_DOWNTIME_S` seconds of downtime and
        crashes the process if the configuration violates the VM memory
        budget. ``socket`` is restart behind systemd socket activation:
        the port stays open (requests cached) but draining the cache adds
        :data:`SOCKET_ACTIVATION_JITTER_S` seconds of degraded service.
        """
        if self.crashed:
            raise DatabaseCrashed("cannot apply config to a crashed instance")
        if new_config.catalog.flavor != self.flavor:
            raise ValueError(
                f"config flavor {new_config.catalog.flavor!r} != {self.flavor!r}"
            )
        if mode == "reload":
            skipped = [
                k.name
                for k in self.catalog.restart_required_knobs()
                if new_config[k.name] != self.config[k.name]
            ]
            merged = new_config.as_dict()
            for name in skipped:
                merged[name] = self.config[name]
            self.config = KnobConfiguration(self.catalog, merged)
            self.config_epoch += 1
            self._reloads_this_window += 1
            return ApplyOutcome(
                applied={
                    n: v for n, v in merged.items() if n not in skipped
                },
                skipped_restart_required=skipped,
                restarted=False,
            )
        if mode in ("restart", "socket"):
            try:
                new_config.check_memory_budget(
                    self.vm.db_memory_limit_mb, self.active_connections
                )
            except MemoryBudgetError as exc:
                self.crashed = True
                raise DatabaseCrashed(str(exc)) from exc
            self.config = new_config
            self.config_epoch += 1
            # The shutdown checkpoint writes the dirty backlog out before
            # the process exits — a dirty database takes longer to stop.
            shutdown_s = self._scheduler.dirty_backlog_mb / (
                0.8 * self.vm.disk.throughput_mb_s
            )
            self._scheduler.reset()
            self._pending_stall_s += shutdown_s + (
                SOCKET_ACTIVATION_JITTER_S if mode == "socket" else RESTART_DOWNTIME_S
            )
            # The buffer pool comes back empty: the next windows run on a
            # cold cache until the working set is re-read.
            self._cold_windows = len(_COLD_CACHE_FACTORS)
            return ApplyOutcome(
                applied=new_config.as_dict(),
                skipped_restart_required=[],
                restarted=True,
            )
        raise ValueError(f"unknown apply mode {mode!r}")

    def heal(self) -> None:
        """Bring a crashed instance back up (operator intervention)."""
        self.crashed = False
        self.config_epoch += 1
        self._scheduler.reset()
        self._pending_stall_s += RESTART_DOWNTIME_S
        self._cold_windows = len(_COLD_CACHE_FACTORS)

    def set_disk_degradation(self, factor: float) -> None:
        """Scale both devices' service latency (fault injection hook).

        ``factor`` 1.0 restores a healthy disk; > 1.0 models a degrading
        VM volume (the latency multiplier applies to data and WAL devices
        alike, as both live on the instance's virtual disk).
        """
        if factor <= 0:
            raise ValueError("degradation factor must be positive")
        self._data_disk.degradation = factor
        self._wal_disk.degradation = factor

    # -- observation surface ---------------------------------------------------

    def explain(
        self,
        query: Query,
        config: KnobConfiguration | None = None,
        noisy: bool = False,
    ) -> PlanEstimate:
        """EXPLAIN *query* under *config* (default: the live configuration).

        Passing a hypothetical configuration is how the TDE's MDP probes
        planner cost/benefit without touching the live knobs (§3.3). Like
        a real planner, the estimate is deterministic for fixed inputs;
        ``noisy=True`` adds estimation error for consumers that want to
        model stale statistics.
        """
        rng = self._rng if noisy else None
        return self._planner.explain(query, config or self.config, rng=rng)

    def explain_many(
        self,
        queries: list[Query],
        config: KnobConfiguration | None = None,
        noisy: bool = False,
    ) -> list[PlanEstimate]:
        """EXPLAIN each query in *queries* under *config* (default live)."""
        return [self.explain(q, config, noisy) for q in queries]

    # -- execution ---------------------------------------------------------------

    def run(self, batch: WorkloadBatch) -> ExecutionResult:
        """Execute *batch*, advance the clock, and return the observables."""
        if self.crashed:
            raise DatabaseCrashed("instance is down")
        duration = max(1, int(round(batch.duration_s)))
        planner = self._planners.get(batch.workload_name)
        if planner is None:
            planner = PlannerModel(self.flavor, batch.workload_name, self.vm)
            self._planners[batch.workload_name] = planner
        self._planner = planner

        spill = compute_spills(batch, self.config)
        swap = swap_factor(self.config, self.vm, self.active_connections)
        hit_ratio = buffer_hit_ratio(self.config.buffer_pool_mb(), self.data_size_gb)
        if self._cold_windows > 0:
            factor = _COLD_CACHE_FACTORS[len(_COLD_CACHE_FACTORS) - self._cold_windows]
            hit_ratio *= factor
            self._cold_windows -= 1

        dirty_mb = sum(
            count * batch.families[name].footprint.write_kb / 1024.0
            for name, count in batch.counts.items()
        )
        writeback = self._scheduler.run_window(
            self.config, dirty_mb, duration, start_time_s=self.clock_s
        )

        traffic = self._build_traffic(batch, spill, writeback, hit_ratio, duration)
        stall = min(self._pending_stall_s, float(duration))
        self._pending_stall_s -= stall
        if stall > 0.0:
            self._apply_stall(traffic, stall)

        data_result = self._data_disk.simulate(
            traffic, start_time_s=self.clock_s, rng=self._rng
        )
        wal_traffic = DiskTraffic(
            read_mb_s=np.zeros(duration),
            write_mb_s=writeback.wal_write_mb_s,
            read_iops=np.zeros(duration),
            # WAL is an append-only sequential stream.
            write_iops=writeback.wal_write_mb_s / (_SEQUENTIAL_BLOCK_KB / 1024.0),
        )
        wal_result = self._wal_disk.simulate(
            wal_traffic, start_time_s=self.clock_s, rng=self._rng
        )

        commit_latency = wal_result.write_latency.mean()
        data_latency_factor = max(
            1.0, data_result.write_latency.mean() / self.vm.disk.base_latency_ms
        )
        summary = run_batch(
            batch,
            self.config,
            self.vm,
            hit_ratio,
            self._planner,
            spill,
            commit_latency,
            data_latency_factor,
            swap,
            cache=self._service_cache,
            config_epoch=self.config_epoch,
        )
        summary = self._charge_disruption(summary, stall, duration)

        plans = self.explain_many(batch.sampled_queries[:32])
        metrics = self._assemble_metrics(
            batch, summary, spill, writeback, data_result, hit_ratio, swap, plans
        )
        result = ExecutionResult(
            batch=batch,
            config=self.config,
            start_time_s=self.clock_s,
            duration_s=float(duration),
            summary=summary,
            metrics=metrics,
            data_disk=data_result,
            wal_disk=wal_result,
            writeback=writeback,
            spill=spill,
            hit_ratio=hit_ratio,
            swap=swap,
            plan_estimates=plans,
        )
        self.clock_s += duration
        self._reloads_this_window = 0
        if self.keep_history:
            self.history.append(result)
        return result

    # -- internals ---------------------------------------------------------------

    def _build_traffic(
        self,
        batch: WorkloadBatch,
        spill: SpillReport,
        writeback: WriteBackResult,
        hit_ratio: float,
        duration: int,
    ) -> DiskTraffic:
        """Per-second data-disk demand.

        Buffer misses are random page reads (8 KB per IO); spill I/O and
        write-back (bgwriter/checkpoint/backend) are coalesced into large
        sequential blocks, so they cost bandwidth but few IOPS — the mix
        real engines produce.
        """
        total_read_mb = sum(
            count * batch.families[name].footprint.read_kb / 1024.0
            for name, count in batch.counts.items()
        )
        miss_mb_s = total_read_mb * (1.0 - hit_ratio) / duration
        spill_half_mb_s = (spill.spill_read_write_mb / 2.0) / duration
        read_mb_s = np.full(duration, miss_mb_s + spill_half_mb_s)
        write_mb_s = writeback.data_write_mb_s + spill_half_mb_s
        page_mb = _PAGE_KB_BY_FLAVOR[self.flavor] / 1024.0
        seq_mb = _SEQUENTIAL_BLOCK_KB / 1024.0
        read_iops = np.full(
            duration, miss_mb_s / page_mb + spill_half_mb_s / seq_mb
        )
        return DiskTraffic(
            read_mb_s=read_mb_s,
            write_mb_s=write_mb_s,
            read_iops=read_iops,
            write_iops=write_mb_s / seq_mb,
        )

    @staticmethod
    def _apply_stall(traffic: DiskTraffic, stall_s: float) -> None:
        """Zero out query-driven traffic during the stall at window start."""
        n = min(int(round(stall_s)), traffic.seconds)
        for array in (
            traffic.read_mb_s,
            traffic.write_mb_s,
            traffic.read_iops,
            traffic.write_iops,
        ):
            array[:n] = 0.0

    @staticmethod
    def _charge_disruption(
        summary: ExecutionSummary, stall_s: float, duration: int
    ) -> ExecutionSummary:
        if stall_s <= 0.0:
            return summary
        available = max(0.0, 1.0 - stall_s / duration)
        return ExecutionSummary(
            total_queries=summary.total_queries,
            offered_tps=summary.offered_tps,
            achieved_tps=summary.achieved_tps * available,
            avg_latency_ms=summary.avg_latency_ms * (1.0 + stall_s / duration),
            cpu_utilisation=summary.cpu_utilisation,
            demand_cpu_ms=summary.demand_cpu_ms,
        )

    def _assemble_metrics(
        self,
        batch: WorkloadBatch,
        summary: ExecutionSummary,
        spill: SpillReport,
        writeback: WriteBackResult,
        data_result: DiskWindowResult,
        hit_ratio: float,
        swap: float,
        plans: list[PlanEstimate],
    ) -> MetricsDelta:
        by_type = batch.count_by_type()

        def type_count(*types: QueryType) -> float:
            return float(sum(by_type.get(t, 0) for t in types))

        total_read_mb = sum(
            count * batch.families[name].footprint.read_kb / 1024.0
            for name, count in batch.counts.items()
        )
        blks_total = total_read_mb / (_PAGE_KB_BY_FLAVOR[self.flavor] / 1024.0)
        rows_returned = float(
            sum(
                count * batch.families[name].footprint.rows_returned
                for name, count in batch.counts.items()
            )
        )
        plan_cost = (
            float(np.mean([p.total_cost for p in plans])) if plans else 0.0
        )
        return MetricsDelta(
            {
                "xact_commit": float(batch.total_queries),
                "tup_returned": rows_returned,
                "tup_inserted": type_count(QueryType.INSERT),
                "tup_updated": type_count(QueryType.UPDATE),
                "tup_deleted": type_count(QueryType.DELETE),
                "blks_read": blks_total * (1.0 - hit_ratio),
                "blks_hit": blks_total * hit_ratio,
                "temp_files": float(spill.temp_files),
                "temp_mb": spill.spill_read_write_mb / 2.0,
                "buffers_checkpoint_mb": writeback.checkpoint_write_mb,
                "buffers_clean_mb": writeback.bgwriter_write_mb,
                "buffers_backend_mb": (
                    spill.spill_read_write_mb / 2.0 + writeback.backend_write_mb
                ),
                "backend_flush_mb": writeback.backend_write_mb,
                "checkpoints_timed": float(writeback.checkpoints_timed),
                "checkpoints_requested": float(writeback.checkpoints_requested),
                "wal_mb": float(np.sum(writeback.wal_write_mb_s)),
                "vacuum_mb": writeback.vacuum_write_mb,
                "disk_read_latency_ms": data_result.read_latency.mean(),
                "disk_write_latency_ms": data_result.write_latency.mean(),
                "disk_iops": data_result.iops.mean(),
                "cpu_utilisation": summary.cpu_utilisation,
                "swap_factor": swap,
                "throughput_tps": summary.achieved_tps,
                "avg_latency_ms": summary.avg_latency_ms,
                "planner_cost_mean": plan_cost,
                "planner_distance": self._planner.distance(self.config),
                "window_s": batch.duration_s,
            }
        )
