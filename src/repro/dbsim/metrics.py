"""pg_stat-style metric snapshots and deltas.

Tuners train on *delta metrics*: the change in the database's cumulative
counters across a workload execution window (§1's "High Quality Samples").
:class:`MetricsDelta` is that vector. The canonical metric name list is
fixed so every tuner/TDE consumer sees the same ordering.

Note ``OTTERTUNE_METRICS`` deliberately excludes the planner cost metrics:
§5 observes that "ottertune fails to understand such [planner] throttles
mainly because of absence of planner estimates in the metric set that it
captures" — reproducing Fig. 15's lower async/planner accuracy requires
reproducing that blind spot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MetricsDelta", "METRIC_NAMES", "OTTERTUNE_METRICS"]

#: Canonical ordering of every metric the simulator emits.
METRIC_NAMES: tuple[str, ...] = (
    "xact_commit",
    "tup_returned",
    "tup_inserted",
    "tup_updated",
    "tup_deleted",
    "blks_read",
    "blks_hit",
    "temp_files",
    "temp_mb",
    "buffers_checkpoint_mb",
    "buffers_clean_mb",
    "buffers_backend_mb",
    "backend_flush_mb",
    "checkpoints_timed",
    "checkpoints_requested",
    "wal_mb",
    "vacuum_mb",
    "disk_read_latency_ms",
    "disk_write_latency_ms",
    "disk_iops",
    "cpu_utilisation",
    "swap_factor",
    "throughput_tps",
    "avg_latency_ms",
    "planner_cost_mean",
    "planner_distance",
    "window_s",
)

#: The subset an OtterTune-style agent collects (no planner estimates).
OTTERTUNE_METRICS: tuple[str, ...] = tuple(
    name for name in METRIC_NAMES
    if name not in ("planner_cost_mean", "planner_distance")
)


@dataclass
class MetricsDelta:
    """One window's delta-metric vector.

    Construct with a values mapping; missing canonical metrics default to
    0.0 and unknown names are rejected (typos in metric names have burnt
    enough tuning pipelines).
    """

    values: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.values) - set(METRIC_NAMES)
        if unknown:
            raise ValueError(f"unknown metrics: {sorted(unknown)}")
        for name in METRIC_NAMES:
            self.values.setdefault(name, 0.0)

    def __getitem__(self, name: str) -> float:
        if name not in METRIC_NAMES:
            raise KeyError(f"unknown metric {name!r}")
        return self.values[name]

    def as_vector(self, names: tuple[str, ...] = METRIC_NAMES) -> np.ndarray:
        """The metric values as a float vector in *names* order."""
        return np.array([self[name] for name in names], dtype=float)

    @property
    def throughput(self) -> float:
        """Achieved transactions per second."""
        return self.values["throughput_tps"]

    @property
    def latency_ms(self) -> float:
        """Mean query latency in milliseconds."""
        return self.values["avg_latency_ms"]

    def scaled_copy(self, factor: float) -> "MetricsDelta":
        """All values scaled by *factor* (test helper for synthetic data)."""
        return MetricsDelta({k: v * factor for k, v in self.values.items()})
