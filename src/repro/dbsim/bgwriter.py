"""Background writer / checkpointer / vacuum write-back scheduling.

§3.2's causal chain: queries dirty pages; the background writer flushes a
fixed trickle; whatever backlog remains is written in bursts when a
checkpoint triggers (timed, or requested when WAL volume exceeds its cap).
Those bursts saturate the data disk and produce the latency peaks the
background-writer detector measures. Vacuum adds its own periodic bursts,
which the paper schedules deliberately so checkpoint monitoring can ignore
the slots where vacuum runs.

The scheduler keeps state across windows (dirty backlog, WAL since last
checkpoint, active checkpoint spread) so multi-window experiments behave
like one continuous database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dbsim.config import KnobConfiguration

__all__ = ["CheckpointEvent", "WriteBackParams", "WriteBackResult", "WriteBackScheduler"]

_PG_PAGE_MB = 8.0 / 1024.0
_MYSQL_PAGE_MB = 16.0 / 1024.0
#: WAL bytes per dirty data byte (headers, full-page images amortised).
_WAL_AMPLIFICATION = 1.1
#: MySQL 5.6 has no timed checkpoint; model an infrequent sharp sync.
_MYSQL_SYNC_INTERVAL_S = 600.0
_MYSQL_SPREAD_FRACTION = 0.3


@dataclass(frozen=True)
class CheckpointEvent:
    """One checkpoint trigger."""

    time_s: float
    kind: str  # "timed" or "requested" (WAL-full) or "forced" (dirty pct)
    write_mb: float
    spread_s: float


@dataclass(frozen=True)
class WriteBackParams:
    """Flavor-independent write-back parameters extracted from a config."""

    bg_flush_mb_s: float
    checkpoint_interval_s: float
    wal_limit_mb: float
    spread_fraction: float
    forced_dirty_limit_mb: float | None

    @staticmethod
    def from_config(config: KnobConfiguration) -> "WriteBackParams":
        flavor = config.catalog.flavor
        if flavor == "postgres":
            rounds_per_s = 1000.0 / config["bgwriter_delay"]
            return WriteBackParams(
                bg_flush_mb_s=config["bgwriter_lru_maxpages"] * _PG_PAGE_MB * rounds_per_s,
                checkpoint_interval_s=config["checkpoint_timeout"],
                wal_limit_mb=config["max_wal_size"],
                spread_fraction=config["checkpoint_completion_target"],
                forced_dirty_limit_mb=None,
            )
        if flavor == "mysql":
            io_capacity_mb_s = config["innodb_io_capacity"] * _MYSQL_PAGE_MB
            cleaner_mb_s = config["innodb_lru_scan_depth"] * _MYSQL_PAGE_MB / 4.0
            # flush_neighbors amplifies each flush on page-cluster writes.
            amplification = 1.0 + 0.15 * config["innodb_flush_neighbors"]
            return WriteBackParams(
                # The page cleaner scans lru_scan_depth pages/s but its
                # flushing is budgeted by innodb_io_capacity.
                bg_flush_mb_s=min(io_capacity_mb_s, cleaner_mb_s) / amplification
                if cleaner_mb_s > 0
                else io_capacity_mb_s / amplification,
                checkpoint_interval_s=_MYSQL_SYNC_INTERVAL_S,
                wal_limit_mb=config["innodb_log_file_size"],
                spread_fraction=_MYSQL_SPREAD_FRACTION,
                forced_dirty_limit_mb=(
                    config["innodb_max_dirty_pages_pct"]
                    * config["innodb_buffer_pool_size"]
                ),
            )
        raise ValueError(f"unknown DBMS flavor {flavor!r}")


@dataclass
class WriteBackResult:
    """Per-second write demand plus checkpoint accounting for one window."""

    data_write_mb_s: np.ndarray
    wal_write_mb_s: np.ndarray
    events: list[CheckpointEvent] = field(default_factory=list)
    bgwriter_write_mb: float = 0.0
    checkpoint_write_mb: float = 0.0
    vacuum_write_mb: float = 0.0
    backend_write_mb: float = 0.0
    vacuum_times: list[float] = field(default_factory=list)

    @property
    def checkpoints_timed(self) -> int:
        return sum(1 for e in self.events if e.kind == "timed")

    @property
    def checkpoints_requested(self) -> int:
        return sum(1 for e in self.events if e.kind in ("requested", "forced"))


class WriteBackScheduler:
    """Stateful dirty-page write-back simulation.

    Parameters
    ----------
    vacuum_interval_s:
        Seconds between vacuum/garbage-collector rounds. §3.2's
        experiments increase this frequency "to a substantially higher
        value" so checkpoint monitoring can exclude vacuum slots; expose
        it so that experiment is reproducible.
    vacuum_write_mb:
        Data written per vacuum round (index updates + defragmentation).
    """

    def __init__(
        self, vacuum_interval_s: float = 120.0, vacuum_write_mb: float = 24.0
    ) -> None:
        if vacuum_interval_s <= 0:
            raise ValueError("vacuum_interval_s must be positive")
        self.vacuum_interval_s = vacuum_interval_s
        self.vacuum_write_mb = vacuum_write_mb
        self.dirty_backlog_mb = 0.0
        self.wal_since_checkpoint_mb = 0.0
        self.since_checkpoint_s = 0.0
        self.since_vacuum_s = 0.0
        self._active_rate_mb_s = 0.0
        self._active_remaining_s = 0.0

    def reset(self) -> None:
        """Forget all backlog state (fresh database)."""
        self.dirty_backlog_mb = 0.0
        self.wal_since_checkpoint_mb = 0.0
        self.since_checkpoint_s = 0.0
        self.since_vacuum_s = 0.0
        self._active_rate_mb_s = 0.0
        self._active_remaining_s = 0.0

    def run_window(
        self,
        config: KnobConfiguration,
        dirty_mb_total: float,
        duration_s: int,
        start_time_s: float = 0.0,
        buffer_mb: float | None = None,
    ) -> WriteBackResult:
        """Advance the scheduler over a window producing *dirty_mb_total*.

        Dirty pages are produced uniformly across the window; the method
        returns the second-by-second write demand the storage model turns
        into latency.

        Dirty pages live in the buffer pool, so the backlog is capped at
        90% of *buffer_mb* (defaults to the configuration's buffer-pool
        knob): whatever the background writer and checkpointer cannot
        absorb is flushed synchronously by the backends themselves
        (``backend_write_mb``) — deferring write-back has bounded benefit,
        exactly as in a real engine.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if dirty_mb_total < 0:
            raise ValueError("dirty_mb_total must be >= 0")
        if buffer_mb is None:
            buffer_mb = config.buffer_pool_mb()
        dirty_cap_mb = 0.9 * buffer_mb
        params = WriteBackParams.from_config(config)
        dirty_rate = dirty_mb_total / duration_s
        wal_rate = dirty_rate * _WAL_AMPLIFICATION

        data_writes = np.zeros(duration_s)
        wal_writes = np.zeros(duration_s)
        result = WriteBackResult(data_write_mb_s=data_writes, wal_write_mb_s=wal_writes)

        for i in range(duration_s):
            now = start_time_s + i
            self.dirty_backlog_mb += dirty_rate
            self.wal_since_checkpoint_mb += wal_rate
            wal_writes[i] += wal_rate
            self.since_checkpoint_s += 1.0
            self.since_vacuum_s += 1.0

            # Background writer trickle.
            bg_flush = min(self.dirty_backlog_mb, params.bg_flush_mb_s)
            self.dirty_backlog_mb -= bg_flush
            data_writes[i] += bg_flush
            result.bgwriter_write_mb += bg_flush

            # Buffer pool full of dirty pages: backends flush the excess.
            overflow = self.dirty_backlog_mb - dirty_cap_mb
            if overflow > 0.0:
                self.dirty_backlog_mb = dirty_cap_mb
                data_writes[i] += overflow
                result.backend_write_mb += overflow

            # Checkpoint trigger checks.
            kind = self._checkpoint_kind(params)
            if kind is not None and self._active_remaining_s <= 0.0:
                spread_s = max(
                    1.0, params.checkpoint_interval_s * params.spread_fraction
                )
                write_mb = self.dirty_backlog_mb
                result.events.append(
                    CheckpointEvent(now, kind, write_mb, spread_s)
                )
                self._active_rate_mb_s = write_mb / spread_s
                self._active_remaining_s = spread_s
                self.dirty_backlog_mb = 0.0
                self.wal_since_checkpoint_mb = 0.0
                self.since_checkpoint_s = 0.0

            # Active checkpoint spread writes.
            if self._active_remaining_s > 0.0:
                step = min(1.0, self._active_remaining_s)
                burst = self._active_rate_mb_s * step
                data_writes[i] += burst
                result.checkpoint_write_mb += burst
                self._active_remaining_s -= step

            # Vacuum / garbage-collector rounds.
            if self.since_vacuum_s >= self.vacuum_interval_s:
                data_writes[i] += self.vacuum_write_mb
                result.vacuum_write_mb += self.vacuum_write_mb
                result.vacuum_times.append(now)
                self.since_vacuum_s = 0.0

        return result

    def _checkpoint_kind(self, params: WriteBackParams) -> str | None:
        if self.wal_since_checkpoint_mb >= params.wal_limit_mb:
            return "requested"
        if (
            params.forced_dirty_limit_mb is not None
            and params.forced_dirty_limit_mb > 0.0
            and self.dirty_backlog_mb >= params.forced_dirty_limit_mb
        ):
            return "forced"
        if self.since_checkpoint_s >= params.checkpoint_interval_s:
            return "timed"
        return None
