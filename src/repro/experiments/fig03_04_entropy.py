"""Figs. 3–4 — entropy variation under adulterated production SQL.

The paper computes the normalized entropy of the query-class histogram
over successive windows while executing plain TPC-C (scale factor 18,
~21 GB) and TPC-C adulterated with index/delete/temp-table/aggregation
queries at probability 0.8 (Fig. 3) and 0.5 (Fig. 4). Expected shape: the
adulterated workload's class distribution is much more even, so its
entropy sits well above plain TPC-C's and the two series separate; the
separation is driven by adulteration probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tde.entropy import QueryClassHistogram
from repro.workloads.adulterated import AdulteratedTPCCWorkload
from repro.workloads.tpcc import TPCCWorkload

__all__ = ["EntropyPoint", "run"]


@dataclass(frozen=True)
class EntropyPoint:
    """Entropy of both workloads at one observation window."""

    window: int
    entropy_tpcc: float
    entropy_adulterated: float


def run(
    adulteration_p: float = 0.8,
    windows: int = 20,
    window_s: float = 60.0,
    seed: int = 0,
) -> list[EntropyPoint]:
    """Entropy series for plain vs adulterated TPC-C."""
    plain = TPCCWorkload(data_size_gb=21.0, seed=seed + 1)
    adulterated = AdulteratedTPCCWorkload(
        adulteration_p, data_size_gb=21.0, seed=seed + 2
    )
    hist_plain = QueryClassHistogram()
    hist_adulterated = QueryClassHistogram()
    points: list[EntropyPoint] = []
    for window in range(windows):
        start = window * window_s
        hist_plain.reset()
        hist_adulterated.reset()
        hist_plain.observe_many(
            plain.batch(window_s, start_time_s=start).sampled_queries
        )
        hist_adulterated.observe_many(
            adulterated.batch(window_s, start_time_s=start).sampled_queries
        )
        points.append(
            EntropyPoint(
                window=window,
                entropy_tpcc=hist_plain.entropy(),
                entropy_adulterated=hist_adulterated.entropy(),
            )
        )
    return points


def mean_separation(points: list[EntropyPoint]) -> float:
    """Mean entropy gap (adulterated − plain) across windows."""
    if not points:
        raise ValueError("no entropy points")
    return sum(p.entropy_adulterated - p.entropy_tpcc for p in points) / len(points)
