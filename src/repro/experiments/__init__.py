"""Experiment harnesses reproducing every table and figure of §3–§5.

One module per figure (or pair of figures sharing a protocol), each with a
``run()`` returning plain data structures the benchmark suite prints and
checks. See DESIGN.md's experiment index for the full mapping.
"""

from repro.experiments import (
    ablation_hybrid,
    ablation_learned_tde,
    ablations,
    chaos_recovery,
    fig02_memory_table,
    fig03_04_entropy,
    fig05_disk_latency,
    fig06_mdp_learning,
    fig07_reload_iops,
    fig08_arrival_rate,
    fig09_requests_per_minute,
    fig10_11_throttles,
    fig12_13_throughput,
    fig14_workload_shift,
    fig15_accuracy,
)
from repro.experiments.common import format_table, offline_session, offline_train

__all__ = [
    "ablation_hybrid",
    "ablation_learned_tde",
    "ablations",
    "chaos_recovery",
    "fig02_memory_table",
    "fig03_04_entropy",
    "fig05_disk_latency",
    "fig06_mdp_learning",
    "fig07_reload_iops",
    "fig08_arrival_rate",
    "fig09_requests_per_minute",
    "fig10_11_throttles",
    "fig12_13_throughput",
    "fig14_workload_shift",
    "fig15_accuracy",
    "format_table",
    "offline_session",
    "offline_train",
]
