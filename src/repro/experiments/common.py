"""Shared experiment plumbing: offline training sessions, table printing.

Every §5 experiment starts from tuners trained "as per their standard
ways": offline tuning sessions that sweep random configurations over the
benchmark workloads and record high-quality samples. :func:`offline_train`
reproduces that bootstrap; the figure modules build on it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_rng, make_rng
from repro.dbsim.engine import DatabaseCrashed, SimulatedDatabase
from repro.dbsim.knobs import KnobCatalog
from repro.parallel import FleetExecutor
from repro.tuners.base import TrainingSample, vector_to_config
from repro.tuners.repository import WorkloadRepository
from repro.workloads.generator import WorkloadGenerator

__all__ = ["offline_train", "offline_session", "format_table", "STRESS_RPS"]

#: Offered rate used in offline sessions so throughput measures capacity.
STRESS_RPS = 12_000.0


def offline_session(
    repository: WorkloadRepository,
    workload: WorkloadGenerator,
    catalog: KnobCatalog,
    n_configs: int = 20,
    vm: str = "m4.large",
    window_s: float = 20.0,
    seed: int | np.random.Generator | None = 0,
) -> None:
    """One offline tuning session: sweep random configs, record samples.

    Per configuration the database is restarted (clean write-back state),
    warmed for one window, and measured on the next — the §1 protocol that
    yields "high quality samples".
    """
    rng = make_rng(seed)
    db = SimulatedDatabase(
        catalog.flavor,
        vm,
        data_size_gb=workload.data_size_gb,
        seed=derive_rng(rng, "db"),
    )
    for _ in range(n_configs):
        vector = rng.uniform(0.0, 1.0, size=len(catalog))
        config = vector_to_config(vector, catalog).fitted_to_budget(
            db.vm.db_memory_limit_mb, db.active_connections
        )
        try:
            db.apply_config(config, mode="restart")
        except DatabaseCrashed:
            db.heal()
            continue
        db.run(workload.batch(window_s, start_time_s=db.clock_s))
        result = db.run(workload.batch(window_s, start_time_s=db.clock_s))
        repository.add(
            TrainingSample(
                workload.name, config, result.metrics, timestamp_s=db.clock_s
            )
        )


@dataclass(frozen=True)
class _OfflineSessionTask:
    """One workload's offline session, picklable for :meth:`FleetExecutor.map`."""

    catalog: KnobCatalog
    workload: WorkloadGenerator
    n_configs: int
    seed: int


def _run_offline_session(task: _OfflineSessionTask) -> list[TrainingSample]:
    """Run one session against a private repository; return its samples."""
    repository = WorkloadRepository()
    offline_session(
        repository, task.workload, task.catalog, n_configs=task.n_configs,
        seed=task.seed,
    )
    return list(repository.samples(task.workload.name))


def offline_train(
    catalog: KnobCatalog,
    workloads: Sequence[WorkloadGenerator],
    n_configs: int = 20,
    seed: int = 0,
    executor: FleetExecutor | None = None,
) -> WorkloadRepository:
    """Bootstrap a repository with offline sessions over *workloads*.

    Sessions are independent (each sweeps its own database with its own
    seed), so with an *executor* they fan out across workers; samples land
    in the shared repository in canonical workload order either way, so
    the repository is identical for any worker count.
    """
    executor = executor or FleetExecutor()
    tasks = [
        _OfflineSessionTask(catalog, workload, n_configs, seed + i)
        for i, workload in enumerate(workloads)
    ]
    repository = WorkloadRepository()
    for samples in executor.map(_run_offline_session, tasks):
        for sample in samples:
            repository.add(sample)
    return repository


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table, right-aligned numerics — for bench stdout."""
    rendered = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)
