"""Table 1 + Fig. 14 — throttles captured on workload-pattern changes.

The paper loads TPC-C/TPC-H/YCSB/Twitter/Wikipedia data on an m4.xlarge
PostgreSQL and measures, for six workload transitions, the throttles the
TDE raises within a detection window after the switch (Table 1 gives the
window length and the knob classes expected to fire):

  #1 YCSB → TPCC      5 min   background writer, async/planner
  #2 TPCC → YCSB      5 min   memory, async/planner
  #3 YCSB → Wiki      7 min   async/planner
  #4 Wiki → YCSB      5 min   (none)
  #5 TPCC → Twitter   6 min   memory, async/planner
  #6 Twitter → TPCC   5 min   background writer

Before each transition the database runs the source workload with an
OtterTune-tuned configuration (the tuner directly impacts throttle counts,
§5), so the throttles measured afterwards are attributable to the
*pattern change*, not to a badly tuned starting point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.dbsim.engine import SimulatedDatabase
from repro.dbsim.knobs import KnobClass, postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners.base import TuningRequest
from repro.tuners.ottertune import OtterTuneTuner
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.twitter import TwitterWorkload
from repro.workloads.wikipedia import WikipediaWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = ["TransitionSpec", "TransitionResult", "TRANSITIONS", "run"]


@dataclass(frozen=True)
class TransitionSpec:
    """One Table 1 row."""

    number: int
    source: str
    target: str
    window_min: float
    expected_classes: tuple[str, ...]


TRANSITIONS: tuple[TransitionSpec, ...] = (
    TransitionSpec(1, "ycsb", "tpcc", 5.0, ("background_writer", "async_planner")),
    TransitionSpec(2, "tpcc", "ycsb", 5.0, ("memory", "async_planner")),
    TransitionSpec(3, "ycsb", "wikipedia", 7.0, ("async_planner",)),
    TransitionSpec(4, "wikipedia", "ycsb", 5.0, ()),
    TransitionSpec(5, "tpcc", "twitter", 6.0, ("memory", "async_planner")),
    TransitionSpec(6, "twitter", "tpcc", 5.0, ("background_writer",)),
)


@dataclass
class TransitionResult:
    """Throttles captured for one transition."""

    spec: TransitionSpec
    throttles_total: int
    by_class: dict[str, int] = field(default_factory=dict)

    def observed_classes(self) -> tuple[str, ...]:
        return tuple(sorted(c for c, n in self.by_class.items() if n > 0))


def _workload(name: str, seed: int) -> WorkloadGenerator:
    factories = {
        "tpcc": lambda: TPCCWorkload(rps=3300.0, data_size_gb=22.0, seed=seed),
        # YCSB workload-B profile (95% reads): Table 1 marks Wiki→YCSB as
        # raising no throttle classes, which implies the read-mostly YCSB
        # variant — a 50%-update YCSB-A would be genuinely write-pressured.
        "ycsb": lambda: YCSBWorkload(
            rps=5000.0, data_size_gb=18.34, read_fraction=0.95, seed=seed
        ),
        "wikipedia": lambda: WikipediaWorkload(
            rps=1000.0, data_size_gb=20.2, seed=seed
        ),
        "twitter": lambda: TwitterWorkload(rps=10_000.0, data_size_gb=16.0, seed=seed),
    }
    return factories[name]()


def run(seed: int = 0, settle_windows: int = 4) -> list[TransitionResult]:
    """Execute all six transitions and count throttles by class."""
    catalog = postgres_catalog()
    training = [
        TPCCWorkload(rps=12_000.0, data_size_gb=22.0, seed=seed + 1),
        YCSBWorkload(rps=12_000.0, data_size_gb=18.34, seed=seed + 2),
        WikipediaWorkload(rps=6_000.0, data_size_gb=20.2, seed=seed + 3),
        TwitterWorkload(rps=12_000.0, data_size_gb=16.0, seed=seed + 4),
    ]
    repository = offline_train(catalog, training, n_configs=10, seed=seed + 5)
    tuner = OtterTuneTuner(
        catalog, repository, n_candidates=200, memory_limit_mb=13_107.0,
        seed=seed + 6,
    )

    results: list[TransitionResult] = []
    for spec in TRANSITIONS:
        db = SimulatedDatabase("postgres", "m4.xlarge", 22.0, seed=seed + spec.number)
        source = _workload(spec.source, seed + 20 + spec.number)
        # Settle the source workload under a tuned configuration: tuner
        # recommendation + working-set-sized buffer pool (what a managed
        # system converges to after its scheduled downtimes).
        settle = db.run(source.batch(60.0, start_time_s=db.clock_s))
        recommendation = tuner.recommend(
            TuningRequest("svc", spec.source, db.config, settle.metrics)
        )
        from repro.dbsim.memory import HOT_FRACTION

        working_set_mb = db.data_size_gb * 1024.0 * HOT_FRACTION
        buffer_cap = 0.7 * db.vm.db_memory_limit_mb
        tuned = recommendation.config.with_values(
            {"shared_buffers": min(working_set_mb, buffer_cap)}
        ).fitted_to_budget(db.vm.db_memory_limit_mb, db.active_connections)
        db.apply_config(tuned, mode="restart")
        tde = ThrottlingDetectionEngine(
            "svc", db, repository, seed=seed + 40 + spec.number,
            planner_trigger_every=2,
        )
        # Keep tuning during the settle phase (live systems do): each
        # settle throttle gets a recommendation applied by reload.
        for _ in range(settle_windows):
            window = db.run(source.batch(60.0, start_time_s=db.clock_s))
            report = tde.inspect(window)
            if report.needs_tuning:
                rec = tuner.recommend(
                    TuningRequest("svc", spec.source, db.config, window.metrics)
                )
                db.apply_config(
                    rec.config.fitted_to_budget(
                        db.vm.db_memory_limit_mb, db.active_connections
                    ),
                    mode="reload",
                )
        settled_counts = tde.log.count_by_class()

        # Switch to the target workload for the Table 1 window length and
        # count the raw throttles the pattern change raises (tuning would
        # suppress exactly the signal the figure measures).
        target = _workload(spec.target, seed + 60 + spec.number)
        windows = max(1, int(spec.window_min))
        for _ in range(windows):
            tde.inspect(db.run(target.batch(60.0, start_time_s=db.clock_s)))
        final_counts = tde.log.count_by_class()
        by_class = {
            cls.value: final_counts[cls] - settled_counts[cls] for cls in KnobClass
        }
        results.append(
            TransitionResult(
                spec=spec,
                throttles_total=sum(by_class.values()),
                by_class=by_class,
            )
        )
    return results
