"""Ablation studies for the design choices DESIGN.md calls out.

1. **Entropy filter** (§3.1): with the filter, an undersized VM running an
   evenly-mixed heavy workload escalates to a plan-upgrade request and the
   futile throttle stream is suppressed; without it, every window keeps
   firing tuning requests that cannot help.
2. **Workload mapping** (§3.2): the background-writer detector's precision
   depends on mapping the live workload to the right historical baseline;
   as the target accumulates samples, mapping stabilises — "the proposed
   approach eventually improves in efficiency with passing time".
3. **Slave-first apply** (§4): applying a crash-inducing configuration
   master-first kills the serving node; slave-first rejects the config
   while the master keeps serving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.core.tde.entropy import EntropyFilter
from repro.dbsim.engine import DatabaseCrashed, SimulatedDatabase
from repro.dbsim.knobs import KnobClass, postgres_catalog
from repro.dbsim.replication import ReplicatedService
from repro.experiments.common import offline_session
from repro.tuners.repository import WorkloadRepository
from repro.tuners.workload_mapping import WorkloadMapper
from repro.workloads.adulterated import AdulteratedTPCCWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = [
    "EntropyFilterAblation",
    "ablate_entropy_filter",
    "MappingAblation",
    "ablate_mapping_growth",
    "SlaveFirstAblation",
    "ablate_slave_first",
]


# -- 1. entropy filter ----------------------------------------------------------


@dataclass(frozen=True)
class EntropyFilterAblation:
    """Tuning requests and escalations with/without the filter."""

    with_filter_requests: int
    with_filter_escalations: int
    without_filter_requests: int


def ablate_entropy_filter(
    windows: int = 24, seed: int = 0
) -> EntropyFilterAblation:
    """Undersized VM + evenly mixed heavy workload, filter on vs off."""

    def run(filter_enabled: bool) -> tuple[int, int]:
        db = SimulatedDatabase("postgres", "t2.small", 21.0, seed=seed)
        db.config = db.config.with_values(
            {"work_mem": 4096, "maintenance_work_mem": 8192, "temp_buffers": 2048}
        ).fitted_to_budget(db.vm.db_memory_limit_mb, db.active_connections)
        tde = ThrottlingDetectionEngine(
            "svc",
            db,
            WorkloadRepository(),
            enabled_classes={KnobClass.MEMORY},
            seed=seed + 1,
        )
        if not filter_enabled:
            # Disable all §3.1 filtering: no entropy escalation, no
            # at-cap rule filter — every spill fires a tuning request.
            tde.memory_detector.filter = EntropyFilter(trigger_count=10**9)
            tde.memory_detector.cap_filter_enabled = False
        workload = AdulteratedTPCCWorkload(0.8, data_size_gb=21.0, seed=seed + 2)
        requests = 0
        escalations = 0
        for _ in range(windows):
            report = tde.inspect(db.run(workload.batch(60.0, start_time_s=db.clock_s)))
            if report.needs_tuning:
                requests += 1
            escalations += len(report.escalations)
        return requests, escalations

    with_requests, with_escalations = run(filter_enabled=True)
    without_requests, _ = run(filter_enabled=False)
    return EntropyFilterAblation(
        with_filter_requests=with_requests,
        with_filter_escalations=with_escalations,
        without_filter_requests=without_requests,
    )


# -- 2. mapping growth ----------------------------------------------------------


@dataclass(frozen=True)
class MappingAblation:
    """Mapping correctness as the target's sample count grows."""

    samples_per_stage: list[int]
    mapped_correctly: list[bool]


def ablate_mapping_growth(
    stages: tuple[int, ...] = (1, 2, 4, 8, 16),
    seed: int = 0,
) -> MappingAblation:
    """Map a live TPC-C-like target as its dataset grows.

    The repository holds offline TPC-C and YCSB experience; the live
    target runs TPC-C. With one sample the mapping is a coin toss; with
    more, it should settle on TPC-C.
    """
    catalog = postgres_catalog()
    repository = WorkloadRepository()
    offline_session(
        repository,
        TPCCWorkload(rps=12_000.0, data_size_gb=26.0, seed=seed + 1),
        catalog,
        n_configs=12,
        seed=seed + 2,
    )
    offline_session(
        repository,
        YCSBWorkload(rps=12_000.0, data_size_gb=20.0, seed=seed + 3),
        catalog,
        n_configs=12,
        seed=seed + 4,
    )
    live = TPCCWorkload(rps=12_000.0, data_size_gb=26.0, seed=seed + 5)
    live_samples = []
    from repro.tuners.base import TrainingSample, vector_to_config

    # make_rng(int) is exactly default_rng(int), so the drawn stream (and
    # the seeded bench output) is unchanged by routing through common.rng.
    rng = make_rng(seed + 6)
    db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=seed + 7)
    for _ in range(max(stages)):
        config = vector_to_config(
            rng.uniform(0, 1, len(catalog)), catalog
        ).fitted_to_budget(db.vm.db_memory_limit_mb, db.active_connections)
        db.apply_config(config, mode="restart")
        db.run(live.batch(20.0, start_time_s=db.clock_s))
        window = db.run(live.batch(20.0, start_time_s=db.clock_s))
        live_samples.append(
            TrainingSample("live-tpcc", config, window.metrics, db.clock_s)
        )

    outcomes: list[bool] = []
    for stage in stages:
        staged = WorkloadRepository()
        staged.sync_from(repository)
        staged.add_many(live_samples[:stage])
        staged_mapper = WorkloadMapper(staged)
        mapping = staged_mapper.map_workload("live-tpcc")
        outcomes.append(mapping.best_workload_id == "tpcc")
    return MappingAblation(
        samples_per_stage=list(stages), mapped_correctly=outcomes
    )


# -- 3. slave-first apply ---------------------------------------------------------


@dataclass(frozen=True)
class SlaveFirstAblation:
    """Master availability under a crash-inducing configuration."""

    slave_first_master_up: bool
    master_first_master_up: bool


def ablate_slave_first(seed: int = 0) -> SlaveFirstAblation:
    """Apply an over-budget config slave-first vs master-first."""
    from repro.core.apply.dfa import DataFederationAgent

    bad_values = {"shared_buffers": 60_000, "work_mem": 4_000}

    slave_first = ReplicatedService("postgres", "m4.large", 20.0, replicas=1, seed=seed)
    DataFederationAgent().apply(
        slave_first, slave_first.config.with_values(bad_values), mode="restart"
    )
    slave_first_up = not slave_first.master.crashed

    master_first = ReplicatedService(
        "postgres", "m4.large", 20.0, replicas=1, seed=seed
    )
    try:
        master_first.master.apply_config(
            master_first.config.with_values(bad_values), mode="restart"
        )
    except DatabaseCrashed:
        pass
    master_first_up = not master_first.master.crashed
    return SlaveFirstAblation(
        slave_first_master_up=slave_first_up,
        master_first_master_up=master_first_up,
    )
