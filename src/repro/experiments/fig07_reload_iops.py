"""Fig. 7 — IOPS under TPC-C with periodic config reload signals.

The paper executes TPC-C on tuned MySQL twice: once without any config
re-apply and once firing a reload signal every 20 seconds, showing that
even at that frequency "the performance is not compromised". We add the
socket-activation alternative the paper rejected, to show why. Expected
shape: reload-every-20 s IOPS ≈ no-reload IOPS; socket activation dips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.apply.restart import (
    ApplyStrategy,
    PeriodicReloadDriver,
    ReloadRunReport,
    ReloadSignalStrategy,
    SocketActivationStrategy,
)
from repro.dbsim.engine import SimulatedDatabase
from repro.workloads.tpcc import TPCCWorkload

__all__ = ["ReloadComparison", "run"]

_TUNED_MYSQL = {
    "innodb_buffer_pool_size": 4096,
    "innodb_io_capacity": 2000,
    "innodb_log_file_size": 2048,
}


@dataclass
class ReloadComparison:
    """The three Fig. 7 runs."""

    no_reload: ReloadRunReport
    reload_signal: ReloadRunReport
    socket_activation: ReloadRunReport

    def relative_tps(self, report: ReloadRunReport) -> float:
        """Throughput relative to the undisturbed run."""
        if self.no_reload.mean_tps == 0:
            raise ValueError("baseline run produced no throughput")
        return report.mean_tps / self.no_reload.mean_tps


def _one_run(
    strategy: ApplyStrategy | None,
    duration_s: float,
    reload_period_s: float,
    rps: float,
    seed: int,
) -> ReloadRunReport:
    db = SimulatedDatabase("mysql", "m4.large", 26.0, seed=seed)
    db.apply_config(db.config.with_values(_TUNED_MYSQL), mode="restart")
    db._pending_stall_s = 0.0  # the experiment starts after the tuned restart
    workload = TPCCWorkload(rps=rps, seed=seed + 1)
    return PeriodicReloadDriver(db, workload, strategy, reload_period_s).run(
        duration_s
    )


def run(
    duration_s: float = 900.0,
    reload_period_s: float = 20.0,
    rps: float = 1200.0,
    seed: int = 0,
) -> ReloadComparison:
    """Run the three variants under identical load."""
    return ReloadComparison(
        no_reload=_one_run(None, duration_s, reload_period_s, rps, seed),
        reload_signal=_one_run(
            ReloadSignalStrategy(), duration_s, reload_period_s, rps, seed
        ),
        socket_activation=_one_run(
            SocketActivationStrategy(), duration_s, reload_period_s, rps, seed
        ),
    )
